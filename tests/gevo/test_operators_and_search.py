"""Tests for mutation, crossover, selection, fitness harness and the search loop."""

import math
import random

import pytest

from repro.errors import SearchError
from repro.gevo import (
    EditGenerator,
    GenomeEvaluator,
    GevoConfig,
    GevoSearch,
    Individual,
    best_individual,
    maybe_crossover,
    maybe_mutate,
    mutate,
    one_point_crossover,
    rank_population,
    run_repeated_searches,
    seed_population,
    select_elites,
    tournament_select,
    uniform_crossover,
)
from repro.gevo.fitness import EditSetEvaluator
from repro.workloads import ToyWorkloadAdapter, build_toy_kernel, toy_discovered_edits


@pytest.fixture(scope="module")
def toy_adapter():
    return ToyWorkloadAdapter(elements=128)


@pytest.fixture
def generator():
    kernel = build_toy_kernel()
    return EditGenerator(kernel.module, random.Random(1))


class TestConfig:
    def test_paper_presets(self):
        adept = GevoConfig.paper_adept()
        assert adept.population_size == 256 and adept.generations == 300
        simcov = GevoConfig.paper_simcov()
        assert simcov.generations == 130
        assert simcov.crossover_probability == 0.8
        assert simcov.mutation_probability == 0.3
        assert simcov.elitism == 4

    def test_invalid_configs_rejected(self):
        with pytest.raises(SearchError):
            GevoConfig(population_size=1)
        with pytest.raises(SearchError):
            GevoConfig(crossover_probability=1.5)
        with pytest.raises(SearchError):
            GevoConfig(elitism=1000)

    def test_with_returns_modified_copy(self):
        config = GevoConfig.quick(seed=1)
        other = config.with_(generations=3)
        assert other.generations == 3 and config.generations != 3


class TestMutation:
    def test_random_edit_generation(self, generator):
        edits = [generator.random_edit() for _ in range(50)]
        kinds = {edit.kind for edit in edits if edit is not None}
        assert len(kinds) >= 3  # several operator types get exercised

    def test_candidate_bias(self):
        kernel = build_toy_kernel()
        candidates = toy_discovered_edits(kernel)
        biased = EditGenerator(kernel.module, random.Random(2),
                               candidate_edits=candidates, candidate_probability=1.0)
        assert all(biased.random_edit() in candidates for _ in range(10))

    def test_mutate_grows_or_changes_genome(self, generator):
        config = GevoConfig.quick(seed=3)
        individual = Individual()
        child = mutate(individual, generator, config, random.Random(3))
        assert len(child.edits) >= 1
        assert individual.edits == []  # parent untouched

    def test_maybe_mutate_respects_probability(self, generator):
        config = GevoConfig.quick(seed=4).with_(mutation_probability=0.0)
        individual = Individual()
        child = maybe_mutate(individual, generator, config, random.Random(4))
        assert child.edits == []

    def test_max_edits_cap(self, generator):
        config = GevoConfig.quick(seed=5).with_(max_edits_per_individual=2)
        individual = Individual(edits=[generator.random_edit() for _ in range(4)])
        child = mutate(individual, generator, config, random.Random(5))
        assert len(child.edits) <= 2


class TestCrossover:
    def test_one_point_preserves_edit_multiset_size(self, generator):
        rng = random.Random(6)
        parent_a = Individual(edits=[generator.random_edit() for _ in range(4)])
        parent_b = Individual(edits=[generator.random_edit() for _ in range(3)])
        child_one, child_two = one_point_crossover(parent_a, parent_b, rng)
        assert len(child_one.edits) + len(child_two.edits) == 7

    def test_uniform_crossover_draws_from_union(self, generator):
        rng = random.Random(7)
        parent_a = Individual(edits=[generator.random_edit() for _ in range(3)])
        parent_b = Individual(edits=[generator.random_edit() for _ in range(3)])
        child_one, child_two = uniform_crossover(parent_a, parent_b, rng)
        union_keys = {e.key() for e in parent_a.edits + parent_b.edits}
        assert all(e.key() in union_keys for e in child_one.edits + child_two.edits)

    def test_maybe_crossover_can_be_disabled(self, generator):
        config = GevoConfig.quick(seed=8).with_(crossover_probability=0.0)
        parent_a = Individual(edits=[generator.random_edit()])
        parent_b = Individual(edits=[generator.random_edit()])
        child_one, child_two = maybe_crossover(parent_a, parent_b, config, random.Random(8))
        assert child_one.edit_keys() == parent_a.edit_keys()
        assert child_two.edit_keys() == parent_b.edit_keys()


class TestSelection:
    def _population(self):
        individuals = []
        for index, fitness in enumerate([3.0, 1.0, 2.0, None]):
            individual = Individual()
            if fitness is None:
                individual.mark_evaluated(None, False)
            else:
                individual.mark_evaluated(fitness, True)
            individuals.append(individual)
        return individuals

    def test_best_individual_ignores_invalid(self):
        population = self._population()
        assert best_individual(population).fitness == 1.0

    def test_rank_population_puts_invalid_last(self):
        ranked = rank_population(self._population())
        assert ranked[0].fitness == 1.0
        assert ranked[-1].valid is False

    def test_select_elites_copies(self):
        elites = select_elites(self._population(), 2)
        assert [e.fitness for e in elites] == [1.0, 2.0]

    def test_tournament_prefers_fitter(self):
        population = self._population()
        rng = random.Random(0)
        winners = [tournament_select(population, 4, rng).fitness for _ in range(10)]
        assert all(fitness == 1.0 for fitness in winners)


class TestFitnessHarness:
    def test_baseline_is_valid(self, toy_adapter):
        baseline = toy_adapter.baseline()
        assert baseline.valid
        assert math.isfinite(baseline.runtime_ms)

    def test_genome_evaluator_caches(self, toy_adapter):
        evaluator = GenomeEvaluator(toy_adapter)
        individual = Individual()
        evaluator.evaluate_individual(individual)
        twin = Individual()
        evaluator.evaluate_individual(twin)
        assert evaluator.cache_hits >= 1

    def test_broken_variant_is_invalid(self, toy_adapter):
        from repro.gevo import InstructionDelete

        kernel = toy_adapter.kernel
        store_uid = next(inst.uid for inst in kernel.module.instructions()
                         if inst.opcode == "store")
        evaluator = GenomeEvaluator(toy_adapter)
        result = evaluator.evaluate_edits([InstructionDelete(store_uid)])
        assert not result.valid

    def test_edit_set_evaluator_fitness_and_failure(self, toy_adapter):
        edits = toy_discovered_edits(toy_adapter.kernel)
        evaluator = EditSetEvaluator(toy_adapter, edits)
        assert evaluator.fitness(edits) < evaluator.baseline_fitness()
        assert not evaluator.fails(edits)
        # cached: evaluating again must not re-run
        before = evaluator.evaluations
        evaluator.fitness(edits)
        assert evaluator.evaluations == before


class TestSearchLoop:
    def test_seed_population_is_unmodified_program(self):
        population = seed_population(4)
        assert all(len(individual.edits) == 0 for individual in population)

    def test_search_finds_toy_improvements(self, toy_adapter):
        config = GevoConfig.quick(seed=11, population_size=10, generations=6)
        result = GevoSearch(toy_adapter, config).run(validate_best=True)
        assert result.best is not None and result.best.valid
        assert result.speedup > 1.0
        assert result.history.generations() == 6
        assert result.validation is not None and result.validation.valid

    def test_history_records_discoveries(self, toy_adapter):
        config = GevoConfig.quick(seed=12, population_size=8, generations=5)
        candidates = toy_discovered_edits(toy_adapter.kernel)
        search = GevoSearch(toy_adapter, config, candidate_edits=candidates,
                            candidate_probability=0.8)
        result = search.run()
        discovered = [key for key in result.history.first_seen_in_best
                      if key in {edit.key() for edit in candidates}]
        assert discovered, "at least one recorded edit should enter the best individual"

    def test_repeated_searches_vary_by_seed(self, toy_adapter):
        config = GevoConfig.quick(seed=0, population_size=6, generations=3)
        results = run_repeated_searches(toy_adapter, config, runs=2, base_seed=40)
        assert len(results) == 2
        assert all(result.baseline.valid for result in results)

    def test_stagnation_limit_stops_early(self, toy_adapter):
        config = GevoConfig.quick(seed=13, population_size=6, generations=30).with_(
            stagnation_limit=2, mutation_probability=0.0, crossover_probability=0.0)
        result = GevoSearch(toy_adapter, config).run()
        assert result.history.generations() < 30
