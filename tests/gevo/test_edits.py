"""Unit tests for the GEVO edit operators."""

import pytest

from repro.errors import EditError
from repro.gevo import (
    InstructionCopy,
    InstructionDelete,
    InstructionMove,
    InstructionReplace,
    InstructionSwap,
    OperandReplace,
    apply_edits,
    edit_from_dict,
    edit_kinds,
)
from repro.ir import Const, Reg, verify_module
from repro.workloads import build_toy_kernel


@pytest.fixture
def toy_module():
    return build_toy_kernel().module


def _uids_by_opcode(module, opcode):
    return [inst.uid for inst in module.instructions() if inst.opcode == opcode]


class TestIndividualEdits:
    def test_delete_removes_instruction(self, toy_module):
        uid = _uids_by_opcode(toy_module, "mul")[0]
        clone = toy_module.clone()
        InstructionDelete(uid).apply(clone)
        assert clone.find_instruction(uid) is None
        assert clone.instruction_count() == toy_module.instruction_count() - 1

    def test_delete_terminator_rejected(self, toy_module):
        uid = _uids_by_opcode(toy_module, "ret")[0]
        with pytest.raises(EditError):
            InstructionDelete(uid).apply(toy_module.clone())

    def test_delete_missing_uid_rejected(self, toy_module):
        with pytest.raises(EditError):
            InstructionDelete(10 ** 9).apply(toy_module.clone())

    def test_copy_inserts_duplicate_with_new_uid(self, toy_module):
        source = _uids_by_opcode(toy_module, "mul")[0]
        before = _uids_by_opcode(toy_module, "store")[0]
        clone = toy_module.clone()
        InstructionCopy(source, before).apply(clone)
        assert clone.instruction_count() == toy_module.instruction_count() + 1
        muls = _uids_by_opcode(clone, "mul")
        assert len(muls) == len(_uids_by_opcode(toy_module, "mul")) + 1

    def test_move_changes_position(self, toy_module):
        loads = _uids_by_opcode(toy_module, "load")
        clone = toy_module.clone()
        InstructionMove(loads[0], _uids_by_opcode(toy_module, "store")[0]).apply(clone)
        assert clone.instruction_count() == toy_module.instruction_count()
        assert clone.find_instruction(loads[0]) is not None

    def test_move_before_itself_rejected(self, toy_module):
        uid = _uids_by_opcode(toy_module, "load")[0]
        with pytest.raises(EditError):
            InstructionMove(uid, uid).apply(toy_module.clone())

    def test_replace_keeps_target_destination(self, toy_module):
        target = _uids_by_opcode(toy_module, "add")[-1]
        source = _uids_by_opcode(toy_module, "mul")[0]
        clone = toy_module.clone()
        _, block, index = clone.find_instruction(target)
        target_dest = block.instructions[index].dest
        InstructionReplace(target, source).apply(clone)
        # The replacement occupies the same position but is a new instruction
        # (fresh uid), so the target uid is gone from the module.
        assert clone.find_instruction(target) is None
        replaced = block.instructions[index]
        assert replaced.opcode == "mul"
        assert replaced.dest == target_dest

    def test_swap_exchanges_positions(self, toy_module):
        loads = _uids_by_opcode(toy_module, "load")
        clone = toy_module.clone()
        func, block_a, index_a = clone.find_instruction(loads[0])
        InstructionSwap(loads[0], loads[1]).apply(clone)
        _, block_b, index_b = clone.find_instruction(loads[0])
        assert (block_a.label, index_a) != (block_b.label, index_b)

    def test_operand_replace_changes_value(self, toy_module):
        uid = _uids_by_opcode(toy_module, "mul")[0]
        clone = toy_module.clone()
        OperandReplace(uid, 1, Const(7)).apply(clone)
        _, block, index = clone.find_instruction(uid)
        assert block.instructions[index].operands[1] == Const(7)

    def test_operand_replace_bad_index_rejected(self, toy_module):
        uid = _uids_by_opcode(toy_module, "mul")[0]
        with pytest.raises(EditError):
            OperandReplace(uid, 5, Const(1)).apply(toy_module.clone())


class TestEditInfrastructure:
    def test_keys_provide_equality_and_hashing(self):
        first = InstructionDelete(10)
        second = InstructionDelete(10)
        third = InstructionDelete(11)
        assert first == second and hash(first) == hash(second)
        assert first != third
        assert len({first, second, third}) == 2

    def test_serialisation_roundtrip(self):
        edits = [
            InstructionDelete(1),
            InstructionCopy(2, 3),
            InstructionMove(4, 5),
            InstructionReplace(6, 7),
            InstructionSwap(8, 9),
            OperandReplace(10, 1, Reg("valid")),
            OperandReplace(11, 0, Const(2.5)),
        ]
        for edit in edits:
            recovered = edit_from_dict(edit.to_dict())
            assert recovered == edit

    def test_edit_kinds_lists_all(self):
        assert set(edit_kinds()) == {"copy", "delete", "move", "operand", "replace", "swap"}

    def test_describe_includes_location_when_available(self, toy_module):
        uid = _uids_by_opcode(toy_module, "load")[0]
        text = InstructionDelete(uid).describe(toy_module)
        assert "delete" in text


class TestApplyEdits:
    def test_tolerant_application_skips_failures(self, toy_module):
        uid = _uids_by_opcode(toy_module, "mul")[0]
        edits = [InstructionDelete(uid), InstructionDelete(uid)]  # second cannot apply
        applied = apply_edits(toy_module, edits)
        assert len(applied.applied) == 1
        assert len(applied.skipped) == 1
        assert not applied.all_applied

    def test_strict_application_raises(self, toy_module):
        uid = _uids_by_opcode(toy_module, "mul")[0]
        with pytest.raises(EditError):
            apply_edits(toy_module, [InstructionDelete(uid), InstructionDelete(uid)],
                        strict=True)

    def test_original_module_is_untouched(self, toy_module):
        uid = _uids_by_opcode(toy_module, "mul")[0]
        before = toy_module.instruction_count()
        apply_edits(toy_module, [InstructionDelete(uid)])
        assert toy_module.instruction_count() == before

    def test_edited_module_still_structurally_valid(self, toy_module):
        kernel = build_toy_kernel()
        from repro.workloads import toy_discovered_edits

        applied = apply_edits(toy_module, toy_discovered_edits(kernel))
        # The recorded edits are defined against *that* kernel instance, so on a
        # foreign module they may not all apply, but the result must verify.
        report = verify_module(applied.module, raise_on_error=False)
        assert not report.errors
