"""Property-based tests (hypothesis) on core data structures and invariants."""

import math
import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gevo import EditGenerator, apply_edits
from repro.gpu import bank_conflicts, coalesced_transactions
from repro.gpu.rng import counter_uniform
from repro.ir import Const, Reg, as_value
from repro.ir.parser import parse_instruction
from repro.ir.printer import format_instruction
from repro.ir.verifier import verify_module
from repro.workloads import build_toy_kernel
from repro.workloads.adept import ScoringScheme, alignment_score, wavefront_alignment_score

# --------------------------------------------------------------------------- strategies
dna = st.text(alphabet="ACGT", min_size=1, max_size=16)
small_ints = st.integers(min_value=-1000, max_value=1000)


class TestRngProperties:
    @given(seed=small_ints, step=small_ints, salt=small_ints)
    def test_uniform_in_range_and_deterministic(self, seed, step, salt):
        first = counter_uniform(seed, step, salt)
        second = counter_uniform(seed, step, salt)
        assert 0.0 <= float(first) < 1.0
        assert float(first) == float(second)

    @given(seed=small_ints, step=small_ints)
    def test_different_salts_give_different_streams(self, seed, step):
        values = counter_uniform(seed, step, np.arange(64))
        assert len(np.unique(values)) > 32  # effectively no collisions


class TestSmithWatermanProperties:
    @given(a=dna, b=dna)
    @settings(max_examples=30, deadline=None)
    def test_score_bounds(self, a, b):
        score = alignment_score(a, b)
        assert 0 <= score <= 2 * min(len(a), len(b))

    @given(a=dna, b=dna)
    @settings(max_examples=20, deadline=None)
    def test_symmetry(self, a, b):
        assert alignment_score(a, b) == alignment_score(b, a)

    @given(a=dna, b=dna)
    @settings(max_examples=20, deadline=None)
    def test_wavefront_equivalence(self, a, b):
        assert wavefront_alignment_score(a, b) == alignment_score(a, b)

    @given(a=dna)
    @settings(max_examples=20, deadline=None)
    def test_self_alignment_is_perfect(self, a):
        assert alignment_score(a, a) == ScoringScheme().match * len(a)

    @given(a=dna, b=dna, extra=dna)
    @settings(max_examples=20, deadline=None)
    def test_extending_a_sequence_never_lowers_the_score(self, a, b, extra):
        assert alignment_score(a + extra, b) >= alignment_score(a, b)


class TestMemoryModelProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=32))
    def test_transactions_bounded_by_lanes(self, indices):
        transactions = coalesced_transactions(np.array(indices))
        assert 1 <= transactions <= len(indices)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=32))
    def test_bank_conflicts_bounded(self, indices):
        conflicts = bank_conflicts(np.array(indices))
        assert 1 <= conflicts <= len(indices)

    @given(st.integers(min_value=0, max_value=2 ** 20))
    def test_single_access_is_one_transaction(self, index):
        assert coalesced_transactions(np.array([index])) == 1


class TestIrProperties:
    @given(st.integers() | st.floats(allow_nan=False, allow_infinity=False)
           | st.booleans() | st.text(alphabet="abcxyz", min_size=1, max_size=6))
    def test_as_value_total_on_supported_inputs(self, raw):
        value = as_value(raw)
        assert isinstance(value, (Reg, Const))

    @given(opcode=st.sampled_from(["add", "sub", "mul", "min", "max"]),
           lhs=small_ints, rhs=small_ints)
    def test_instruction_text_roundtrip(self, opcode, lhs, rhs):
        from repro.ir import Instruction

        inst = Instruction(opcode, dest="r", operands=[Const(lhs), Const(rhs)])
        assert parse_instruction(format_instruction(inst)).operands == inst.operands


class TestCanonicalKeyProperties:
    """The cache key is a pure function of the edit *multiset*.

    Algorithms 1 and 2 treat an edit collection as a multiset, so every
    permutation of an edit list must hash identically, while duplicating
    an edit (applying ``copy`` twice) must change the hash.
    """

    @staticmethod
    def _random_edits(seed, count):
        kernel = build_toy_kernel()
        generator = EditGenerator(kernel.module, random.Random(seed))
        return [edit for edit in (generator.random_edit() for _ in range(count))
                if edit is not None]

    @given(seed=st.integers(min_value=0, max_value=10_000),
           count=st.integers(min_value=1, max_value=12),
           shuffle_seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_every_permutation_hashes_identically(self, seed, count, shuffle_seed):
        from repro.runtime import canonical_edit_hash, canonical_edit_key

        edits = self._random_edits(seed, count)
        permuted = list(edits)
        random.Random(shuffle_seed).shuffle(permuted)
        assert canonical_edit_key(permuted) == canonical_edit_key(edits)
        assert canonical_edit_hash(permuted) == canonical_edit_hash(edits)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           count=st.integers(min_value=1, max_value=8),
           pick=st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_duplicating_an_edit_changes_the_hash(self, seed, count, pick):
        from repro.runtime import canonical_edit_hash

        edits = self._random_edits(seed, count)
        if not edits:
            return
        duplicated = edits + [edits[pick % len(edits)]]
        assert canonical_edit_hash(duplicated) != canonical_edit_hash(edits)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           count=st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_hash_depends_only_on_edit_keys(self, seed, count):
        # Serialising and re-materialising the same edits gives the same
        # hash: nothing identity- or memory-address-dependent leaks in.
        from repro.gevo.edits import edit_from_dict
        from repro.runtime import canonical_edit_hash

        edits = self._random_edits(seed, count)
        rebuilt = [edit_from_dict(edit.to_dict()) for edit in edits]
        assert canonical_edit_hash(rebuilt) == canonical_edit_hash(edits)

    def test_json_and_sqlite_tiers_agree_on_keys(self, tmp_path):
        # A permuted edit list written through the JSON tier is found
        # under the SQLite tier after migration: both index by the same
        # canonical key.
        from repro.gevo.fitness import CaseResult, FitnessResult
        from repro.runtime import CacheKey, FitnessCache, canonical_edit_hash

        edit_lists = [self._random_edits(seed, 6) for seed in range(8)]
        path = str(tmp_path / "cache.json")
        json_tier = FitnessCache(path, backend="json")
        for index, edits in enumerate(edit_lists):
            key = CacheKey("toy", "P100", canonical_edit_hash(edits))
            json_tier.put(key, FitnessResult.from_cases(
                [CaseResult("c", True, float(index))]))
        json_tier.save()

        sqlite_tier = FitnessCache(path, backend="sqlite")
        for index, edits in enumerate(edit_lists):
            permuted = list(edits)
            random.Random(index + 99).shuffle(permuted)
            key = CacheKey("toy", "P100", canonical_edit_hash(permuted))
            assert sqlite_tier.peek(key).runtime_ms == float(index)
        sqlite_tier.close()


class TestEditRobustness:
    """Random edit lists never corrupt the module's structural invariants.

    This mirrors the paper's observation that GEVO variants remain
    *executable* (they may be semantically wrong and fail tests, but the
    program structure survives thousands of mutations).
    """

    @given(seed=st.integers(min_value=0, max_value=10_000),
           count=st.integers(min_value=1, max_value=25))
    @settings(max_examples=25, deadline=None)
    def test_random_edit_lists_preserve_structure(self, seed, count):
        kernel = build_toy_kernel()
        generator = EditGenerator(kernel.module, random.Random(seed))
        edits = [edit for edit in (generator.random_edit() for _ in range(count))
                 if edit is not None]
        applied = apply_edits(kernel.module, edits)
        report = verify_module(applied.module, raise_on_error=False)
        assert not report.errors
        # Terminators are pinned: every block still ends with one.
        for function in applied.module.functions.values():
            for block in function.blocks.values():
                assert block.instructions, "blocks never become empty"
                assert block.instructions[-1].is_terminator

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_edit_application_is_reproducible(self, seed):
        kernel = build_toy_kernel()
        generator = EditGenerator(kernel.module, random.Random(seed))
        edits = [edit for edit in (generator.random_edit() for _ in range(10))
                 if edit is not None]
        first = apply_edits(kernel.module, edits)
        second = apply_edits(kernel.module, edits)
        first_ops = [inst.opcode for inst in first.module.instructions()]
        second_ops = [inst.opcode for inst in second.module.instructions()]
        assert first_ops == second_ops
