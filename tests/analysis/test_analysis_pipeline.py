"""Tests for Algorithm 1, Algorithm 2, the subset sweep and the source mapping.

The fast cases run against the toy workload (three independent wasteful
instructions plus a deliberately weak edit); the ADEPT cases check the
paper's headline structure on the real workload.
"""

import pytest

from repro.analysis import (
    build_dependency_graph,
    cumulative_discovery_table,
    discovery_sequence,
    epistatic_clusters,
    exhaustive_subset_analysis,
    figure7_report,
    format_source_report,
    identify_weak_edits,
    map_edits_to_source,
    separate_edits,
)
from repro.gevo import GevoConfig, GevoSearch, OperandReplace
from repro.gevo.history import SearchHistory
from repro.ir import Const
from repro.workloads import ToyWorkloadAdapter, toy_discovered_edits
from repro.workloads.adept import adept_v1_epistatic_edits


@pytest.fixture(scope="module")
def toy_adapter():
    return ToyWorkloadAdapter(elements=128)


@pytest.fixture(scope="module")
def toy_edits(toy_adapter):
    return toy_discovered_edits(toy_adapter.kernel)


def _weak_edit(toy_adapter):
    """An edit with no performance effect: rewrite a constant to the same value."""
    module = toy_adapter.original_module()
    mul = next(inst for inst in module.instructions()
               if inst.opcode == "mul" and inst.dest == "scaled")
    return OperandReplace(mul.uid, 1, Const(3))


class TestMinimization:
    def test_weak_edit_is_removed(self, toy_adapter, toy_edits):
        edits = toy_edits + [_weak_edit(toy_adapter)]
        result = identify_weak_edits(toy_adapter, edits)
        weak_keys = {edit.key() for edit in result.weak}
        assert _weak_edit(toy_adapter).key() in weak_keys
        assert len(result.significant) >= 2

    def test_improvement_is_preserved(self, toy_adapter, toy_edits):
        result = identify_weak_edits(toy_adapter, toy_edits + [_weak_edit(toy_adapter)])
        assert result.minimized_improvement == pytest.approx(result.full_improvement, abs=0.02)
        assert result.improvement_lost < 0.02
        assert "significant" in result.summary()

    def test_adept_minimization_keeps_cluster(self, adept_v1_adapter):
        from repro.workloads.adept import adept_v1_discovered_edits

        edits = adept_v1_discovered_edits(adept_v1_adapter.kernel)
        result = identify_weak_edits(adept_v1_adapter, edits)
        # The four cluster edits and the barrier removal must survive.
        assert len(result.significant) >= 4
        assert result.minimized_improvement > 0.15


class TestEpistasisSeparation:
    def test_toy_edits_are_independent(self, toy_adapter, toy_edits):
        result = separate_edits(toy_adapter, toy_edits)
        assert len(result.independent) == len(toy_edits)
        assert not result.epistatic
        assert result.independent_improvement > 0

    def test_adept_cluster_is_epistatic(self, adept_v1_adapter):
        cluster = list(adept_v1_epistatic_edits(adept_v1_adapter.kernel).values())
        result = separate_edits(adept_v1_adapter, cluster)
        # Edits 5, 8 and 10 fail alone, so they cannot be classified independent.
        assert len(result.epistatic) >= 3
        assert result.summary()


class TestSubsetAnalysis:
    def test_exhaustive_subsets_count(self, toy_adapter, toy_edits):
        analysis = exhaustive_subset_analysis(toy_adapter, toy_edits)
        assert len(analysis.outcomes) == 2 ** len(toy_edits) - 1
        assert analysis.best_subset() is not None

    def test_guard_against_explosion(self, toy_adapter, toy_edits):
        with pytest.raises(ValueError):
            exhaustive_subset_analysis(toy_adapter, toy_edits * 10)

    def test_adept_cluster_dependencies(self, adept_v1_adapter):
        cluster = adept_v1_epistatic_edits(adept_v1_adapter.kernel)
        labels = [f"edit{index}" for index in cluster]
        analysis = exhaustive_subset_analysis(adept_v1_adapter, list(cluster.values()),
                                              labels=labels)
        assert set(analysis.failing_singletons()) == {"edit5", "edit8", "edit10"}
        dependencies = analysis.dependencies()
        assert "edit6" in dependencies["edit8"]
        assert "edit6" in dependencies["edit10"]
        # Edit 5 needs (at least) edit 6 plus one of the read-path rewrites; on
        # the paper's full-size test set it needs all three (Figure 7).
        assert {"edit6", "edit10"} <= set(dependencies["edit5"])
        best = analysis.best_subset()
        assert set(best.labels) == {"edit5", "edit6", "edit8", "edit10"}
        report = figure7_report(analysis)
        assert report["best_improvement"] > 0.05
        graph = build_dependency_graph(analysis)
        assert graph.has_edge("edit8", "edit6")
        clusters = epistatic_clusters(analysis)
        assert any(len(cluster.members) == 4 for cluster in clusters)


class TestDiscoveryAndSourceMap:
    def test_discovery_sequence_from_history(self, toy_adapter, toy_edits):
        config = GevoConfig.quick(seed=21, population_size=8, generations=6)
        search = GevoSearch(toy_adapter, config, candidate_edits=toy_edits,
                            candidate_probability=0.8)
        outcome = search.run()
        labelled = {f"waste{i}": edit for i, edit in enumerate(toy_edits)}
        sequence = discovery_sequence(outcome.history, labelled)
        assert len(sequence.events) == len(toy_edits)
        discovered = sequence.discovered()
        assert discovered, "the biased search should discover at least one edit"
        table = cumulative_discovery_table(outcome.history, labelled)
        assert len(table) == len(discovered)

    def test_discovery_handles_missing_edits(self):
        history = SearchHistory(baseline_runtime=1.0)
        sequence = discovery_sequence(history, {"never": OperandReplace(1, 0, Const(1))})
        assert sequence.events[0].generation is None

    def test_source_mapping_reports_locations(self, adept_v1_adapter):
        from repro.workloads.adept import adept_v1_discovered_edits

        module = adept_v1_adapter.original_module()
        edits = adept_v1_discovered_edits(adept_v1_adapter.kernel)
        records = map_edits_to_source(module, edits)
        assert all(record.location is not None for record in records)
        report = format_source_report(module, edits)
        assert "adept_v1_kernel.cu" in report
