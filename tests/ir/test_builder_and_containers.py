"""Unit tests for the mini-IR containers and the kernel builder."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BasicBlock,
    Const,
    Function,
    Instruction,
    KernelBuilder,
    Module,
    Param,
    Reg,
    SharedDecl,
    as_value,
)


class TestValues:
    def test_reg_renders_with_percent(self):
        assert str(Reg("x")) == "%x"

    def test_const_bool_renders_as_keyword(self):
        assert str(Const(True)) == "true"
        assert str(Const(False)) == "false"

    def test_as_value_coerces_strings_and_numbers(self):
        assert as_value("foo") == Reg("foo")
        assert as_value(3) == Const(3)
        assert as_value(2.5) == Const(2.5)

    def test_as_value_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            as_value(object())

    def test_reg_requires_nonempty_name(self):
        with pytest.raises(ValueError):
            Reg("")


class TestInstruction:
    def test_requires_destination_when_opcode_produces_value(self):
        with pytest.raises(ValueError):
            Instruction("add", dest=None, operands=[Const(1), Const(2)])

    def test_rejects_destination_for_void_opcodes(self):
        with pytest.raises(ValueError):
            Instruction("store", dest="x", operands=[Reg("b"), Const(0), Const(1)])

    def test_arity_is_enforced(self):
        with pytest.raises(ValueError):
            Instruction("add", dest="x", operands=[Const(1)])

    def test_clone_preserves_uid_duplicate_does_not(self):
        inst = Instruction("add", dest="x", operands=[Const(1), Const(2)])
        assert inst.clone().uid == inst.uid
        assert inst.duplicate().uid != inst.uid

    def test_replace_operand(self):
        inst = Instruction("add", dest="x", operands=[Reg("a"), Reg("b")])
        inst.replace_operand(1, Const(5))
        assert inst.operands[1] == Const(5)

    def test_replace_operand_out_of_range(self):
        inst = Instruction("add", dest="x", operands=[Reg("a"), Reg("b")])
        with pytest.raises(IndexError):
            inst.replace_operand(2, Const(5))

    def test_branch_targets(self):
        br = Instruction("br", attrs={"target": "done"})
        cond = Instruction("condbr", operands=[Reg("p")],
                           attrs={"true_target": "a", "false_target": "b"})
        ret = Instruction("ret")
        assert br.branch_targets() == ("done",)
        assert cond.branch_targets() == ("a", "b")
        assert ret.branch_targets() == ()

    def test_used_and_defined_registers(self):
        inst = Instruction("add", dest="x", operands=[Reg("a"), Const(2)])
        assert inst.used_registers() == ("a",)
        assert inst.defined_register() == "x"


class TestContainers:
    def test_duplicate_block_label_rejected(self):
        func = Function("k")
        func.add_block(BasicBlock("entry"))
        with pytest.raises(IRError):
            func.add_block(BasicBlock("entry"))

    def test_duplicate_param_rejected(self):
        with pytest.raises(IRError):
            Function("k", params=[Param("a"), Param("a")])

    def test_entry_is_first_block(self):
        func = Function("k")
        func.add_block(BasicBlock("first"))
        func.add_block(BasicBlock("second"))
        assert func.entry_label == "first"

    def test_find_instruction_by_uid(self):
        func = Function("k")
        block = func.add_block(BasicBlock("entry"))
        inst = block.append(Instruction("add", dest="x", operands=[Const(1), Const(2)]))
        block.append(Instruction("ret"))
        found = func.find_instruction(inst.uid)
        assert found is not None
        found_block, index = found
        assert found_block is block and index == 0
        assert func.find_instruction(10**9) is None

    def test_module_clone_is_deep(self):
        func = Function("k")
        block = func.add_block(BasicBlock("entry"))
        inst = block.append(Instruction("add", dest="x", operands=[Const(1), Const(2)]))
        block.append(Instruction("ret"))
        module = Module("m")
        module.add_function(func)
        clone = module.clone()
        clone_inst = clone.get_function("k").blocks["entry"].instructions[0]
        clone_inst.replace_operand(0, Const(99))
        assert inst.operands[0] == Const(1)
        assert clone_inst.uid == inst.uid

    def test_instruction_count(self):
        func = Function("k")
        block = func.add_block(BasicBlock("entry"))
        block.append(Instruction("nop"))
        block.append(Instruction("ret"))
        assert func.instruction_count() == 2

    def test_shared_decl_validation(self):
        with pytest.raises(ValueError):
            SharedDecl("sh", 0)
        with pytest.raises(ValueError):
            SharedDecl("sh", 8, dtype="double")


class TestBuilder:
    def test_builder_produces_terminated_blocks(self):
        b = KernelBuilder("k", params=[Param("out", "buffer"), Param("n", "scalar")])
        b.block("entry")
        tid = b.tid_x()
        b.store(b.reg("out"), tid, tid)
        func = b.build()
        assert func.blocks["entry"].terminator is not None
        assert func.blocks["entry"].terminator.opcode == "ret"

    def test_if_then_creates_merge_block(self):
        b = KernelBuilder("k", params=[Param("out", "buffer")])
        b.block("entry")
        tid = b.tid_x()
        cond = b.lt(tid, 4)
        with b.if_then(cond):
            b.store(b.reg("out"), tid, 1)
        b.ret()
        func = b.build()
        labels = func.block_order()
        assert len(labels) == 3
        assert func.blocks[labels[0]].terminator.opcode == "condbr"

    def test_if_then_else_merges(self):
        b = KernelBuilder("k", params=[Param("out", "buffer")])
        b.block("entry")
        tid = b.tid_x()
        cond = b.lt(tid, 4)
        then_cm, else_cm = b.if_then_else(cond)
        with then_cm:
            b.store(b.reg("out"), tid, 1)
        with else_cm:
            b.store(b.reg("out"), tid, 2)
        b.ret()
        func = b.build()
        assert len(func.block_order()) == 4

    def test_for_range_structure(self):
        b = KernelBuilder("k", params=[Param("out", "buffer")])
        b.block("entry")
        with b.for_range("i", 0, 8) as i:
            b.store(b.reg("out"), i, i)
        b.ret()
        func = b.build()
        # entry, header, body, exit
        assert len(func.block_order()) == 4

    def test_source_locations_attached(self):
        b = KernelBuilder("k", params=[Param("out", "buffer")], source_file="demo.cu")
        b.block("entry")
        b.loc(42)
        tid = b.tid_x()
        b.store(b.reg("out"), tid, tid)
        func = b.build()
        first = func.blocks["entry"].instructions[0]
        assert first.loc is not None
        assert first.loc.file == "demo.cu" and first.loc.line == 42

    def test_fresh_names_do_not_collide(self):
        b = KernelBuilder("k", params=[Param("out", "buffer")])
        b.block("entry")
        regs = {b.add(1, 2).name for _ in range(50)}
        assert len(regs) == 50
