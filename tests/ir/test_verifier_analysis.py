"""Tests for IR verification and the CFG analyses."""

import pytest

from repro.errors import IRVerificationError
from repro.ir import (
    BasicBlock,
    Const,
    Function,
    Instruction,
    Module,
    Reg,
    build_cfg,
    collect_constants,
    collect_operand_pool,
    collect_registers,
    immediate_postdominators,
    reachable_blocks,
    static_instruction_mix,
    verify_function,
    verify_module,
)


def _diamond_function():
    """entry -> (left | right) -> merge; the classic reconvergence shape."""
    func = Function("diamond")
    entry = func.add_block(BasicBlock("entry"))
    entry.append(Instruction("tid.x", dest="t"))
    entry.append(Instruction("cmp.lt", dest="p", operands=[Reg("t"), Const(4)]))
    entry.append(Instruction("condbr", operands=[Reg("p")],
                             attrs={"true_target": "left", "false_target": "right"}))
    left = func.add_block(BasicBlock("left"))
    left.append(Instruction("add", dest="a", operands=[Reg("t"), Const(1)]))
    left.append(Instruction("br", attrs={"target": "merge"}))
    right = func.add_block(BasicBlock("right"))
    right.append(Instruction("add", dest="a", operands=[Reg("t"), Const(2)]))
    right.append(Instruction("br", attrs={"target": "merge"}))
    merge = func.add_block(BasicBlock("merge"))
    merge.append(Instruction("ret"))
    return func


class TestVerifier:
    def test_valid_function_passes(self):
        report = verify_function(_diamond_function())
        assert report.ok
        assert not report.warnings

    def test_missing_terminator_is_error(self):
        func = Function("bad")
        block = func.add_block(BasicBlock("entry"))
        block.append(Instruction("tid.x", dest="t"))
        report = verify_function(func)
        assert not report.ok
        assert any("terminator" in message for message in report.errors)

    def test_unknown_branch_target_is_error(self):
        func = Function("bad")
        block = func.add_block(BasicBlock("entry"))
        block.append(Instruction("br", attrs={"target": "nowhere"}))
        report = verify_function(func)
        assert any("unknown block" in message for message in report.errors)

    def test_undefined_register_is_warning_not_error(self):
        func = Function("warns")
        block = func.add_block(BasicBlock("entry"))
        block.append(Instruction("add", dest="x", operands=[Reg("ghost"), Const(1)]))
        block.append(Instruction("ret"))
        report = verify_function(func)
        assert report.ok
        assert any("ghost" in message for message in report.warnings)

    def test_verify_module_raises_on_error(self):
        func = Function("bad")
        func.add_block(BasicBlock("entry")).append(Instruction("nop"))
        module = Module("m")
        module.add_function(func)
        with pytest.raises(IRVerificationError):
            verify_module(module)
        report = verify_module(module, raise_on_error=False)
        assert not report.ok

    def test_workload_kernels_verify(self):
        from repro.workloads.adept import build_adept_v0, build_adept_v1
        from repro.workloads.simcov import build_simcov_kernels

        for module in (build_adept_v0(32, 48).module, build_adept_v1(64, 96).module,
                       build_simcov_kernels().module):
            report = verify_module(module)
            assert report.ok


class TestCfgAnalysis:
    def test_cfg_edges(self):
        func = _diamond_function()
        graph = build_cfg(func)
        assert set(graph.successors("entry")) == {"left", "right"}
        assert set(graph.predecessors("merge")) == {"left", "right"}

    def test_reachability(self):
        func = _diamond_function()
        func.add_block(BasicBlock("orphan")).append(Instruction("ret"))
        assert "orphan" not in reachable_blocks(func)

    def test_postdominator_of_diamond_is_merge(self):
        ipdom = immediate_postdominators(_diamond_function())
        assert ipdom["entry"] == "merge"
        assert ipdom["left"] == "merge"
        assert ipdom["merge"] is None

    def test_postdominators_of_loop(self, axpy_kernel):
        # axpy has an if-then structure: the branch block's ipdom is the merge.
        ipdom = immediate_postdominators(axpy_kernel)
        entry = axpy_kernel.entry_label
        assert ipdom[entry] is not None

    def test_collect_registers_includes_params_and_dests(self, axpy_kernel):
        names = collect_registers(axpy_kernel)
        assert "x" in names and "y" in names and "gid" in names

    def test_collect_constants_deduplicates(self):
        func = _diamond_function()
        constants = collect_constants(func)
        values = [const.value for const in constants]
        assert len(values) == len(set(values))

    def test_operand_pool_contains_regs_and_consts(self):
        pool = collect_operand_pool(_diamond_function())
        assert any(isinstance(value, Reg) for value in pool)
        assert any(isinstance(value, Const) for value in pool)

    def test_static_instruction_mix(self):
        mix = static_instruction_mix(_diamond_function())
        assert mix["control"] == 4
        assert mix["cmp"] == 1
