"""Round-trip and error tests for the textual IR form."""

import pytest

from repro.errors import IRParseError
from repro.ir import (
    format_function,
    format_instruction,
    format_module,
    parse_function,
    parse_module,
)
from repro.ir.parser import parse_instruction
from repro.ir.values import Const, Reg

from ..conftest import build_axpy_kernel


def _roundtrip(module):
    text = format_module(module)
    return parse_module(text)


class TestRoundTrip:
    def test_axpy_module_roundtrips(self, axpy_module):
        parsed = _roundtrip(axpy_module)
        assert parsed.function_order() == axpy_module.function_order()
        original = axpy_module.get_function("axpy")
        recovered = parsed.get_function("axpy")
        assert recovered.instruction_count() == original.instruction_count()
        assert recovered.block_order() == original.block_order()
        assert [i.opcode for i in recovered.instructions()] == \
               [i.opcode for i in original.instructions()]

    def test_adept_v1_roundtrips(self):
        from repro.workloads.adept import build_adept_v1

        module = build_adept_v1(64, 96).module
        parsed = _roundtrip(module)
        assert parsed.instruction_count() == module.instruction_count()
        for name in module.function_order():
            original = module.get_function(name)
            recovered = parsed.get_function(name)
            assert [d.name for d in recovered.shared] == [d.name for d in original.shared]

    def test_simcov_roundtrips(self):
        from repro.workloads.simcov import build_simcov_kernels

        module = build_simcov_kernels().module
        parsed = _roundtrip(module)
        assert parsed.function_order() == module.function_order()
        assert parsed.instruction_count() == module.instruction_count()

    def test_locations_preserved(self, axpy_kernel):
        text = format_function(axpy_kernel)
        assert "!loc" not in text  # the axpy fixture does not set locations
        from repro.workloads.adept import build_adept_v1

        module = build_adept_v1(32, 48).module
        parsed = _roundtrip(module)
        locs = [i.loc for i in parsed.get_function("adept_v1_kernel").instructions()
                if i.loc is not None]
        assert locs, "source locations should survive the round trip"


class TestInstructionParsing:
    def test_parse_simple_add(self):
        inst = parse_instruction("%x = add %a, 2")
        assert inst.opcode == "add"
        assert inst.dest == "x"
        assert inst.operands == [Reg("a"), Const(2)]

    def test_parse_float_and_bool_constants(self):
        inst = parse_instruction("%x = select %p, 1.5, false")
        assert inst.operands[1] == Const(1.5)
        assert inst.operands[2] == Const(False)

    def test_parse_branches(self):
        br = parse_instruction("br done")
        assert br.attrs["target"] == "done"
        condbr = parse_instruction("condbr %p, a, b")
        assert condbr.attrs == {"true_target": "a", "false_target": "b"}

    def test_parse_location(self):
        inst = parse_instruction("%x = tid.x !loc kernel.cu:42")
        assert inst.loc.file == "kernel.cu"
        assert inst.loc.line == 42

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IRParseError):
            parse_instruction("%x = frobnicate %a")

    def test_bad_operand_rejected(self):
        with pytest.raises(IRParseError):
            parse_instruction("%x = add %a, @$!")

    def test_format_then_parse_instruction(self, axpy_kernel):
        for inst in axpy_kernel.instructions():
            reparsed = parse_instruction(format_instruction(inst))
            assert reparsed.opcode == inst.opcode
            assert reparsed.operands == inst.operands


class TestModuleParsingErrors:
    def test_missing_module_header(self):
        with pytest.raises(IRParseError):
            parse_module("func f() {\n entry:\n  ret\n}")

    def test_unterminated_function(self):
        with pytest.raises(IRParseError):
            parse_module('module "m"\nfunc f() {\n entry:\n  ret\n')

    def test_instruction_outside_block(self):
        with pytest.raises(IRParseError):
            parse_module('module "m"\nfunc f() {\n  ret\n}')

    def test_parse_function_helper(self):
        module, func = parse_function("func f(x: buffer) {\n entry:\n  ret\n}")
        assert func.name == "f"
        assert module.function_order() == ("f",)
