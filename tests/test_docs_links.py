"""Intra-repo markdown links must resolve (mirrors the CI docs job)."""

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    path = os.path.join(REPO_ROOT, "tools", "check_markdown_links.py")
    spec = importlib.util.spec_from_file_location("check_markdown_links", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_exist_and_are_linked_from_readme():
    for name in ("ARCHITECTURE.md", "runtime.md", "known-issues.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", name)), name
    readme = open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8").read()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/runtime.md" in readme


def test_markdown_links_resolve():
    checker = _load_checker()
    problems = checker.check_tree(REPO_ROOT)
    assert problems == []


def test_checker_catches_broken_links(tmp_path):
    (tmp_path / "doc.md").write_text("see [missing](nope/absent.md)")
    checker = _load_checker()
    problems = checker.check_tree(str(tmp_path))
    assert len(problems) == 1 and "absent.md" in problems[0]
