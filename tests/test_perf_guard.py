"""The run-over-run perf-regression guard reads the trajectory correctly."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_perf_regression import main  # noqa: E402


def write_trajectory(path, speedups, gate="jit"):
    runs = [{"gate": gate, "timestamp": f"t{i}",
             "hot_loop": {"speedup": value}}
            for i, value in enumerate(speedups)]
    path.write_text(json.dumps({"benchmark": "simulator_fast_path",
                                "runs": runs}))


def test_passes_with_fewer_than_two_runs(tmp_path, capsys):
    path = tmp_path / "bench.json"
    write_trajectory(path, [10.0])
    assert main([str(path)]) == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_passes_when_within_threshold(tmp_path):
    path = tmp_path / "bench.json"
    write_trajectory(path, [10.0, 9.0])  # -10% < 20% threshold
    assert main([str(path)]) == 0


def test_fails_on_regression(tmp_path, capsys):
    path = tmp_path / "bench.json"
    write_trajectory(path, [10.0, 7.0])  # -30% > 20% threshold
    assert main([str(path)]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_ignores_other_gates_and_improvements(tmp_path):
    path = tmp_path / "bench.json"
    runs = [
        {"gate": "jit", "hot_loop": {"speedup": 10.0}},
        {"gate": "dispatch", "hot_loop": {"speedup": 1.0}},  # not compared
        {"gate": "jit", "hot_loop": {"speedup": 12.0}},      # improvement
    ]
    path.write_text(json.dumps({"runs": runs}))
    assert main([str(path)]) == 0


def test_missing_or_corrupt_file_is_not_an_error(tmp_path):
    assert main([str(tmp_path / "absent.json")]) == 0
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{nope")
    assert main([str(corrupt)]) == 0


def test_run_id_tagged_entries_are_compared_and_surfaced(tmp_path, capsys):
    # Entries written since the telemetry subsystem carry a run_id; the
    # guard must keep comparing them and name the run in its output.
    path = tmp_path / "bench.json"
    runs = [
        {"gate": "jit", "timestamp": "t0", "hot_loop": {"speedup": 10.0}},
        {"gate": "jit", "timestamp": "t1", "run_id": "20260808T000000-abcd1234",
         "hot_loop": {"speedup": 9.5}},
    ]
    path.write_text(json.dumps({"runs": runs}))
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "run 20260808T000000-abcd1234" in out


def test_gate_is_unaffected_by_tracing_state(tmp_path):
    # The acceptance bar for the observability PR: a run measured with
    # tracing off must sit inside the same 20% guard band as before the
    # telemetry layer existed -- identical speedups trivially pass, and a
    # trace-induced slowdown beyond the band would fail.
    path = tmp_path / "bench.json"
    write_trajectory(path, [10.0, 10.0])
    assert main([str(path)]) == 0


def test_multi_check_compares_each_pair(tmp_path, capsys):
    path = tmp_path / "bench.json"
    runs = [
        {"gate": "jit", "hot_loop": {"speedup": 10.0}},
        {"gate": "memory_pricing", "mem_loop": {"speedup": 8.0}},
        {"gate": "jit", "hot_loop": {"speedup": 9.5}},
        {"gate": "memory_pricing", "mem_loop": {"speedup": 7.8}},
    ]
    path.write_text(json.dumps({"runs": runs}))
    assert main([str(path), "--check", "jit:hot_loop",
                 "--check", "memory_pricing:mem_loop"]) == 0
    out = capsys.readouterr().out
    assert "jit hot_loop" in out and "memory_pricing mem_loop" in out


def test_multi_check_fails_when_any_pair_regresses(tmp_path, capsys):
    path = tmp_path / "bench.json"
    runs = [
        {"gate": "jit", "hot_loop": {"speedup": 10.0}},
        {"gate": "memory_pricing", "mem_loop": {"speedup": 8.0}},
        {"gate": "jit", "hot_loop": {"speedup": 10.0}},       # flat
        {"gate": "memory_pricing", "mem_loop": {"speedup": 4.0}},  # -50%
    ]
    path.write_text(json.dumps({"runs": runs}))
    assert main([str(path), "--check", "jit:hot_loop",
                 "--check", "memory_pricing:mem_loop"]) == 1
    assert "REGRESSION: memory_pricing mem_loop" in capsys.readouterr().out


def test_empty_document_and_missing_runs_key_exit_cleanly(tmp_path, capsys):
    # An empty JSON object or a document without a "runs" list is a fresh
    # trajectory, not an error -- the guard must not traceback on it.
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    assert main([str(empty), "--check", "memory_pricing:mem_loop"]) == 0
    assert "nothing to compare" in capsys.readouterr().out
    no_runs = tmp_path / "no_runs.json"
    no_runs.write_text(json.dumps({"benchmark": "simulator_fast_path"}))
    assert main([str(no_runs)]) == 0
    empty_runs = tmp_path / "empty_runs.json"
    empty_runs.write_text(json.dumps({"runs": []}))
    assert main([str(empty_runs)]) == 0
