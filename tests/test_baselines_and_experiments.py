"""Tests for the search baselines and the experiment registry."""

import pytest

from repro.baselines import HillClimber, RandomSearch
from repro.experiments import ExperimentResult, available_experiments, get_experiment
from repro.gevo import GevoConfig
from repro.workloads import ToyWorkloadAdapter


@pytest.fixture(scope="module")
def toy_adapter():
    return ToyWorkloadAdapter(elements=128)


class TestBaselines:
    def test_random_search_finds_something_or_stays_neutral(self, toy_adapter):
        config = GevoConfig.quick(seed=31, population_size=8, generations=4)
        result = RandomSearch(toy_adapter, config).run()
        assert result.evaluations > 0
        assert result.speedup >= 1.0 or result.best is None

    def test_hill_climber_improves_toy_kernel(self, toy_adapter):
        config = GevoConfig.quick(seed=32, population_size=8, generations=4)
        result = HillClimber(toy_adapter, config).run(steps=40)
        assert result.best.valid
        assert result.speedup > 1.0
        assert result.accepted_edits >= 1
        assert result.accepted_edits + result.rejected_edits <= 40

    def test_hill_climber_history_is_monotone(self, toy_adapter):
        config = GevoConfig.quick(seed=33, population_size=8, generations=4)
        result = HillClimber(toy_adapter, config).run(steps=25)
        series = [value for value in result.history.best_fitness_series() if value is not None]
        assert all(later <= earlier + 1e-12
                   for earlier, later in zip(series, series[1:]))


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        expected = {"table1", "figure4", "figure5", "figure6", "figure7", "figure8",
                    "ballot_sync", "boundary", "generality"}
        assert expected <= set(available_experiments())

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("figure99")

    def test_table1_rows(self):
        result = get_experiment("table1")()
        assert [row["GPU"] for row in result.rows] == ["P100", "1080Ti", "V100"]
        assert "Table I" in result.to_table()

    def test_experiment_result_table_rendering(self):
        result = ExperimentResult("demo", "demo experiment")
        result.add_row(name="a", value=1.23456)
        result.add_row(name="bb", other="x")
        text = result.to_table()
        assert "demo experiment" in text
        assert "1.235" in text
        assert result.column_names() == ["name", "value", "other"]

    def test_figure5_shape(self):
        result = get_experiment("figure5")(architectures=["P100"])
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["baseline_valid"] and row["gevo_valid"]
        assert row["speedup"] > 1.05
