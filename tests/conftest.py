"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import GpuDevice, get_arch
from repro.ir import KernelBuilder, Param, build_module


@pytest.fixture
def p100_device() -> GpuDevice:
    """A simulated P100, the paper's primary analysis GPU."""
    return GpuDevice(get_arch("P100"))


@pytest.fixture
def v100_device() -> GpuDevice:
    return GpuDevice(get_arch("V100"))


def build_axpy_kernel():
    """A tiny saxpy-style kernel used by several tests: y[i] = a*x[i] + y[i]."""
    b = KernelBuilder(
        "axpy",
        params=[Param("x", "buffer"), Param("y", "buffer"),
                Param("a", "scalar"), Param("n", "scalar")],
    )
    b.block("entry")
    tid = b.tid_x()
    bid = b.bid_x()
    bdim = b.bdim_x()
    offset = b.mul(bid, bdim)
    gid = b.add(offset, tid, dest="gid")
    in_bounds = b.lt(gid, b.reg("n"))
    with b.if_then(in_bounds):
        xv = b.load(b.reg("x"), gid)
        yv = b.load(b.reg("y"), gid)
        scaled = b.mul(xv, b.reg("a"))
        total = b.add(scaled, yv)
        b.store(b.reg("y"), gid, total)
    b.ret()
    return b.build()


@pytest.fixture
def axpy_kernel():
    return build_axpy_kernel()


@pytest.fixture
def axpy_module(axpy_kernel):
    return build_module("axpy_module", axpy_kernel)


@pytest.fixture
def axpy_inputs():
    rng = np.random.default_rng(7)
    n = 150
    x = rng.normal(size=n)
    y = rng.normal(size=n)
    return x, y, n


# --------------------------------------------------------------------------- workload fixtures
@pytest.fixture(scope="session")
def adept_v1_adapter():
    """ADEPT-V1 on the P100 with the small search pair set (fast evaluations)."""
    from repro.workloads.adept import AdeptWorkloadAdapter, search_pairs

    return AdeptWorkloadAdapter("v1", get_arch("P100"), fitness_cases=[search_pairs()])


@pytest.fixture(scope="session")
def adept_v0_adapter():
    """ADEPT-V0 on the P100 with a single short pair (V0 is expensive to simulate)."""
    from repro.workloads.adept import AdeptWorkloadAdapter, generate_pairs

    pairs = generate_pairs(1, reference_length=36, query_length=22, seed=5)
    return AdeptWorkloadAdapter("v0", get_arch("P100"), fitness_cases=[pairs])


@pytest.fixture(scope="session")
def simcov_adapter():
    """SIMCoV on the P100 with the quick 8x8 grid."""
    from repro.workloads.simcov import SimCovParams, SimCovWorkloadAdapter

    return SimCovWorkloadAdapter(get_arch("P100"), fitness_params=SimCovParams.quick(),
                                 validation_params=SimCovParams.validation())
