"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure4" in output and "table1" in output

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "V100" in output

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_single_architecture(self, capsys):
        assert main(["run", "figure5", "--arch", "P100"]) == 0
        output = capsys.readouterr().out
        assert "P100" in output
        # Only the requested GPU appears as a data row (the paper-reference
        # note still mentions the others).
        assert not any(line.startswith("1080Ti") for line in output.splitlines())

    def test_search_toy_workload(self, capsys):
        assert main(["search", "toy", "--population", "8", "--generations", "4",
                     "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "best speedup" in output

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
