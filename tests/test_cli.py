"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure4" in output and "table1" in output

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "V100" in output

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_single_architecture(self, capsys):
        assert main(["run", "figure5", "--arch", "P100"]) == 0
        output = capsys.readouterr().out
        assert "P100" in output
        # Only the requested GPU appears as a data row (the paper-reference
        # note still mentions the others).
        assert not any(line.startswith("1080Ti") for line in output.splitlines())

    def test_search_toy_workload(self, capsys):
        assert main(["search", "toy", "--population", "8", "--generations", "4",
                     "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "best speedup" in output

    def test_search_with_sqlite_cache_backend(self, capsys, tmp_path):
        cache = str(tmp_path / "fitness.json")  # extension overridden by the flag
        assert main(["search", "toy", "--population", "6", "--generations", "2",
                     "--cache", cache, "--cache-backend", "sqlite"]) == 0
        with open(cache, "rb") as handle:
            assert handle.read(16) == b"SQLite format 3\x00"

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestInterpreterTierFlags:
    def test_search_accepts_each_tier(self, capsys):
        for tier in ("jit", "dispatch", "oracle"):
            assert main(["search", "toy", "--population", "4",
                         "--generations", "1", "--seed", "3",
                         "--interpreter-tier", tier]) == 0
            assert "best speedup" in capsys.readouterr().out

    def test_reference_interpreter_still_selects_the_oracle(self, capsys):
        assert main(["search", "toy", "--population", "4", "--generations", "1",
                     "--seed", "3", "--reference-interpreter"]) == 0
        assert "best speedup" in capsys.readouterr().out

    def test_reference_flag_agrees_with_explicit_oracle(self, capsys):
        assert main(["search", "toy", "--population", "4", "--generations", "1",
                     "--seed", "3", "--reference-interpreter",
                     "--interpreter-tier", "oracle"]) == 0
        assert "best speedup" in capsys.readouterr().out

    @pytest.mark.parametrize("tier", ["jit", "dispatch"])
    @pytest.mark.parametrize("command", [
        ["search", "toy"],
        ["baseline", "random", "toy"],
        ["sweep", "--arch", "P100", "--workload", "toy"],
    ])
    def test_contradictory_tier_flags_are_rejected(self, command, tier,
                                                   capsys, tmp_path):
        argv = command + ["--reference-interpreter", "--interpreter-tier", tier]
        if command[0] == "sweep":
            argv += ["--sweep-dir", str(tmp_path / "sweep")]
        else:
            argv += ["--population", "4", "--generations", "1"]
        assert main(argv) == 2
        error = capsys.readouterr().err
        assert "--reference-interpreter" in error
        assert "drop one of the two flags" in error

    def test_tier_results_are_bit_identical(self, capsys):
        outputs = []
        for tier in ("jit", "dispatch", "oracle"):
            assert main(["search", "toy", "--population", "6",
                         "--generations", "2", "--seed", "7",
                         "--interpreter-tier", tier]) == 0
            output = capsys.readouterr().out
            outputs.append(next(line for line in output.splitlines()
                                if line.startswith("best speedup")))
        assert outputs[0] == outputs[1] == outputs[2]


class TestBaselineCli:
    def test_random_baseline_runs(self, capsys):
        assert main(["baseline", "random", "toy", "--population", "6",
                     "--generations", "2", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "random search" in output and "best speedup" in output

    def test_hill_baseline_runs_with_steps(self, capsys):
        assert main(["baseline", "hill", "toy", "--steps", "12", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "hill climbing" in output and "accepted" in output

    def test_random_baseline_resumes_with_zero_reevaluations(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ckpt.json")
        cache = str(tmp_path / "fitness.sqlite")
        argv = ["baseline", "random", "toy", "--population", "6", "--generations", "2",
                "--seed", "3", "--cache", cache, "--resume", checkpoint]
        assert main(argv) == 0
        capsys.readouterr()
        # The first run completed, so the re-issued command resumes from the
        # final checkpoint and re-simulates nothing.
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "resuming from" in output
        assert "0 evaluations" in output

    def test_hill_baseline_resume_round_trip(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ckpt.json")
        argv = ["baseline", "hill", "toy", "--steps", "10", "--seed", "3",
                "--resume", checkpoint]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "resuming from" in output
        assert "0 evaluations" in output

    def test_executor_flag_selects_the_backend(self, capsys):
        assert main(["search", "toy", "--population", "6", "--generations", "2",
                     "--seed", "3", "--jobs", "2", "--executor", "async"]) == 0
        output = capsys.readouterr().out
        assert "executor=async" in output and "best speedup" in output

    def test_mismatched_resume_is_a_clean_error(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ckpt.json")
        assert main(["baseline", "random", "toy", "--population", "6",
                     "--generations", "2", "--seed", "3",
                     "--resume", checkpoint]) == 0
        capsys.readouterr()
        # Same checkpoint, different algorithm: refused, not mangled.
        assert main(["baseline", "hill", "toy", "--resume", checkpoint]) == 2
        assert "random_search" in capsys.readouterr().err


class TestSweepCli:
    ARGS = ["sweep", "--arch", "P100,V100", "--workload", "toy",
            "--seeds", "0,1", "--population", "4", "--generations", "2",
            "--executor", "async", "--jobs", "2"]

    def test_sweep_produces_one_aggregated_report(self, capsys, tmp_path):
        sweep_dir = str(tmp_path / "sweep")
        assert main(self.ARGS + ["--sweep-dir", sweep_dir]) == 0
        output = capsys.readouterr().out
        assert "4 legs" in output
        assert "report:" in output
        import json
        with open(f"{sweep_dir}/report.json") as handle:
            assert len(json.load(handle)["legs"]) == 4
        assert "workload,arch,seed" in open(f"{sweep_dir}/report.csv").read()

    def test_sweep_resume_skips_finished_legs(self, capsys, tmp_path):
        sweep_dir = str(tmp_path / "sweep")
        assert main(self.ARGS + ["--sweep-dir", sweep_dir]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--sweep-dir", sweep_dir, "--resume"]) == 0
        output = capsys.readouterr().out
        assert "4 skipped" in output
        assert "0 fresh evaluations" in output

    def test_sweep_workload_alias_and_runs_default(self, capsys, tmp_path):
        # "adept" resolves to "adept-v1" end-to-end; --runs N yields
        # seeds 0..N-1.  One ADEPT generation keeps this cheap (~0.2s).
        sweep_dir = str(tmp_path / "sweep")
        assert main(["sweep", "--arch", "p100", "--workload", "adept",
                     "--runs", "1", "--population", "4", "--generations", "1",
                     "--sweep-dir", sweep_dir]) == 0
        output = capsys.readouterr().out
        assert "1 legs" in output
        assert "gevo-adept-v1-P100-seed0" in output

    def test_sweep_unknown_arch_is_a_clean_error(self, capsys, tmp_path):
        assert main(["sweep", "--arch", "K80", "--workload", "toy",
                     "--sweep-dir", str(tmp_path / "s")]) == 2
        assert "unknown GPU architecture" in capsys.readouterr().err

    def test_sweep_bad_seeds_is_a_clean_error(self, capsys, tmp_path):
        assert main(["sweep", "--arch", "P100", "--workload", "toy",
                     "--seeds", "0,x", "--sweep-dir", str(tmp_path / "s")]) == 2
        assert "--seeds expects" in capsys.readouterr().err

    def test_sweep_resume_with_changed_budget_is_a_clean_error(self, capsys, tmp_path):
        sweep_dir = str(tmp_path / "sweep")
        base = ["sweep", "--arch", "P100", "--workload", "toy", "--seeds", "0",
                "--generations", "1", "--population", "4", "--sweep-dir", sweep_dir]
        assert main(base) == 0
        capsys.readouterr()
        # Re-running with --resume under a bigger budget must refuse, not
        # silently republish the small run's results.
        assert main(["sweep", "--arch", "P100", "--workload", "toy",
                     "--seeds", "0", "--generations", "6", "--population", "8",
                     "--sweep-dir", sweep_dir, "--resume"]) == 2
        assert "re-run with the original budget" in capsys.readouterr().err
