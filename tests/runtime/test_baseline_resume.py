"""Resume-equivalence for the baselines.

An interrupted-then-resumed random-search or hill-climbing run must be
indistinguishable from the uninterrupted run -- same best individual,
same history, same evaluation count -- and must never re-simulate a
variant evaluated before the interruption (the checkpoint carries the
fitness-cache contents).
"""

import pytest

from repro.baselines import HillClimber, RandomSearch
from repro.errors import SearchError
from repro.gevo import GevoConfig
from repro.runtime import EvaluationEngine, SearchCheckpoint
from repro.workloads import ToyWorkloadAdapter


@pytest.fixture(scope="module")
def adapter():
    return ToyWorkloadAdapter(elements=64)


CONFIG = dict(seed=41, population_size=6, generations=5)
HILL_STEPS = 30


def _config(**overrides):
    return GevoConfig.quick(**dict(CONFIG, **overrides))


def _history_fingerprint(history):
    return (
        history.baseline_runtime,
        [(r.generation, r.best_fitness, r.mean_fitness, r.valid_count,
          r.population_size, r.best_edit_keys, r.evaluations)
         for r in history.records],
        history.first_seen_in_best,
        history.first_seen_in_population,
    )


class TestRandomSearchResume:
    def _interrupted_run(self, adapter, path, stop_at):
        """Run only the first *stop_at* sampling waves, checkpointing each."""
        RandomSearch(adapter, _config(generations=stop_at)).run(checkpoint_path=path)
        # The checkpoint was taken mid-run; patch the recorded config back
        # to the full-length run it belongs to.
        checkpoint = SearchCheckpoint.load(path)
        checkpoint.config["generations"] = CONFIG["generations"]
        checkpoint.save(path)

    def test_resumed_run_is_bitwise_identical(self, adapter, tmp_path):
        uninterrupted = RandomSearch(adapter, _config()).run()

        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=2)
        resumed = RandomSearch(adapter, _config()).run(resume_from=path)

        assert resumed.best.edit_keys() == uninterrupted.best.edit_keys()
        assert resumed.best.fitness == uninterrupted.best.fitness
        assert resumed.best.valid == uninterrupted.best.valid
        assert resumed.evaluations == uninterrupted.evaluations
        assert (_history_fingerprint(resumed.history)
                == _history_fingerprint(uninterrupted.history))

    def test_resume_re_evaluates_nothing_from_before_the_cut(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=2)
        checkpoint = SearchCheckpoint.load(path)

        engine = EvaluationEngine(adapter)
        RandomSearch(adapter, _config(), engine=engine).run(resume_from=path)
        uninterrupted = RandomSearch(adapter, _config()).run()
        # The resumed engine executed only the post-cut variants; everything
        # earlier came from the checkpoint's imported cache.
        assert engine.evaluations == uninterrupted.evaluations - checkpoint.evaluations

    def test_resume_rejects_config_mismatch(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=2)
        with pytest.raises(SearchError):
            RandomSearch(adapter, _config(seed=99)).run(resume_from=path)

    def test_resume_rejects_wrong_algorithm(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=2)
        with pytest.raises(SearchError, match="random_search"):
            HillClimber(adapter, _config()).run(resume_from=path)


class TestHillClimberResume:
    def _interrupted_run(self, adapter, path, stop_at):
        """Climb only the first *stop_at* steps, checkpointing each one."""
        HillClimber(adapter, _config()).run(steps=stop_at, checkpoint_path=path)
        checkpoint = SearchCheckpoint.load(path)
        checkpoint.state["budget"] = HILL_STEPS
        checkpoint.save(path)

    def test_resumed_climb_is_bitwise_identical(self, adapter, tmp_path):
        uninterrupted = HillClimber(adapter, _config()).run(steps=HILL_STEPS)

        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=11)
        resumed = HillClimber(adapter, _config()).run(resume_from=path)

        assert resumed.best.edit_keys() == uninterrupted.best.edit_keys()
        assert resumed.best.fitness == uninterrupted.best.fitness
        assert resumed.accepted_edits == uninterrupted.accepted_edits
        assert resumed.rejected_edits == uninterrupted.rejected_edits
        assert resumed.evaluations == uninterrupted.evaluations
        assert (_history_fingerprint(resumed.history)
                == _history_fingerprint(uninterrupted.history))

    def test_resume_re_evaluates_nothing_from_before_the_cut(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=11)
        checkpoint = SearchCheckpoint.load(path)

        engine = EvaluationEngine(adapter)
        HillClimber(adapter, _config(), engine=engine).run(resume_from=path)
        uninterrupted = HillClimber(adapter, _config()).run(steps=HILL_STEPS)
        assert engine.evaluations == uninterrupted.evaluations - checkpoint.evaluations

    def test_resume_honours_the_recorded_budget(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=11)
        resumed = HillClimber(adapter, _config()).run(resume_from=path)
        assert resumed.history.records[-1].generation == HILL_STEPS

    def test_resume_rejects_conflicting_steps(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=11)
        with pytest.raises(SearchError, match="budget"):
            HillClimber(adapter, _config()).run(steps=HILL_STEPS + 5, resume_from=path)

    def test_resume_rejects_wrong_algorithm(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=11)
        with pytest.raises(SearchError, match="hill_climber"):
            RandomSearch(adapter, _config()).run(resume_from=path)


class TestCheckpointEvery:
    def test_sparse_cadence_skips_intermediate_writes_but_keeps_the_final_one(
            self, adapter, tmp_path, monkeypatch):
        written = []
        original = RandomSearch.capture_checkpoint

        def counting(self):
            checkpoint = original(self)
            written.append(checkpoint.generation)
            return checkpoint

        monkeypatch.setattr(RandomSearch, "capture_checkpoint", counting)
        path = str(tmp_path / "ckpt.json")
        RandomSearch(adapter, _config(generations=4)).run(
            checkpoint_path=path, checkpoint_every=3)
        # Waves 1-4 ran; only wave 3 hit the modulus, plus the final state.
        assert written == [3, 4]
        assert SearchCheckpoint.load(path).generation == 4

    def test_short_hill_climb_still_leaves_a_resumable_checkpoint(self, adapter, tmp_path):
        # budget < checkpoint_every: the periodic modulus never fires, but
        # the end-of-run write still makes the command re-issuable.
        path = str(tmp_path / "ckpt.json")
        HillClimber(adapter, _config()).run(steps=5, checkpoint_path=path,
                                            checkpoint_every=50)
        checkpoint = SearchCheckpoint.load(path)
        assert checkpoint.generation == 5
        engine = EvaluationEngine(adapter)
        HillClimber(adapter, _config(), engine=engine).run(resume_from=path)
        assert engine.evaluations == 0
