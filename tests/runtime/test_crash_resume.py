"""Crash-exact resume: kill the run at every injection point, resume, compare.

The battery enumerates every ``(kill point, occurrence)`` pair an
uninterrupted reference run actually reaches (via
:func:`repro.runtime.faultpoints.observe`), then for each pair crashes a
fresh run at exactly that point with :class:`SimulatedCrash`, discards
the whole in-memory object graph -- as process death would -- and
resumes from the on-disk checkpoint + cache with fresh objects.  The
resumed run must reproduce the reference bit-for-bit: best individual,
evaluation count, and full serialized history.

The persistent SQLite cache tier is deliberately in play: the original
divergence was the disk cache flushing mid-round *before* the round's
checkpoint, so a resumed replay was served stale hits and undercounted
evaluations.  Every scenario here runs against a disk cache so that
window stays covered.
"""

import json
import os

import pytest

from repro.baselines import HillClimber, RandomSearch
from repro.gevo import GevoConfig, GevoSearch
from repro.runtime import (
    EvaluationEngine,
    FitnessCache,
    SearchCheckpoint,
    SimulatedCrash,
    SweepSpec,
    Telemetry,
    run_sweep,
    serialize_history,
)
from repro.runtime import faultpoints
from repro.ir import reset_uid_namespace
from repro.workloads import ToyWorkloadAdapter

CONFIG = dict(seed=7, population_size=4, generations=3)
HILL_STEPS = 6  # keep the hill battery small; the budget is per-step


@pytest.fixture(autouse=True)
def _disarmed():
    """Never leak an armed kill point into another test."""
    faultpoints.disarm()
    yield
    faultpoints.disarm()


def _make_search(algorithm, engine):
    adapter = ToyWorkloadAdapter(elements=64)
    config = GevoConfig.quick(**CONFIG)
    if algorithm == "gevo":
        return GevoSearch(adapter, config, engine=engine)
    if algorithm == "random_search":
        return RandomSearch(adapter, config, engine=engine)
    return HillClimber(adapter, config, engine=engine)


def _run(algorithm, workdir, *, resume=False, telemetry=None):
    """One full run with a fresh object graph against *workdir*'s state.

    Each call simulates a freshly-started process: the instruction uid
    namespace restarts at 1 (as it would after a real SIGKILL +
    relaunch), so checkpointed edits address the rebuilt modules exactly.
    """
    reset_uid_namespace()
    cache = FitnessCache(os.path.join(workdir, "cache.sqlite"),
                         backend="sqlite")
    engine = EvaluationEngine(ToyWorkloadAdapter(elements=64), cache=cache,
                              telemetry=telemetry)
    search = _make_search(algorithm, engine)
    checkpoint_path = os.path.join(workdir, "ckpt.json")
    resume_from = checkpoint_path if resume and os.path.exists(
        checkpoint_path) else None
    kwargs = dict(checkpoint_path=checkpoint_path, checkpoint_every=1,
                  resume_from=resume_from)
    try:
        if algorithm == "hill_climber":
            result = search.run(HILL_STEPS, **kwargs)
        else:
            result = search.run(**kwargs)
    except SimulatedCrash:
        # A crash: walk away without closing, exactly as SIGKILL would --
        # no final cache flush, no engine teardown.
        raise
    engine.close()
    return result, engine


def _summary(result):
    best = result.best
    return {
        "best": None if best is None else
                (best.edit_keys(), best.fitness, best.valid),
        "evaluations": result.evaluations,
        "history": serialize_history(result.history),
    }


def _reference(algorithm, tmp_path):
    """Uninterrupted run; returns its summary and every reachable kill pair."""
    workdir = str(tmp_path / "reference")
    os.makedirs(workdir)
    faultpoints.observe()
    try:
        result, _ = _run(algorithm, workdir)
    finally:
        hits = faultpoints.hit_counts()
        faultpoints.disarm()
    pairs = [(point, occurrence)
             for point, count in sorted(hits.items())
             for occurrence in range(1, count + 1)]
    assert pairs, "the reference run reached no kill points"
    return _summary(result), pairs


class TestKillPointBattery:
    @pytest.mark.parametrize("algorithm",
                             ["gevo", "random_search", "hill_climber"])
    def test_resume_is_exact_from_every_kill_point(self, algorithm, tmp_path):
        reference, pairs = _reference(algorithm, tmp_path)
        # Every loop phase must actually be instrumented for this search.
        points = {point for point, _ in pairs}
        assert {"search.round.spawned", "search.round.evaluated",
                "search.round.scored", "search.round.checkpointed",
                "search.finished", "checkpoint.save",
                "engine.batch.cached"} <= points

        for point, occurrence in pairs:
            workdir = str(tmp_path / f"{point}.{occurrence}")
            os.makedirs(workdir)
            faultpoints.arm(point, occurrence)
            try:
                with pytest.raises(SimulatedCrash):
                    _run(algorithm, workdir)
            finally:
                faultpoints.disarm()
            result, engine = _run(algorithm, workdir, resume=True)
            assert _summary(result) == reference, (
                f"{algorithm} resume diverged after a crash at "
                f"{point}:{occurrence}")


class TestZeroReEvaluation:
    def test_resume_after_final_round_replays_nothing(self, tmp_path):
        """Crash after the last checkpoint: resume touches zero simulations.

        The resumed process is handed a complete round-boundary
        checkpoint, so every lookup -- the baseline included -- must be
        a cache hit, observable as ``cache.misses == 0`` in telemetry
        and zero executed evaluations on the engine.
        """
        workdir = str(tmp_path / "run")
        os.makedirs(workdir)
        reference, pairs = _reference("gevo", tmp_path)

        faultpoints.arm("search.finished")  # fires after the final save
        try:
            with pytest.raises(SimulatedCrash):
                _run("gevo", workdir)
        finally:
            faultpoints.disarm()

        telemetry = Telemetry(enabled=True)
        result, engine = _run("gevo", workdir, resume=True,
                              telemetry=telemetry)
        assert _summary(result) == reference
        assert telemetry.metrics.counter("cache.misses").value == 0
        assert telemetry.metrics.counter("cache.hits").value > 0
        assert engine.evaluations == 0

    def test_resume_emits_replay_event(self, tmp_path):
        workdir = str(tmp_path / "run")
        os.makedirs(workdir)
        faultpoints.arm("search.round.scored", occurrence=2)
        try:
            with pytest.raises(SimulatedCrash):
                _run("gevo", workdir)
        finally:
            faultpoints.disarm()

        telemetry = Telemetry(enabled=True)
        events = []
        telemetry.add_sink(events.append)
        _run("gevo", workdir, resume=True, telemetry=telemetry)
        replays = [e for e in events if e.name == "search.resume_replay"]
        assert len(replays) == 1
        fields = replays[0].fields
        assert fields["algorithm"] == "gevo"
        assert fields["round"] >= 1
        assert fields["evaluations"] > 0
        assert fields["cached_entries"] > 0


class TestSharedCacheAccounting:
    """Resume accounting under a sweep-style *shared* cache.

    Cache keys are namespaced by workload+arch, not seed, so a leg's
    round-boundary ``cache_entries`` snapshot contains sibling legs'
    results.  Seeding the resume ledger from that snapshot (instead of
    the checkpoint's own ``ledger_keys``) marks sibling entries
    pre-charged, and every post-resume submission of an edit set a
    sibling evaluated first goes uncounted -- the resumed leg then
    reports fewer evaluations than the uninterrupted one.
    """

    SEEDS = (7, 8)

    def _run_seed(self, workdir, seed, *, resume=False):
        reset_uid_namespace()
        cache = FitnessCache(os.path.join(workdir, "shared.sqlite"),
                             backend="sqlite")
        engine = EvaluationEngine(ToyWorkloadAdapter(elements=64),
                                  cache=cache)
        # population_size=6 (not the battery's 4): the larger population
        # makes the two seeds' edit-set timelines overlap *after* the
        # crash cut, which is the window the sibling-contamination bug
        # undercounts -- with 4 the runs happen not to overlap there and
        # the test could not fail.
        config = GevoConfig.quick(seed=seed, population_size=6,
                                  generations=5)
        search = GevoSearch(ToyWorkloadAdapter(elements=64), config,
                            engine=engine)
        checkpoint_path = os.path.join(workdir, f"ckpt-{seed}.json")
        resume_from = checkpoint_path if resume else None
        result = search.run(checkpoint_path=checkpoint_path,
                            checkpoint_every=1, resume_from=resume_from)
        engine.close()
        return result

    def test_resumed_count_ignores_sibling_cache_entries(self, tmp_path):
        first, second = self.SEEDS
        reference_dir = str(tmp_path / "reference")
        os.makedirs(reference_dir)
        self._run_seed(reference_dir, first)
        reference = _summary(self._run_seed(reference_dir, second))

        crashed_dir = str(tmp_path / "crashed")
        os.makedirs(crashed_dir)
        self._run_seed(crashed_dir, first)
        # Crash the second search after its first checkpoint exists, so
        # the resume really goes through the checkpointed-ledger path
        # (a crash before any checkpoint falls back to a fresh start).
        faultpoints.arm("search.round.scored", occurrence=2)
        try:
            with pytest.raises(SimulatedCrash):
                self._run_seed(crashed_dir, second)
        finally:
            faultpoints.disarm()
        resumed = _summary(self._run_seed(crashed_dir, second, resume=True))
        assert resumed == reference

    def test_checkpoint_separates_ledger_keys_from_cache_snapshot(
            self, tmp_path):
        """The divergence mechanism itself: a shared cache makes the
        checkpoint's cache snapshot a strict superset of the keys this
        search submitted, and the ledger must restore from the latter."""
        from repro.runtime.checkpoint import EvaluationLedger

        first, second = self.SEEDS
        workdir = str(tmp_path / "run")
        os.makedirs(workdir)
        self._run_seed(workdir, first)
        faultpoints.arm("search.round.scored", occurrence=2)
        try:
            with pytest.raises(SimulatedCrash):
                self._run_seed(workdir, second)
        finally:
            faultpoints.disarm()
        checkpoint = SearchCheckpoint.load(
            os.path.join(workdir, f"ckpt-{second}.json"))
        assert checkpoint.ledger_keys is not None
        snapshot_keys = set(checkpoint.cache_entries)
        assert set(checkpoint.ledger_keys) < snapshot_keys, (
            "expected the shared-cache snapshot to hold sibling entries "
            "beyond this search's own submissions")
        ledger = EvaluationLedger.from_checkpoint(checkpoint)
        assert set(ledger.known_keys()) == set(checkpoint.ledger_keys)
        assert ledger.count == checkpoint.evaluations


def _sweep_spec():
    return SweepSpec(archs=["P100"], workloads=["toy"], seeds=[0, 1],
                     method="gevo", population=4, generations=2)


def _sweep_rows(report):
    """Report rows minus the fields that legitimately differ on resume."""
    return [(row.workload, row.arch, row.seed, row.method, row.speedup,
             row.best_runtime_ms, row.baseline_runtime_ms, row.best_edits,
             row.evaluations) for row in report.rows]


def _leg_checkpoints(sweep_dir):
    """Every leg's final checkpoint document, keyed by leg id.

    The checkpoint holds the leg's full timeline -- population, history,
    RNG stream, ledger count, cache snapshot -- so document equality is
    the strongest bit-for-bit statement available per leg (report rows
    alone are aggregates and can collide).
    """
    checkpoints_dir = os.path.join(sweep_dir, "checkpoints")
    documents = {}
    for name in sorted(os.listdir(checkpoints_dir)):
        with open(os.path.join(checkpoints_dir, name)) as handle:
            documents[name] = json.load(handle)
    return documents


class TestSweepBattery:
    def test_sweep_resume_is_exact_from_every_kill_point(self, tmp_path):
        ref_dir = str(tmp_path / "reference")
        faultpoints.observe()
        try:
            reset_uid_namespace()
            reference = _sweep_rows(run_sweep(_sweep_spec(), ref_dir))
            reference_checkpoints = _leg_checkpoints(ref_dir)
        finally:
            hits = faultpoints.hit_counts()
            faultpoints.disarm()
        assert {"sweep.leg.completed", "sweep.leg.recorded"} <= set(hits)
        # Every point at its first, middle and last occurrence: the first
        # lands in the first leg, the middle in a *later* leg's early
        # rounds (the window where a resumed invocation has skipped
        # finished legs -- which once shifted the uid namespace under the
        # resumed leg's checkpoint), and the last at the end of the grid.
        # The full cross product of search-level pairs is already covered
        # by the per-search battery above.
        pairs = sorted({(point, occurrence)
                        for point, count in hits.items()
                        for occurrence in {1, count // 2 + 1, count}})

        for point, occurrence in pairs:
            sweep_dir = str(tmp_path / f"{point}.{occurrence}")
            faultpoints.arm(point, occurrence)
            try:
                reset_uid_namespace()
                with pytest.raises(SimulatedCrash):
                    run_sweep(_sweep_spec(), sweep_dir)
            finally:
                faultpoints.disarm()
            reset_uid_namespace()
            report = run_sweep(_sweep_spec(), sweep_dir, resume=True)
            assert _sweep_rows(report) == reference, (
                f"sweep resume diverged after a crash at "
                f"{point}:{occurrence}")
            assert _leg_checkpoints(sweep_dir) == reference_checkpoints, (
                f"a leg's checkpointed timeline diverged after a crash at "
                f"{point}:{occurrence}")
