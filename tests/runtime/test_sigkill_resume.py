"""Pinned repro for the known SIGKILL-mid-run resume divergence.

ROADMAP (and docs/known-issues.md): resume is bit-for-bit for
*cooperative* interruptions, but a hard SIGKILL mid-round can leave a
resumed run ending with a different best / evaluation count than the
uninterrupted run.  This test executes the exact recipe -- an
uninterrupted reference run, then the same command SIGKILLed mid-run
and resumed to completion -- and compares the outcomes.

``xfail(strict=False)``: the kill lands at a nondeterministic point, so
on a lucky round boundary the two runs agree and the test passes; when
the underlying bug is fixed the test will always pass and should be
promoted to a strict equivalence test next to the cooperative-resume
batteries (tests/runtime/test_checkpoint.py).
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.slow

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")


def _command(checkpoint: str):
    return [sys.executable, "-m", "repro.cli", "search", "toy",
            "--population", "8", "--generations", "300", "--seed", "5",
            "--resume", checkpoint]


def _environment():
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _outcome(stdout: str):
    match = re.search(r"best speedup: ([0-9.]+)x with (\d+) edits "
                      r"\((\d+) evaluations", stdout)
    assert match, f"unparseable search output:\n{stdout}"
    return float(match.group(1)), int(match.group(2)), int(match.group(3))


def _wait_for_generation(checkpoint: str, generation: int, timeout: float) -> bool:
    """Poll the checkpoint until its round counter reaches *generation*."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(checkpoint, "r", encoding="utf-8") as handle:
                state = json.load(handle).get("state", {})
            if int(state.get("generation", 0)) >= generation:
                return True
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    return False


@pytest.mark.xfail(
    strict=False,
    reason="known issue: SIGKILL-mid-run resume is not bit-for-bit "
           "(see docs/known-issues.md); passes only when the kill lands "
           "on a lucky round boundary")
def test_sigkill_mid_run_resume_matches_uninterrupted_run(tmp_path):
    env = _environment()

    reference = subprocess.run(
        _command(str(tmp_path / "reference-ckpt.json")),
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=600)
    assert reference.returncode == 0, reference.stderr
    expected = _outcome(reference.stdout)

    killed_checkpoint = str(tmp_path / "killed-ckpt.json")
    victim = subprocess.Popen(
        _command(killed_checkpoint),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=REPO_ROOT)
    try:
        # Let the run get well past the warm-up, then kill it hard,
        # mid-round with overwhelming probability.
        mid_run = _wait_for_generation(killed_checkpoint, 60, timeout=240)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
        assert mid_run, "the run never reached generation 60 before the timeout"
        assert victim.returncode != 0, "the run finished before it could be killed"
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=60)

    resumed = subprocess.run(
        _command(killed_checkpoint),
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=600)
    assert resumed.returncode == 0, resumed.stderr
    assert "resuming from" in resumed.stdout

    # The divergence under test: the resumed timeline should reproduce
    # the uninterrupted one exactly, but today it usually does not.
    assert _outcome(resumed.stdout) == expected
