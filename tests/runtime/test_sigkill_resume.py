"""SIGKILL-mid-run resume is bit-for-bit (strict; formerly a pinned xfail).

Historically this file held an ``xfail(strict=False)`` repro of the
known divergence: a hard SIGKILL could land between the persistent
cache's mid-round flush and the round's checkpoint, and the resumed run
then undercounted evaluations.  The fix (the
:class:`~repro.runtime.checkpoint.EvaluationLedger` plus round-boundary
checkpoints; see docs/known-issues.md) makes resume exact from *every*
crash point, so these are now strict equivalence tests.

Two variants:

* **Deterministic** (tier-1): the child process arms
  ``REPRO_KILL_POINT`` and sends itself a real, uncatchable SIGKILL at a
  named point -- including ``engine.batch.cached``, the exact window of
  the original bug.  Complements the in-process battery in
  ``test_crash_resume.py`` with a whole-process, CLI-level check.
* **Nondeterministic** (slow tier): the original timer-based kill at
  whatever round the poll happens to land on, kept as a fuzzing
  backstop for windows nobody thought to name.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.runtime.faultpoints import ENV_VAR

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")


def _command(checkpoint, cache, *, generations=10):
    return [sys.executable, "-m", "repro.cli", "search", "toy",
            "--population", "6", "--generations", str(generations),
            "--seed", "5", "--cache", cache, "--resume", checkpoint]


def _environment(kill_point=None):
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_VAR, None)
    if kill_point is not None:
        env[ENV_VAR] = kill_point
    return env


def _outcome(stdout: str):
    match = re.search(r"best speedup: ([0-9.]+)x with (\d+) edits "
                      r"\((\d+) evaluations", stdout)
    assert match, f"unparseable search output:\n{stdout}"
    return float(match.group(1)), int(match.group(2)), int(match.group(3))


def _reference(tmp_path, *, generations=10):
    result = subprocess.run(
        _command(str(tmp_path / "reference-ckpt.json"),
                 str(tmp_path / "reference-cache.sqlite"),
                 generations=generations),
        capture_output=True, text=True, env=_environment(),
        cwd=REPO_ROOT, timeout=600)
    assert result.returncode == 0, result.stderr
    return _outcome(result.stdout)


# The three windows that matter: mid-round after scoring, right after the
# persistent cache flushed a batch the checkpoint has not seen yet (the
# root cause of the original divergence), and mid-checkpoint-write.
KILL_POINTS = ["search.round.scored:7", "engine.batch.cached:5",
               "checkpoint.save:3"]


def test_deterministic_sigkill_resume_matches_uninterrupted_run(tmp_path):
    expected = _reference(tmp_path)

    for kill_point in KILL_POINTS:
        label = kill_point.replace(":", "-").replace(".", "-")
        checkpoint = str(tmp_path / f"{label}-ckpt.json")
        cache = str(tmp_path / f"{label}-cache.sqlite")

        victim = subprocess.run(
            _command(checkpoint, cache), capture_output=True, text=True,
            env=_environment(kill_point), cwd=REPO_ROOT, timeout=600)
        assert victim.returncode == -signal.SIGKILL, (
            f"the run armed with {kill_point} was not SIGKILLed: "
            f"rc={victim.returncode}\n{victim.stderr}")

        resumed = subprocess.run(
            _command(checkpoint, cache), capture_output=True, text=True,
            env=_environment(), cwd=REPO_ROOT, timeout=600)
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming from" in resumed.stdout
        assert _outcome(resumed.stdout) == expected, (
            f"resume diverged after SIGKILL at {kill_point}")


def _wait_for_generation(checkpoint: str, generation: int, timeout: float) -> bool:
    """Poll the checkpoint until its round counter reaches *generation*."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(checkpoint, "r", encoding="utf-8") as handle:
                state = json.load(handle).get("state", {})
            if int(state.get("generation", 0)) >= generation:
                return True
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    return False


@pytest.mark.slow
def test_sigkill_mid_run_resume_matches_uninterrupted_run(tmp_path):
    expected = _reference(tmp_path, generations=300)

    checkpoint = str(tmp_path / "killed-ckpt.json")
    cache = str(tmp_path / "killed-cache.sqlite")
    victim = subprocess.Popen(
        _command(checkpoint, cache, generations=300),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_environment(), cwd=REPO_ROOT)
    try:
        # Let the run get well past the warm-up, then kill it hard,
        # mid-round with overwhelming probability.
        mid_run = _wait_for_generation(checkpoint, 60, timeout=240)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
        assert mid_run, "the run never reached generation 60 before the timeout"
        assert victim.returncode != 0, "the run finished before it could be killed"
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=60)

    resumed = subprocess.run(
        _command(checkpoint, cache, generations=300),
        capture_output=True, text=True, env=_environment(),
        cwd=REPO_ROOT, timeout=600)
    assert resumed.returncode == 0, resumed.stderr
    assert "resuming from" in resumed.stdout
    assert _outcome(resumed.stdout) == expected
