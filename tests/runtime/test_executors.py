"""Async/sharded executor parity battery and executor fault handling.

Two contracts from the ``Executor`` docstring are pinned here:

* **parity** -- every executor returns bit-for-bit the results of
  :class:`SerialExecutor`, in input order;
* **clean failure** -- a worker that raises (or a worker process that
  dies) mid-batch surfaces one :class:`~repro.errors.ExecutorError`
  (or the original exception, for the serial path), the async executor
  cancels in-flight siblings, no partial results reach the cache, and
  the executor stays usable for the next batch.
"""

import os
import time

import pytest

from repro.errors import ExecutorError
from repro.gevo import GevoConfig, GevoSearch
from repro.runtime import (
    AsyncExecutor,
    EvaluationEngine,
    FitnessCache,
    ParallelExecutor,
    SerialExecutor,
    ShardedExecutor,
    make_executor,
)
from repro.workloads import ToyWorkloadAdapter, toy_discovered_edits


@pytest.fixture(scope="module")
def adapter():
    return ToyWorkloadAdapter(elements=64)


@pytest.fixture(scope="module")
def edit_sets(adapter):
    edits = toy_discovered_edits(adapter.kernel)
    return [[], [edits[0]], [edits[1]], [edits[2]],
            [edits[0], edits[1]], [edits[1], edits[2]], list(edits)]


class FailingToyAdapter(ToyWorkloadAdapter):
    """Raises when the marker instruction has been edited out.

    ``delay`` slows down the *healthy* evaluations so a fast failure can
    demonstrably cancel queued siblings in the async executor.  The
    ``evaluated`` list counts evaluations across worker threads
    (``list.append`` is atomic under the GIL).
    """

    def __init__(self, fail_uid, delay=0.0, **kwargs):
        super().__init__(**kwargs)
        self.fail_uid = fail_uid
        self.delay = delay
        self.evaluated = []

    def evaluate(self, module):
        self.evaluated.append(1)
        present = {inst.uid for inst in module.instructions()}
        if self.fail_uid not in present:
            raise RuntimeError("injected failure: marker instruction deleted")
        if self.delay:
            time.sleep(self.delay)
        return super().evaluate(module)


class DyingToyAdapter(ToyWorkloadAdapter):
    """Hard-kills the evaluating process: simulates an OOM-killed worker."""

    def evaluate(self, module):
        os._exit(13)


class TestParity:
    """Bit-for-bit equality with the serial executor."""

    @pytest.mark.parametrize("executor_factory", [
        lambda: AsyncExecutor(3),
        lambda: ShardedExecutor(3),
    ], ids=["async", "sharded"])
    def test_batch_results_bitwise_identical_to_serial(
            self, adapter, edit_sets, executor_factory):
        serial = EvaluationEngine(adapter).evaluate_many(edit_sets)
        with EvaluationEngine(adapter, executor=executor_factory()) as engine:
            results = engine.evaluate_many(edit_sets)
        for expected, actual in zip(serial, results):
            assert actual.valid == expected.valid
            assert actual.runtime_ms == expected.runtime_ms
            assert [(case.name, case.passed, case.runtime_ms)
                    for case in actual.cases] == \
                   [(case.name, case.passed, case.runtime_ms)
                    for case in expected.cases]

    @pytest.mark.parametrize("executor_factory", [
        lambda: AsyncExecutor(4),
        lambda: ShardedExecutor(4),
    ], ids=["async", "sharded"])
    def test_full_search_identical_to_serial(self, adapter, executor_factory):
        config = GevoConfig.quick(seed=11, population_size=8, generations=3)
        serial_result = GevoSearch(adapter, config).run()
        with EvaluationEngine(adapter, executor=executor_factory()) as engine:
            result = GevoSearch(adapter, config, engine=engine).run()
        assert (serial_result.history.best_fitness_series()
                == result.history.best_fitness_series())
        assert serial_result.best.edit_keys() == result.best.edit_keys()

    def test_single_item_batches_stay_serial(self, adapter):
        # The <=1 fast path must not regress results either.
        baseline = EvaluationEngine(adapter).baseline()
        for executor in (AsyncExecutor(4), ShardedExecutor(4)):
            assert EvaluationEngine(adapter, executor=executor).baseline() \
                   == baseline


class TestMakeExecutor:
    def test_kinds(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), ParallelExecutor)
        assert isinstance(make_executor(1, "auto"), SerialExecutor)
        assert isinstance(make_executor(3, "serial"), SerialExecutor)
        process = make_executor(3, "process")
        assert isinstance(process, ParallelExecutor) and process.jobs == 3
        fanned = make_executor(3, "async")
        assert isinstance(fanned, AsyncExecutor) and fanned.jobs == 3
        sharded = make_executor(3, "sharded")
        assert isinstance(sharded, ShardedExecutor) and sharded.shards == 3

    def test_zero_jobs_pick_a_default(self):
        assert make_executor(0, "async").jobs >= 1
        assert make_executor(0, "sharded").shards >= 1

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(ValueError):
            make_executor(2, "quantum")


class TestFaultHandling:
    def _failing_adapter(self, delay=0.0):
        # The marker uid must come from this adapter's own kernel build
        # (instruction uids are unique per build).
        adapter = FailingToyAdapter(None, delay=delay, elements=64)
        adapter.fail_uid = adapter.kernel.edit_targets["useless_barrier"]
        return adapter

    def _batch(self, adapter, healthy=6):
        """One fast-failing variant followed by *healthy* slow ones."""
        from repro.gevo.edits import InstructionDelete

        failing = [InstructionDelete(adapter.fail_uid)]
        others = [uid for uid in adapter.kernel.edit_targets.values()
                  if uid != adapter.fail_uid]
        sets = [failing]
        for index in range(healthy):
            sets.append([InstructionDelete(others[index % len(others)])] * (index + 1))
        return sets

    def test_async_failure_surfaces_executor_error_and_cancels_siblings(self):
        adapter = self._failing_adapter(delay=0.2)
        sets = self._batch(adapter)
        engine = EvaluationEngine(adapter, executor=AsyncExecutor(2))
        with pytest.raises(ExecutorError, match="injected failure"):
            engine.evaluate_many(sets)
        # The failure fired fast; with 2 lanes and 6 slow siblings queued,
        # cancellation must have stopped at least the tail of the queue.
        assert len(adapter.evaluated) < len(sets)

    def test_async_failure_does_not_corrupt_the_cache(self, tmp_path):
        adapter = self._failing_adapter()
        good_sets = self._batch(adapter)[1:]
        cache_path = str(tmp_path / "cache.sqlite")
        engine = EvaluationEngine(adapter, executor=AsyncExecutor(2),
                                  cache=FitnessCache(cache_path))
        engine.evaluate_many(good_sets)
        persisted_before = len(FitnessCache(cache_path))
        # The failing batch needs >1 *uncached* set to exercise the async
        # path (a lone pending item takes the serial shortcut); pair the
        # failing variant with a fresh healthy combination.
        from repro.gevo.edits import InstructionDelete

        others = [uid for uid in adapter.kernel.edit_targets.values()
                  if uid != adapter.fail_uid]
        failing_batch = [[InstructionDelete(adapter.fail_uid)],
                         [InstructionDelete(others[0]), InstructionDelete(others[1])]]
        with pytest.raises(ExecutorError):
            engine.evaluate_many(failing_batch)
        engine.close()
        # Nothing from the failed batch -- not even its healthy siblings --
        # was stored; the previously persisted entries are intact, and a
        # fresh engine over the same cache re-serves them without
        # re-simulation.
        assert len(FitnessCache(cache_path)) == persisted_before
        healthy = ToyWorkloadAdapter(elements=64)
        with EvaluationEngine(healthy, executor=AsyncExecutor(2),
                              cache=FitnessCache(cache_path)) as fresh:
            fresh.evaluate_many(good_sets)
            assert fresh.evaluations == 0

    def test_sharded_failure_surfaces_executor_error(self):
        adapter = self._failing_adapter()
        engine = EvaluationEngine(adapter, executor=ShardedExecutor(3))
        with pytest.raises(ExecutorError, match="injected failure"):
            engine.evaluate_many(self._batch(adapter))

    def test_dead_worker_process_surfaces_executor_error_and_pool_resets(self):
        dying = DyingToyAdapter(elements=64)
        sets = [[edit] for edit in toy_discovered_edits(dying.kernel)]
        executor = ParallelExecutor(2)
        try:
            with pytest.raises(ExecutorError, match="worker process died"):
                EvaluationEngine(dying, executor=executor).evaluate_many(sets)
            # The executor recovered: the same instance drives a healthy
            # adapter through a fresh pool.
            healthy = ToyWorkloadAdapter(elements=64)
            expected = EvaluationEngine(healthy).evaluate_many(sets)
            results = EvaluationEngine(healthy, executor=executor).evaluate_many(sets)
            assert [r.runtime_ms for r in results] == [r.runtime_ms for r in expected]
        finally:
            executor.close()
