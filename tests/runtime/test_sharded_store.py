"""ShardedCacheStore: partitioning, round-trips, manifest, degradation."""

import hashlib
import json
import os
import sqlite3

import pytest

from repro.gevo.fitness import CaseResult, FitnessResult
from repro.runtime import (
    CacheKey,
    FitnessCache,
    ShardedCacheStore,
    make_cache_store,
    shard_index,
)
from repro.runtime.executors import ShardedExecutor


def _key(tag: str) -> CacheKey:
    return CacheKey("workload", "P100", hashlib.sha256(tag.encode()).hexdigest())


def _result(value: float) -> FitnessResult:
    return FitnessResult(valid=True, runtime_ms=value,
                         cases=[CaseResult("case", True, value)])


def _shard_rows(path: str) -> int:
    if not os.path.exists(path):
        return 0
    return sqlite3.connect(path).execute("SELECT COUNT(*) FROM entries").fetchone()[0]


@pytest.fixture()
def store_dir(tmp_path):
    return str(tmp_path / "cache")


class TestShardIndex:
    def test_stable_and_in_range(self):
        digest = hashlib.sha256(b"x").hexdigest()
        assert shard_index(digest, 4) == int(digest[:8], 16) % 4
        for shards in (1, 2, 7):
            assert 0 <= shard_index(digest, shards) < shards

    def test_executor_and_store_agree_on_the_partition(self, store_dir):
        """The executor's lane and the store's shard use one function."""
        store = ShardedCacheStore(store_dir, shards=3)
        executor = ShardedExecutor(3)
        digest = hashlib.sha256(b"some edit set").hexdigest()
        key = CacheKey("w", "a", digest)
        assert store._shard_for(key) is store._stores[shard_index(digest, executor.shards)]
        store.close()


class TestShardedStore:
    def test_round_trip_and_distribution(self, store_dir):
        store = ShardedCacheStore(store_dir, shards=3)
        entries = {_key(f"entry-{i}"): _result(float(i)) for i in range(24)}
        store.flush(entries, set(entries))
        assert store.last_flush_count == 24
        loaded = store.load()
        assert len(loaded) == 24
        store.close()
        # With 24 sha-distributed keys over 3 shards, more than one shard
        # file must hold rows (the partition would be pointless otherwise).
        populated = [index for index in range(3)
                     if _shard_rows(store.shard_path(index)) > 0]
        assert len(populated) > 1
        assert sum(_shard_rows(store.shard_path(i)) for i in range(3)) == 24

    def test_flush_touches_only_dirty_shards(self, store_dir):
        store = ShardedCacheStore(store_dir, shards=4)
        entries = {_key(f"entry-{i}"): _result(float(i)) for i in range(16)}
        store.flush(entries, set(entries))
        new_key = _key("late arrival")
        entries[new_key] = _result(99.0)
        store.flush(entries, {new_key})
        assert store.last_flush_count == 1
        store.close()

    def test_manifest_wins_over_requested_shard_count(self, store_dir):
        store = ShardedCacheStore(store_dir, shards=3)
        entries = {_key(f"entry-{i}"): _result(float(i)) for i in range(12)}
        store.flush(entries, set(entries))
        store.close()
        # Reopening with a different count must keep the original
        # partition, or existing rows would become unreachable.
        reopened = ShardedCacheStore(store_dir, shards=8)
        assert reopened.shards == 3
        assert len(reopened.load()) == 12
        reopened.close()

    def test_missing_manifest_falls_back_to_counting_shard_files(self, store_dir):
        store = ShardedCacheStore(store_dir, shards=3)
        entries = {_key(f"entry-{i}"): _result(float(i)) for i in range(12)}
        store.flush(entries, set(entries))
        store.close()
        os.unlink(os.path.join(store_dir, "shards.json"))
        reopened = ShardedCacheStore(store_dir)
        assert reopened.shards == 3
        reopened.close()

    def test_corrupt_shard_degrades_to_empty_not_error(self, store_dir):
        store = ShardedCacheStore(store_dir, shards=2)
        entries = {_key(f"entry-{i}"): _result(float(i)) for i in range(12)}
        store.flush(entries, set(entries))
        store.close()
        victim = store.shard_path(0)
        healthy_rows = _shard_rows(store.shard_path(1))
        with open(victim, "wb") as handle:
            handle.write(b"not a database at all")
        reopened = ShardedCacheStore(store_dir)
        loaded = reopened.load()
        reopened.close()
        # The broken shard loads as empty (and is set aside, not deleted);
        # the healthy shard's rows survive.
        assert len(loaded) == healthy_rows
        assert os.path.exists(victim + ".corrupt")


class TestIntegration:
    def test_fitness_cache_over_sharded_store(self, store_dir):
        cache = FitnessCache(store_dir, backend="sharded", shards=3)
        keys = [_key(f"entry-{i}") for i in range(10)]
        for index, key in enumerate(keys):
            cache.put(key, _result(float(index)))
        cache.close()
        warm = FitnessCache(store_dir, backend="sharded")
        assert len(warm) == 10
        assert warm.peek(keys[3]).runtime_ms == 3.0
        warm.close()

    def test_auto_detection_picks_sharded_for_directories(self, store_dir):
        ShardedCacheStore(store_dir, shards=2).close()
        store = make_cache_store(store_dir)
        assert store.backend == "sharded"
        assert store.shards == 2
        store.close()
