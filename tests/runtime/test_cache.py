"""Canonical keys and the persistent fitness cache."""

import math

import pytest

from repro.gevo.edits import InstructionDelete, OperandReplace
from repro.gevo.fitness import CaseResult, FitnessResult
from repro.ir import Const, Reg
from repro.runtime import (
    CacheKey,
    FitnessCache,
    canonical_edit_hash,
    canonical_edit_key,
    result_from_dict,
    result_to_dict,
)


def _edits():
    return [
        InstructionDelete(7),
        OperandReplace(9, 1, Reg("gid")),
        InstructionDelete(12),
    ]


class TestCanonicalKeys:
    def test_permutations_share_one_key(self):
        edits = _edits()
        permuted = [edits[2], edits[0], edits[1]]
        assert canonical_edit_key(edits) == canonical_edit_key(permuted)
        assert canonical_edit_hash(edits) == canonical_edit_hash(permuted)

    def test_different_sets_differ(self):
        assert canonical_edit_hash(_edits()) != canonical_edit_hash(_edits()[:2])
        assert canonical_edit_hash([]) != canonical_edit_hash(_edits())

    def test_duplicates_are_not_collapsed(self):
        once = [InstructionDelete(7)]
        twice = [InstructionDelete(7), InstructionDelete(7)]
        assert canonical_edit_hash(once) != canonical_edit_hash(twice)

    def test_heterogeneous_key_shapes_sort(self):
        # Mixed kinds and operand value types must not break the ordering.
        edits = [OperandReplace(3, 0, Const(2.5)), OperandReplace(3, 0, Reg("tid")),
                 InstructionDelete(3)]
        assert canonical_edit_key(edits) == canonical_edit_key(list(reversed(edits)))


class TestResultSerialisation:
    def test_round_trip(self):
        result = FitnessResult.from_cases([
            CaseResult("a", True, 1.25, ""),
            CaseResult("b", True, 2.75, "note"),
        ])
        restored = result_from_dict(result_to_dict(result))
        assert restored.valid == result.valid
        assert restored.runtime_ms == result.runtime_ms
        assert [c.name for c in restored.cases] == ["a", "b"]

    def test_invalid_result_round_trips_inf(self):
        result = FitnessResult.invalid("kernel trap")
        restored = result_from_dict(result_to_dict(result))
        assert not restored.valid
        assert math.isinf(restored.runtime_ms)
        assert restored.cases[0].message == "kernel trap"


class TestFitnessCache:
    def _key(self, tag="abc"):
        return CacheKey("toy", "P100", tag)

    def test_memory_tier_hits_and_misses(self):
        cache = FitnessCache()
        key = self._key()
        assert cache.get(key) is None
        cache.put(key, FitnessResult.from_cases([CaseResult("c", True, 1.0)]))
        assert cache.get(key).valid
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_persist_reload_hit(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = FitnessCache(path)
        first.put(self._key(), FitnessResult.from_cases([CaseResult("c", True, 4.5)]))
        assert first.save()

        second = FitnessCache(path)
        assert len(second) == 1
        assert second.stats.loaded == 1
        result = second.get(self._key())
        assert result is not None and result.runtime_ms == 4.5
        assert second.stats.hits == 1

    def test_save_is_noop_when_clean(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = FitnessCache(path)
        assert not cache.save()  # nothing stored yet
        cache.put(self._key(), FitnessResult.invalid("boom"))
        assert cache.save()
        assert not cache.save()  # unchanged since last write

    def test_incompatible_version_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"version": 999, "entries": {"a|b|c": {}}}')
        cache = FitnessCache(str(path))
        assert len(cache) == 0

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("not json{")
        cache = FitnessCache(str(path))
        assert len(cache) == 0
        cache.put(self._key(), FitnessResult.invalid("x"))
        assert cache.save()  # and the corrupt file is replaced wholesale
        assert len(FitnessCache(str(path))) == 1

    def test_key_string_round_trip_with_pipes_in_workload(self):
        key = CacheKey("toy|variant", "P100", "deadbeef")
        assert CacheKey.from_string(key.to_string()) == key

    def test_overwriting_an_entry_with_a_changed_result_is_persisted(self, tmp_path):
        # Regression: put() used to mark the cache dirty only for *new*
        # keys, so overwriting an existing entry with a different result
        # was silently dropped at the next save.
        path = str(tmp_path / "cache.json")
        cache = FitnessCache(path)
        key = self._key()
        cache.put(key, FitnessResult.from_cases([CaseResult("c", True, 4.5)]))
        assert cache.save()

        cache.put(key, FitnessResult.from_cases([CaseResult("c", True, 9.0)]))
        assert cache.save()  # the changed entry is dirty again

        reloaded = FitnessCache(path)
        assert reloaded.peek(key).runtime_ms == 9.0

    def test_overwriting_with_an_identical_result_stays_clean(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = FitnessCache(path)
        key = self._key()
        result = FitnessResult.from_cases([CaseResult("c", True, 4.5)])
        cache.put(key, result)
        assert cache.save()
        cache.put(key, FitnessResult.from_cases([CaseResult("c", True, 4.5)]))
        assert not cache.save()  # equal value: nothing new to persist
