"""The SQLite cache tier: backend selection, incremental flushes, migration."""

import json
import sqlite3

import pytest

from repro.gevo.fitness import CaseResult, FitnessResult
from repro.runtime import (
    CacheKey,
    FitnessCache,
    JsonCacheStore,
    SqliteCacheStore,
    make_cache_store,
)
from repro.runtime.cache import CACHE_FORMAT_VERSION, SQLITE_MAGIC


def _key(tag="abc"):
    return CacheKey("toy", "P100", tag)


def _result(runtime=1.0):
    return FitnessResult.from_cases([CaseResult("c", True, runtime)])


class TestBackendSelection:
    def test_sqlite_extensions_pick_sqlite(self, tmp_path):
        for name in ("cache.sqlite", "cache.sqlite3", "cache.db"):
            store = make_cache_store(str(tmp_path / name))
            assert isinstance(store, SqliteCacheStore)

    def test_other_extensions_pick_json(self, tmp_path):
        assert isinstance(make_cache_store(str(tmp_path / "cache.json")), JsonCacheStore)
        assert isinstance(make_cache_store(str(tmp_path / "cache")), JsonCacheStore)

    def test_existing_sqlite_file_detected_by_magic(self, tmp_path):
        path = str(tmp_path / "cache.json")  # misleading extension on purpose
        cache = FitnessCache(path, backend="sqlite")
        cache.put(_key(), _result())
        cache.close()
        assert isinstance(make_cache_store(path), SqliteCacheStore)

    def test_explicit_backend_overrides_extension(self, tmp_path):
        store = make_cache_store(str(tmp_path / "cache.sqlite"), backend="json")
        assert isinstance(store, JsonCacheStore)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_cache_store(str(tmp_path / "cache.json"), backend="parquet")


class TestSqliteRoundTrip:
    def test_persist_reload_hit(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        first = FitnessCache(path)
        first.put(_key(), _result(4.5))
        assert first.save()
        first.close()

        second = FitnessCache(path)
        assert second.backend == "sqlite"
        assert len(second) == 1
        assert second.stats.loaded == 1
        assert second.get(_key()).runtime_ms == 4.5
        second.close()

    def test_file_is_a_real_sqlite_database(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key(), _result())
        cache.close()
        with open(path, "rb") as handle:
            assert handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC

    def test_wal_mode_is_enabled(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key(), _result())
        cache.save()
        mode = cache.store._connection().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        cache.close()

    def test_overwritten_entry_persists(self, tmp_path):
        # The put()-marks-dirty regression, through the SQLite tier.
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key(), _result(4.5))
        cache.save()
        cache.put(_key(), _result(9.0))
        assert cache.save()
        cache.close()
        assert FitnessCache(path).peek(_key()).runtime_ms == 9.0

    def test_concurrent_reader_sees_committed_entries(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        writer = FitnessCache(path)
        writer.put(_key("one"), _result(1.0))
        writer.save()
        # A second, independent connection (another process in real use)
        # reads while the writer is still open.
        reader = FitnessCache(path)
        assert reader.peek(_key("one")).runtime_ms == 1.0
        reader.close()
        writer.close()


class TestIncrementalFlush:
    def test_flush_touches_only_dirty_entries(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        for index in range(50):
            cache.put(_key(f"k{index}"), _result(float(index)))
        assert cache.save()
        assert cache.store.last_flush_count == 50

        cache.put(_key("fresh"), _result(99.0))
        assert cache.save()
        # No full-table rewrite: only the one new row was upserted.
        assert cache.store.last_flush_count == 1
        cache.close()
        assert len(FitnessCache(path)) == 51

    def test_clean_save_is_noop(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key(), _result())
        assert cache.save()
        assert not cache.save()
        cache.close()

    def test_sqlite_store_flushes_without_rate_limit(self, tmp_path):
        # maybe_save() defers to the store's flush_interval, which is 0 for
        # the incremental tier: every hot-path call lands on disk.
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key("a"), _result(1.0))
        assert cache.maybe_save()
        cache.put(_key("b"), _result(2.0))
        assert cache.maybe_save()
        cache.close()
        assert len(FitnessCache(path)) == 2


class TestJsonMigration:
    def _json_cache(self, path, entries=3):
        cache = FitnessCache(path, backend="json")
        for index in range(entries):
            cache.put(_key(f"k{index}"), _result(float(index)))
        cache.save()

    def test_json_cache_migrates_to_sqlite_on_first_open(self, tmp_path):
        path = str(tmp_path / "cache.json")
        self._json_cache(path)

        migrated = FitnessCache(path, backend="sqlite")
        assert len(migrated) == 3
        assert migrated.peek(_key("k1")).runtime_ms == 1.0
        migrated.close()
        # The file on disk is now a SQLite database, not JSON.
        with open(path, "rb") as handle:
            assert handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC

    def test_migration_happens_once(self, tmp_path):
        path = str(tmp_path / "cache.json")
        self._json_cache(path)
        first = FitnessCache(path, backend="sqlite")
        first.put(_key("extra"), _result(7.0))
        first.close()
        # Re-open: plain SQLite now, nothing re-migrated or lost.
        second = FitnessCache(path, backend="sqlite")
        assert len(second) == 4
        second.close()

    def test_json_and_sqlite_tiers_agree_on_keys(self, tmp_path):
        # The same CacheKey string indexes both tiers: entries written by
        # the JSON tier are found under identical keys after migration.
        path = str(tmp_path / "cache.json")
        json_cache = FitnessCache(path, backend="json")
        keys = [CacheKey("wl|odd", "V100", f"hash{i}") for i in range(5)]
        for index, key in enumerate(keys):
            json_cache.put(key, _result(float(index)))
        json_cache.save()
        exported = json_cache.export_entries()

        sqlite_cache = FitnessCache(path, backend="sqlite")
        assert sqlite_cache.export_entries() == exported
        sqlite_cache.close()

    def test_incompatible_json_version_not_migrated(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 999, "entries": {"a|b|c": {}}}))
        cache = FitnessCache(str(path), backend="sqlite")
        assert len(cache) == 0
        cache.close()


class TestCorruption:
    def test_truncated_database_degrades_to_empty(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key(), _result())
        cache.close()
        with open(path, "r+b") as handle:
            handle.truncate(30)  # keep part of the magic, lose the rest

        recovered = FitnessCache(path)
        assert len(recovered) == 0
        recovered.put(_key("new"), _result(2.0))
        assert recovered.save()
        recovered.close()
        assert len(FitnessCache(path)) == 1

    def test_garbage_file_degrades_to_empty_but_is_preserved(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        original_text = "this is neither sqlite nor a json cache {"
        path.write_text(original_text)
        cache = FitnessCache(str(path))
        assert len(cache) == 0
        cache.put(_key(), _result())
        cache.save()
        cache.close()
        assert len(FitnessCache(str(path))) == 1
        # The unusable file was set aside, not destroyed: a mistyped
        # --cache path never deletes the file it pointed at.
        assert (tmp_path / "cache.sqlite.corrupt").read_text() == original_text

    def test_schema_damage_degrades_to_empty(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key(), _result())
        cache.close()
        conn = sqlite3.connect(path)
        conn.execute("DROP TABLE entries")
        conn.commit()
        conn.close()
        recovered = FitnessCache(path)
        assert len(recovered) == 0
        recovered.close()

    def test_version_mismatch_clears_stale_entries(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key(), _result())
        cache.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = ? WHERE key = 'version'",
                     (str(CACHE_FORMAT_VERSION + 1),))
        conn.commit()
        conn.close()
        # Incompatible caches are stale data: start over, don't crash.
        reopened = FitnessCache(path)
        assert len(reopened) == 0
        reopened.close()
