"""EvaluationEngine: batching, dedup, cache accounting and serial/parallel parity."""

import pytest

from repro.gevo import GevoConfig, GevoSearch
from repro.gevo.fitness import EditSetEvaluator, GenomeEvaluator
from repro.runtime import (
    EvaluationEngine,
    FitnessCache,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.workloads import ToyWorkloadAdapter, toy_discovered_edits


@pytest.fixture(scope="module")
def adapter():
    return ToyWorkloadAdapter(elements=64)


@pytest.fixture(scope="module")
def edits(adapter):
    return toy_discovered_edits(adapter.kernel)


class TestEngineBasics:
    def test_single_evaluation_matches_adapter(self, adapter):
        engine = EvaluationEngine(adapter)
        direct = adapter.baseline()
        via_engine = engine.baseline()
        assert via_engine.valid == direct.valid
        assert via_engine.runtime_ms == direct.runtime_ms

    def test_batch_returns_results_in_input_order(self, adapter, edits):
        engine = EvaluationEngine(adapter)
        sets = [[], [edits[0]], [], [edits[0], edits[1]]]
        results = engine.evaluate_many(sets)
        assert len(results) == 4
        assert results[0].runtime_ms == results[2].runtime_ms
        assert results[3].runtime_ms < results[0].runtime_ms

    def test_batch_deduplicates_identical_sets(self, adapter, edits):
        engine = EvaluationEngine(adapter)
        engine.evaluate_many([[edits[0]], [edits[0]], [edits[0]]])
        assert engine.evaluations == 1

    def test_permuted_edit_lists_hit_the_cache(self, adapter, edits):
        engine = EvaluationEngine(adapter)
        engine.evaluate([edits[0], edits[1], edits[2]])
        before = engine.evaluations
        engine.evaluate([edits[2], edits[0], edits[1]])
        assert engine.evaluations == before
        assert engine.cache_hits >= 1

    def test_workload_and_arch_namespace_keys(self, adapter):
        p100 = EvaluationEngine(adapter)
        assert p100.arch_name == "P100"
        assert "toy" in p100.workload_id

    def test_shared_cache_across_engines(self, adapter, edits):
        cache = FitnessCache()
        first = EvaluationEngine(adapter, cache=cache)
        first.evaluate([edits[0]])
        second = EvaluationEngine(adapter, cache=cache)
        second.evaluate([edits[0]])
        assert second.evaluations == 0


class TestExecutorSelection:
    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        parallel = make_executor(3)
        assert isinstance(parallel, ParallelExecutor) and parallel.jobs == 3
        parallel.close()

    def test_jobs_zero_means_all_cores(self):
        executor = make_executor(0)
        assert isinstance(executor, ParallelExecutor) and executor.jobs >= 1
        executor.close()


class TestSerialParallelParity:
    def test_parallel_results_bitwise_identical_to_serial(self, adapter, edits):
        sets = [[], [edits[0]], [edits[1]], [edits[2]],
                [edits[0], edits[1]], [edits[0], edits[2]],
                [edits[1], edits[2]], list(edits)]
        serial = EvaluationEngine(adapter).evaluate_many(sets)
        with EvaluationEngine(adapter, executor=ParallelExecutor(2)) as engine:
            parallel = engine.evaluate_many(sets)
        for expected, actual in zip(serial, parallel):
            assert actual.valid == expected.valid
            assert actual.runtime_ms == expected.runtime_ms  # bitwise: deterministic sim
            assert [(c.name, c.passed, c.runtime_ms) for c in actual.cases] == \
                   [(c.name, c.passed, c.runtime_ms) for c in expected.cases]

    def test_parallel_search_identical_to_serial(self, adapter):
        config = GevoConfig.quick(seed=21, population_size=8, generations=4)
        serial_result = GevoSearch(adapter, config).run()
        with EvaluationEngine(adapter, executor=ParallelExecutor(4)) as engine:
            parallel_result = GevoSearch(adapter, config, engine=engine).run()
        assert (serial_result.history.best_fitness_series()
                == parallel_result.history.best_fitness_series())
        assert serial_result.best.edit_keys() == parallel_result.best.edit_keys()


class TestEvaluatorIntegration:
    def test_genome_evaluator_counts_are_engine_deltas(self, adapter, edits):
        engine = EvaluationEngine(adapter)
        engine.evaluate([edits[0]])  # activity before the evaluator existed
        evaluator = GenomeEvaluator(adapter, engine=engine)
        assert evaluator.evaluations == 0
        evaluator.evaluate_edits([edits[1]])
        assert evaluator.evaluations == 1

    def test_edit_set_evaluator_shares_engine_cache(self, adapter, edits):
        engine = EvaluationEngine(adapter)
        first = EditSetEvaluator(adapter, edits, engine=engine)
        first.fitness(edits)
        second = EditSetEvaluator(adapter, edits, engine=engine)
        before = engine.evaluations
        second.fitness(edits)
        assert engine.evaluations == before

    def test_engine_stats_summary(self, adapter):
        engine = EvaluationEngine(adapter)
        engine.baseline()
        stats = engine.stats()
        assert stats.evaluations == 1 and stats.executor == "serial"
        assert "1 evaluations" in stats.summary()


class TestWorkerPrewarm:
    """The pool initializer pre-decodes (and JIT-compiles) the original
    module, so worker processes never pay first-touch decode for the
    baseline/unmodified evaluations of a batch."""

    def test_init_worker_prewarms_decode_and_jit(self):
        import pickle

        from repro.gpu import decode_function, get_arch
        from repro.runtime import engine as engine_module

        # Simulate exactly what a pool worker runs, in-process.
        adapter = ToyWorkloadAdapter(get_arch("P100"))
        engine_module._init_worker(pickle.dumps(adapter))
        try:
            module = engine_module._worker_original
            assert module is not None
            for function in module.functions.values():
                decoded = decode_function(function, engine_module._worker_adapter.arch)
                # decode_function returns the cached decoding; pre-warm means
                # it is already JIT-ready before any evaluation ran.
                assert decoded.jit_ready
        finally:
            engine_module._worker_adapter = None
            engine_module._worker_original = None

    def test_prewarm_respects_the_oracle_tier(self):
        import pickle

        from repro.gpu import get_arch
        from repro.ir.function import _DECODE_CACHES
        from repro.runtime import engine as engine_module

        adapter = ToyWorkloadAdapter(get_arch("P100").with_overrides(fast_path=False))
        engine_module._init_worker(pickle.dumps(adapter))
        try:
            module = engine_module._worker_original
            for function in module.functions.values():
                assert function not in _DECODE_CACHES
        finally:
            engine_module._worker_adapter = None
            engine_module._worker_original = None

    def test_prewarm_tolerates_adapters_without_arch(self):
        from repro.runtime.engine import _prewarm_worker_caches

        class Bare:
            pass

        _prewarm_worker_caches(Bare(), None)  # must not raise
