"""The telemetry subsystem: schema, no-op guarantee, merge determinism.

Four contracts are pinned here:

* the JSONL trace schema round-trips exactly (and rejects malformed
  records loudly);
* a disabled :class:`~repro.runtime.telemetry.Telemetry` handle is a true
  no-op -- zero events, zero files, null metrics -- so un-traced runs pay
  one attribute check and nothing else;
* merging per-emitter event streams is deterministic regardless of how
  the part files interleave (the multi-process ordering property the
  service arc will build on), pinned by a hypothesis property test;
* a traced sweep's per-leg counters match its ``report.json`` exactly
  (the acceptance criterion of the observability PR).
"""

import json
import logging
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import EvaluationEngine, ParallelExecutor
from repro.runtime.console import ConsoleReporter, configure_console
from repro.runtime.sweep import SweepSpec, run_sweep
from repro.runtime.telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    Telemetry,
    emit_module_hotspots,
    new_run_id,
    telemetry_of,
)
from repro.runtime.trace_format import (
    MERGED_EVENTS_FILE,
    TraceEvent,
    event_from_dict,
    event_to_dict,
    format_event_line,
    load_metrics,
    load_trace,
    merge_events,
    merge_trace_dir,
    parse_event_line,
    read_events,
    summarize_trace,
)
from repro.workloads import ToyWorkloadAdapter, toy_discovered_edits


@pytest.fixture(scope="module")
def adapter():
    return ToyWorkloadAdapter(elements=64)


@pytest.fixture(scope="module")
def edits(adapter):
    return toy_discovered_edits(adapter.kernel)


class TestSchemaRoundTrip:
    def test_event_round_trips_through_dict_and_line(self):
        event = TraceEvent(run_id="r", emitter="main", seq=3, kind="span",
                           name="engine.batch", t=1.5, dur=0.25,
                           fields={"batch": 4, "label": "x"})
        assert event_from_dict(event_to_dict(event)) == event
        assert parse_event_line(format_event_line(event)) == event

    def test_point_event_omits_duration(self):
        event = TraceEvent(run_id="r", emitter="w", seq=1, kind="event",
                           name="cache.flush", t=0.0)
        record = event_to_dict(event)
        assert "dur" not in record
        assert event_from_dict(record) == event

    @pytest.mark.parametrize("mutation", [
        {"v": 99},              # unknown format version
        {"kind": "trace"},      # unknown record kind
        {"seq": "three"},       # non-integer sequence number
        {"name": None},         # unnamed event
    ])
    def test_malformed_records_are_rejected(self, mutation):
        record = event_to_dict(TraceEvent(run_id="r", emitter="m", seq=1,
                                          kind="event", name="x", t=0.0))
        record.update(mutation)
        with pytest.raises(ValueError):
            event_from_dict(record)

    def test_reader_skips_a_torn_tail(self, tmp_path):
        path = tmp_path / "events-main.jsonl"
        whole = format_event_line(TraceEvent(run_id="r", emitter="main",
                                             seq=1, kind="event", name="a",
                                             t=0.0))
        path.write_text(whole + "\n" + '{"v": 1, "torn')
        events = read_events(str(path))
        assert [event.name for event in events] == ["a"]


class TestDisabledIsANoOp:
    def test_null_telemetry_emits_nothing(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.event("anything", x=1) is None
        with NULL_TELEMETRY.span("work") as fields:
            fields["y"] = 2  # the dict is still usable, just never emitted
        NULL_TELEMETRY.counter("c").inc()
        NULL_TELEMETRY.gauge("g").set(3)
        NULL_TELEMETRY.histogram("h").observe(1.0)

    def test_disabled_handle_writes_no_files(self, tmp_path):
        trace_dir = tmp_path / "trace"
        telemetry = Telemetry(str(trace_dir), enabled=False)
        telemetry.event("x")
        telemetry.close()
        assert not trace_dir.exists()

    def test_untraced_engine_writes_no_files(self, adapter, edits, tmp_path):
        engine = EvaluationEngine(adapter)
        engine.evaluate_many([[edits[0]], [edits[1]]])
        engine.close()
        assert engine.telemetry is NULL_TELEMETRY
        assert os.listdir(tmp_path) == []

    def test_telemetry_of_defaults_to_null(self):
        assert telemetry_of(object()) is NULL_TELEMETRY


EMITTERS = ("main", "worker-1", "worker-2")


@st.composite
def emitter_streams(draw):
    """Per-emitter streams with ordered sequence numbers and random clocks."""
    streams = []
    for emitter in EMITTERS:
        count = draw(st.integers(min_value=0, max_value=6))
        times = draw(st.lists(
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            min_size=count, max_size=count))
        streams.append([
            TraceEvent(run_id="r", emitter=emitter, seq=index + 1,
                       kind="event", name=f"{emitter}.e{index}", t=t)
            for index, t in enumerate(times)])
    return streams


class TestMergeDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(streams=emitter_streams(), data=st.data())
    def test_merge_order_is_independent_of_interleaving(self, streams, data):
        reference = merge_events(streams)
        permutation = data.draw(st.permutations(streams))
        assert merge_events(permutation) == reference
        # Re-merging a prior merge with a subset of the parts (what an
        # idempotent merge_trace_dir does) changes nothing either.
        assert merge_events([reference] + list(streams)) == reference
        # The total order is the documented sort key.
        keys = [event.sort_key for event in reference]
        assert keys == sorted(keys)

    def test_merge_trace_dir_folds_worker_parts(self, tmp_path):
        trace_dir = str(tmp_path)
        main = Telemetry(trace_dir, run_id="r", emitter="main")
        main.event("a")
        worker = Telemetry(trace_dir, run_id="r", emitter="worker-9")
        worker.event("b")
        worker.close()  # workers only close their part file
        main.close()    # the main emitter merges the directory
        assert sorted(os.listdir(trace_dir)) == [MERGED_EVENTS_FILE,
                                                 "metrics.json"]
        assert {event.emitter for event in load_trace(trace_dir)} == {
            "main", "worker-9"}

    def test_parallel_engine_merges_worker_events(self, adapter, edits, tmp_path):
        trace_dir = str(tmp_path / "trace")
        telemetry = Telemetry(trace_dir, run_id="mp")
        engine = EvaluationEngine(adapter, executor=ParallelExecutor(2),
                                  telemetry=telemetry)
        engine.evaluate_many([[edit] for edit in edits[:4]])
        engine.close()
        telemetry.close()
        events = load_trace(trace_dir)
        workers = {event.emitter for event in events
                   if event.name == "worker.evaluate"}
        assert workers, "worker evaluation spans missing from the merged trace"
        assert all(emitter.startswith("worker-") for emitter in workers)
        assert not [name for name in os.listdir(trace_dir)
                    if name.startswith("events-")], "part files not folded in"


class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc()
        registry.counter("cache.hits").inc(2)
        registry.gauge("engine.cache_size").set(7)
        for value in (1.0, 3.0):
            registry.histogram("batch.seconds").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["cache.hits"] == 3
        assert snapshot["gauges"]["engine.cache_size"] == 7
        histogram = snapshot["histograms"]["batch.seconds"]
        assert histogram["count"] == 2
        assert histogram["total"] == 4.0 and histogram["mean"] == 2.0
        assert histogram["min"] == 1.0 and histogram["max"] == 3.0

    def test_run_ids_are_unique_and_sortable(self):
        first, second = new_run_id(), new_run_id()
        assert first != second
        assert "-" in first


class TestEngineInstrumentation:
    def test_batch_spans_and_cache_counters(self, adapter, edits, tmp_path):
        trace_dir = str(tmp_path)
        with Telemetry(trace_dir, run_id="r") as telemetry:
            engine = EvaluationEngine(adapter, telemetry=telemetry)
            engine.evaluate_many([[edits[0]], [edits[1]]])
            engine.evaluate_many([[edits[0]]])  # warm -> cache hit
            engine.close()
        metrics = load_metrics(trace_dir)
        assert metrics["counters"]["engine.evaluations"] == 2
        assert metrics["counters"]["cache.misses"] == 2
        assert metrics["counters"]["cache.hits"] >= 1
        assert metrics["gauges"]["engine.wall_clock_seconds"] > 0
        spans = [event for event in load_trace(trace_dir)
                 if event.name == "engine.batch"]
        # The all-hits batch dispatches no executor work: one span only.
        assert len(spans) == 1
        assert spans[0].fields["fresh"] == 2

    def test_population_batch_counters(self, adapter, tmp_path):
        """Clone batching surfaces through the engine's telemetry seam:
        group/launch counters plus a batch-size histogram, never print."""
        from repro.gevo.edits import OperandReplace
        from repro.ir.values import Const

        module = adapter.original_module()
        mul_uid = next(
            instruction.uid for instruction in module.instructions()
            if instruction.opcode == "mul"
            and getattr(instruction.operands[1], "value", None) == 3)
        sets = [[OperandReplace(mul_uid, 1, Const(value))]
                for value in (3.0, 4.0, 5.0)]
        trace_dir = str(tmp_path)
        with Telemetry(trace_dir, run_id="r") as telemetry:
            engine = EvaluationEngine(adapter, telemetry=telemetry)
            assert engine.batch_launches_enabled  # serial default: on
            engine.evaluate_many(sets)
            engine.close()
        metrics = load_metrics(trace_dir)
        assert metrics["counters"]["engine.batch_groups"] == 1
        assert metrics["counters"]["engine.batched_launches"] == 3
        histogram = metrics["histograms"]["engine.batch_size"]
        assert histogram["count"] == 1 and histogram["max"] == 3.0

    def test_stats_carry_wall_clock_and_rate(self, adapter, edits):
        engine = EvaluationEngine(adapter)
        engine.evaluate_many([[edits[0]]])
        stats = engine.stats()
        assert stats.wall_clock_seconds > 0
        assert stats.evaluations_per_second > 0
        assert "evals/s" in stats.summary()
        assert stats.summary().startswith(f"{stats.evaluations} evaluations")

    def test_hotspots_profile_is_opt_in(self, adapter, tmp_path):
        trace_dir = str(tmp_path)
        profile_before = adapter.device.profile_enabled
        with Telemetry(trace_dir, run_id="r") as telemetry:
            assert emit_module_hotspots(telemetry, adapter,
                                        adapter.original_module(),
                                        label="test")
        assert adapter.device.profile_enabled == profile_before  # restored
        events = [event for event in load_trace(trace_dir)
                  if event.name == "profile.hotspots"]
        assert len(events) == 1
        hotspots = events[0].fields["hotspots"]
        assert hotspots and {"location", "opcode", "cycles",
                             "executions"} <= set(hotspots[0])


class TestSweepAcceptance:
    def test_traced_sweep_matches_report_and_summarizes(self, tmp_path):
        spec = SweepSpec(archs=["P100"], workloads=["toy"], seeds=[0, 1],
                         method="gevo", population=4, generations=2)
        sweep_dir = str(tmp_path / "sweep")
        trace_dir = str(tmp_path / "trace")
        with Telemetry(trace_dir, run_id="acceptance") as telemetry:
            run_sweep(spec, sweep_dir, telemetry=telemetry)

        report = json.load(open(os.path.join(sweep_dir, "report.json")))
        assert report["telemetry"] == {"run_id": "acceptance",
                                       "trace_dir": trace_dir}
        metrics = load_metrics(trace_dir)
        for row in report["legs"]:
            leg_id = (f"{row['method']}-{row['workload']}-{row['arch']}"
                      f"-seed{row['seed']}")
            for key in ("evaluations", "fresh_evaluations", "cache_hits"):
                assert metrics["counters"][f"sweep.leg.{leg_id}.{key}"] == \
                    row[key], f"{leg_id}.{key} diverged from report.json"

        names = {event.name for event in load_trace(trace_dir)}
        assert {"sweep.start", "sweep.leg", "sweep.end", "search.generation",
                "engine.batch", "executor.dispatch"} <= names
        rendered = summarize_trace(trace_dir).render()
        assert "cache:" in rendered and "phase timing:" in rendered

    def test_resumed_sweep_emits_skipped_legs(self, tmp_path):
        spec = SweepSpec(archs=["P100"], workloads=["toy"], seeds=[0],
                         method="gevo", population=4, generations=2)
        sweep_dir = str(tmp_path / "sweep")
        run_sweep(spec, sweep_dir)  # untraced first pass
        trace_dir = str(tmp_path / "trace")
        with Telemetry(trace_dir, run_id="resume") as telemetry:
            report = run_sweep(spec, sweep_dir, resume=True,
                               telemetry=telemetry)
        assert all(row.status == "skipped" for row in report.rows)
        legs = [event for event in load_trace(trace_dir)
                if event.name == "sweep.leg"]
        assert [event.fields["status"] for event in legs] == ["skipped"]
        metrics = load_metrics(trace_dir)
        counter = "sweep.leg.gevo-toy-P100-seed0.fresh_evaluations"
        assert metrics["counters"][counter] == 0


class TestConsoleReporter:
    def test_sweep_leg_event_renders_at_info(self, capsys):
        configure_console()
        reporter = ConsoleReporter()
        reporter(TraceEvent(run_id="r", emitter="main", seq=1, kind="span",
                            name="sweep.leg", t=0.0, dur=1.25,
                            fields={"status": "completed", "leg_id": "leg-0",
                                    "speedup": 1.5, "evaluations": 10,
                                    "fresh_evaluations": 4}))
        out = capsys.readouterr().out
        assert "[completed] leg-0: 1.500x, 10 evaluations (4 fresh, 1.2s)" in out

    def test_quiet_suppresses_progress(self, capsys):
        configure_console(quiet=True)
        try:
            reporter = ConsoleReporter()
            reporter(TraceEvent(run_id="r", emitter="main", seq=1, kind="span",
                                name="sweep.leg", t=0.0, dur=0.0,
                                fields={"status": "completed"}))
            assert capsys.readouterr().out == ""
            reporter(TraceEvent(run_id="r", emitter="main", seq=2,
                                kind="event", name="executor.fault", t=0.0,
                                fields={"executor": "async",
                                        "error": "boom"}))
            assert "boom" in capsys.readouterr().out
        finally:
            configure_console()  # restore the default level for other tests

    def test_verbose_shows_generations(self, capsys):
        configure_console(verbose=True)
        try:
            reporter = ConsoleReporter()
            reporter(TraceEvent(run_id="r", emitter="main", seq=1,
                                kind="event", name="search.generation", t=0.0,
                                fields={"generation": 3, "best_fitness": 0.5,
                                        "evaluations": 12, "stagnation": 1}))
            assert "generation 3" in capsys.readouterr().out
        finally:
            configure_console()


class TestHotPathStaysClean:
    def test_gpu_interpreter_modules_never_import_telemetry(self):
        """Instrumentation stops at the engine/executor boundary.

        The simulator's interpreter tiers are the hot loops the no-op
        guarantee protects; if any of them ever references the telemetry
        layer, per-instruction overhead can sneak in.
        """
        import repro.gpu as gpu_package

        gpu_dir = os.path.dirname(gpu_package.__file__)
        for name in sorted(os.listdir(gpu_dir)):
            if not name.endswith(".py"):
                continue
            source = open(os.path.join(gpu_dir, name), encoding="utf-8").read()
            assert "telemetry" not in source.lower(), (
                f"repro/gpu/{name} references the telemetry layer")
