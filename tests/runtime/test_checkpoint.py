"""Checkpoint/resume: a resumed search reproduces the uninterrupted run."""

import json

import pytest

from repro.errors import SearchError
from repro.gevo import GevoConfig, GevoSearch
from repro.runtime import EvaluationEngine, FitnessCache, SearchCheckpoint
from repro.workloads import ToyWorkloadAdapter


@pytest.fixture(scope="module")
def adapter():
    return ToyWorkloadAdapter(elements=64)


CONFIG = dict(seed=33, population_size=8, generations=6)


class TestCheckpointRoundTrip:
    def test_checkpoint_file_round_trips(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        config = GevoConfig.quick(**CONFIG)
        GevoSearch(adapter, config).run(checkpoint_path=path)
        checkpoint = SearchCheckpoint.load(path)
        assert checkpoint.generation == config.generations
        assert checkpoint.restore_config() == config
        assert len(checkpoint.restore_population()) == config.population_size
        history = checkpoint.restore_history()
        assert history.generations() == config.generations
        # Edit keys survive the JSON round trip as tuples.
        for key in history.first_seen_in_population:
            assert isinstance(key, tuple)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(SearchError):
            SearchCheckpoint.load(str(path))

    def test_corrupt_checkpoint_raises_search_error(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{broken")
        with pytest.raises(SearchError, match="not valid JSON"):
            SearchCheckpoint.load(str(path))

    def test_torn_checkpoint_is_set_aside_for_forensics(self, tmp_path):
        # A torn file must not wedge the checkpoint path: load() renames
        # it to <path>.corrupt so a retried run starts fresh while the
        # damaged bytes stay on disk for inspection.
        path = tmp_path / "ckpt.json"
        path.write_text("{broken")
        with pytest.raises(SearchError, match="set aside"):
            SearchCheckpoint.load(str(path))
        assert not path.exists()
        corpse = tmp_path / "ckpt.json.corrupt"
        assert corpse.read_text() == "{broken"


class TestResume:
    def _interrupted_run(self, adapter, path, stop_at):
        """Run only the first *stop_at* generations, checkpointing each one."""
        config = GevoConfig.quick(**CONFIG).with_(generations=stop_at)
        GevoSearch(adapter, config).run(checkpoint_path=path)
        # The checkpoint was taken mid-search; patch the recorded config back
        # to the full-length run it belongs to.
        checkpoint = SearchCheckpoint.load(path)
        checkpoint.config["generations"] = CONFIG["generations"]
        checkpoint.save(path)

    def test_resumed_run_reproduces_uninterrupted_run(self, adapter, tmp_path):
        config = GevoConfig.quick(**CONFIG)
        uninterrupted = GevoSearch(adapter, config).run()

        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=3)
        resumed = GevoSearch(adapter, config).run(resume_from=path)

        assert (resumed.history.best_fitness_series()
                == uninterrupted.history.best_fitness_series())
        assert resumed.best.edit_keys() == uninterrupted.best.edit_keys()
        assert resumed.best.fitness == uninterrupted.best.fitness
        assert resumed.evaluations == uninterrupted.evaluations
        assert (resumed.history.first_seen_in_best
                == uninterrupted.history.first_seen_in_best)

    def test_resume_restores_cache_so_nothing_reruns_before_the_cut(
            self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=3)

        engine = EvaluationEngine(adapter)
        config = GevoConfig.quick(**CONFIG)
        GevoSearch(adapter, config, engine=engine).run(resume_from=path)
        checkpoint = SearchCheckpoint.load(path)
        # Everything evaluated before the interruption came from the imported
        # cache: the resumed engine only executed genuinely new variants.
        uninterrupted = GevoSearch(adapter, config).run()
        assert engine.evaluations == uninterrupted.evaluations - checkpoint.evaluations

    def test_resume_rejects_config_mismatch(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=2)
        other = GevoConfig.quick(**dict(CONFIG, seed=99))
        with pytest.raises(SearchError):
            GevoSearch(adapter, other).run(resume_from=path)

    def test_config_mismatch_error_names_the_differing_field(
            self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=2)
        other = GevoConfig.quick(**dict(CONFIG, seed=99))
        with pytest.raises(SearchError,
                           match=r"seed: checkpoint has 33, requested 99"):
            GevoSearch(adapter, other).run(resume_from=path)

    def test_resume_rejects_architecture_mismatch(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=2)
        checkpoint = SearchCheckpoint.load(path)
        checkpoint.arch_name = "V100"
        checkpoint.save(path)
        config = GevoConfig.quick(**CONFIG)
        with pytest.raises(SearchError, match="architecture 'V100'"):
            GevoSearch(adapter, config).run(resume_from=path)

    def test_checkpoint_without_arch_field_still_resumes(
            self, adapter, tmp_path):
        # Checkpoints written before the arch field existed carry None;
        # the architecture check is skipped rather than rejecting them.
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=3)
        document = json.loads(open(path).read())
        document.pop("arch_name")
        open(path, "w").write(json.dumps(document))
        config = GevoConfig.quick(**CONFIG)
        resumed = GevoSearch(adapter, config).run(resume_from=path)
        uninterrupted = GevoSearch(adapter, config).run()
        assert resumed.evaluations == uninterrupted.evaluations

    def test_resume_rejects_workload_mismatch(self, adapter, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self._interrupted_run(adapter, path, stop_at=2)
        checkpoint = SearchCheckpoint.load(path)
        checkpoint.workload_id = "another workload"
        checkpoint.save(path)
        config = GevoConfig.quick(**CONFIG)
        with pytest.raises(SearchError):
            GevoSearch(adapter, config).run(resume_from=path)

    def test_resume_after_stagnation_stop_adds_nothing(self, adapter, tmp_path):
        # Regression: the stagnation limit used to be checked only at the
        # *end* of each generation, so resuming a stagnation-terminated
        # run evaluated one extra generation past the stop.
        config = GevoConfig.quick(seed=7, population_size=4,
                                  generations=20).with_(stagnation_limit=2)
        path = str(tmp_path / "ckpt.json")
        uninterrupted = GevoSearch(adapter, config).run(checkpoint_path=path)
        assert uninterrupted.history.generations() < config.generations  # it did stop early

        engine = EvaluationEngine(adapter)
        resumed = GevoSearch(adapter, config, engine=engine).run(resume_from=path)
        assert engine.evaluations == 0
        assert resumed.evaluations == uninterrupted.evaluations
        assert (resumed.history.best_fitness_series()
                == uninterrupted.history.best_fitness_series())

    def test_warm_persistent_cache_means_zero_evaluations_on_rerun(
            self, adapter, tmp_path):
        cache_path = str(tmp_path / "fitness.json")
        config = GevoConfig.quick(**CONFIG)

        cold = EvaluationEngine(adapter, cache=FitnessCache(cache_path))
        GevoSearch(adapter, config, engine=cold).run()
        assert cold.evaluations > 0
        cold.close()

        warm = EvaluationEngine(adapter, cache=FitnessCache(cache_path))
        GevoSearch(adapter, config, engine=warm).run()
        assert warm.evaluations == 0
        assert warm.cache_hits > 0
