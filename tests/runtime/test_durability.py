"""Crash durability: an interrupted flush never damages the previous cache.

A cache flush can die at any point (OOM kill, SIGKILL, full disk, power
loss).  The contract for both disk tiers is the same: whatever was
loadable before the interrupted flush is still loadable after it.  The
JSON tier gets this from write-to-temp + atomic rename; the SQLite tier
from transactional upserts.  These tests inject failures mid-flush and
check the survivors.
"""

import json
import os

import pytest

from repro.gevo.fitness import CaseResult, FitnessResult
from repro.runtime import CacheKey, FitnessCache
import repro.runtime.cache as cache_module
import repro.runtime.sqlite_store as sqlite_module


def _key(tag="abc"):
    return CacheKey("toy", "P100", tag)


def _result(runtime=1.0):
    return FitnessResult.from_cases([CaseResult("c", True, runtime)])


class _Boom(RuntimeError):
    pass


class TestJsonFlushCrash:
    def _crash_during_dump(self, monkeypatch):
        original_dump = json.dump

        def exploding_dump(document, handle, **kwargs):
            # Write a partial document, then die -- simulating a crash
            # after some bytes already reached the temp file.
            handle.write('{"version": ')
            handle.flush()
            raise _Boom("crashed mid-write")

        monkeypatch.setattr(cache_module.json, "dump", exploding_dump)
        return original_dump

    def test_previous_file_survives_a_crashed_flush(self, tmp_path, monkeypatch):
        path = str(tmp_path / "cache.json")
        cache = FitnessCache(path)
        cache.put(_key("old"), _result(1.5))
        assert cache.save()

        cache.put(_key("new"), _result(2.5))
        self._crash_during_dump(monkeypatch)
        with pytest.raises(_Boom):
            cache.save()
        monkeypatch.undo()

        # The crash never touched the real file: the pre-crash cache loads
        # and the half-written temp file was cleaned up.
        survivor = FitnessCache(path)
        assert survivor.peek(_key("old")).runtime_ms == 1.5
        assert survivor.peek(_key("new")) is None
        assert [name for name in os.listdir(tmp_path)
                if name.endswith(".tmp")] == []

    def test_flush_can_be_retried_after_the_crash(self, tmp_path, monkeypatch):
        path = str(tmp_path / "cache.json")
        cache = FitnessCache(path)
        cache.put(_key("old"), _result(1.5))
        cache.save()
        cache.put(_key("new"), _result(2.5))
        self._crash_during_dump(monkeypatch)
        with pytest.raises(_Boom):
            cache.save()
        monkeypatch.undo()
        # The entry is still dirty; the next save persists it.
        assert cache.save()
        assert FitnessCache(path).peek(_key("new")).runtime_ms == 2.5


class TestSqliteFlushCrash:
    def _crash_on_second_serialisation(self, monkeypatch):
        original = sqlite_module.result_to_dict
        calls = {"n": 0}

        def exploding(result):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise _Boom("crashed mid-flush")
            return original(result)

        monkeypatch.setattr(sqlite_module, "result_to_dict", exploding)

    def test_committed_rows_survive_a_crashed_flush(self, tmp_path, monkeypatch):
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key("old"), _result(1.5))
        assert cache.save()

        cache.put(_key("a"), _result(2.0))
        cache.put(_key("b"), _result(3.0))
        self._crash_on_second_serialisation(monkeypatch)
        with pytest.raises(_Boom):
            cache.save()
        monkeypatch.undo()
        cache.store.close()

        # The aborted transaction rolled back; the committed row survives.
        survivor = FitnessCache(path)
        assert survivor.peek(_key("old")).runtime_ms == 1.5
        survivor.close()

    def test_aborted_transaction_is_all_or_nothing(self, tmp_path, monkeypatch):
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key("a"), _result(2.0))
        cache.put(_key("b"), _result(3.0))
        self._crash_on_second_serialisation(monkeypatch)
        with pytest.raises(_Boom):
            cache.save()
        monkeypatch.undo()
        cache.store.close()

        # Neither dirty entry was committed: no torn flush.
        survivor = FitnessCache(path)
        assert len(survivor) == 0
        survivor.close()

    def test_flush_can_be_retried_after_the_crash(self, tmp_path, monkeypatch):
        path = str(tmp_path / "cache.sqlite")
        cache = FitnessCache(path)
        cache.put(_key("a"), _result(2.0))
        cache.put(_key("b"), _result(3.0))
        self._crash_on_second_serialisation(monkeypatch)
        with pytest.raises(_Boom):
            cache.save()
        monkeypatch.undo()
        assert cache.save()  # both entries still dirty, flushed together now
        cache.close()
        assert len(FitnessCache(path)) == 2


class TestCheckpointWriteCrash:
    def test_checkpoint_file_survives_a_crashed_save(self, tmp_path, monkeypatch):
        from repro.gevo import GevoConfig, GevoSearch
        from repro.runtime import SearchCheckpoint
        import repro.runtime.checkpoint as checkpoint_module
        from repro.workloads import ToyWorkloadAdapter

        path = str(tmp_path / "ckpt.json")
        config = GevoConfig.quick(seed=5, population_size=4, generations=2)
        GevoSearch(ToyWorkloadAdapter(elements=64), config).run(checkpoint_path=path)
        before = SearchCheckpoint.load(path)

        def exploding_dump(document, handle, **kwargs):
            handle.write("{")
            raise _Boom("crashed mid-write")

        monkeypatch.setattr(checkpoint_module.json, "dump", exploding_dump)
        with pytest.raises(_Boom):
            before.save(path)
        monkeypatch.undo()

        after = SearchCheckpoint.load(path)  # still the intact previous file
        assert after.generation == before.generation
        assert after.cache_entries == before.cache_entries


class TestFsyncPolicy:
    def _record_fsyncs(self, monkeypatch):
        synced = []
        original = os.fsync
        monkeypatch.setattr(cache_module.os, "fsync",
                            lambda fd: (synced.append(fd), original(fd))[1])
        return synced

    def test_durable_write_fsyncs_data_and_directory(self, tmp_path, monkeypatch):
        # Checkpoints must survive power loss, not just process death:
        # one fsync pins the temp file's data blocks before the rename,
        # a second pins the directory entry after it.
        synced = self._record_fsyncs(monkeypatch)
        cache_module.atomic_write_json(str(tmp_path / "ckpt.json"),
                                       {"k": "v"}, durable=True)
        assert len(synced) == 2

    def test_cache_flush_skips_the_fsyncs(self, tmp_path, monkeypatch):
        # Cache flushes are disposable acceleration state; they keep
        # rename-atomicity but pay no fsync on the hot path.
        synced = self._record_fsyncs(monkeypatch)
        cache_module.atomic_write_json(str(tmp_path / "cache.json"), {"k": "v"})
        assert synced == []

    def test_checkpoint_save_is_durable(self, tmp_path, monkeypatch):
        from repro.runtime import SearchCheckpoint

        synced = self._record_fsyncs(monkeypatch)
        checkpoint = SearchCheckpoint(
            algorithm="gevo", workload_id="toy", config={}, rng_state=[],
            evaluations=0, history={}, baseline_runtime=1.0)
        checkpoint.save(str(tmp_path / "ckpt.json"))
        assert len(synced) == 2
