"""Tests for the parallel evaluation runtime (repro.runtime)."""
