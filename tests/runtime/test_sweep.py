"""The sweep orchestrator: grids, reports, and resume-only-unfinished."""

import json
import os

import pytest

from repro.errors import SearchError
from repro.runtime import SweepSpec, run_sweep
from repro.runtime.sweep import SweepLeg, resolve_workload


def _spec(**overrides):
    settings = dict(archs=["P100", "V100"], workloads=["toy"], seeds=[0, 1],
                    method="gevo", population=4, generations=2)
    settings.update(overrides)
    return SweepSpec(**settings)


class TestSpec:
    def test_cross_product_order_is_deterministic(self):
        spec = _spec(workloads=["toy"], archs=["V100", "P100"], seeds=[1, 0])
        assert [leg.leg_id for leg in spec.legs()] == [
            "gevo-toy-V100-seed1", "gevo-toy-V100-seed0",
            "gevo-toy-P100-seed1", "gevo-toy-P100-seed0",
        ]

    def test_arch_and_workload_names_are_canonicalised(self):
        spec = _spec(archs=["p100"], workloads=["adept"])
        assert spec.archs == ("P100",)
        assert spec.workloads == ("adept-v1",)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            _spec(method="annealing")

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            resolve_workload("fortran")


class TestRunSweep:
    def test_grid_runs_and_reports(self, tmp_path):
        sweep_dir = str(tmp_path / "sweep")
        report = run_sweep(_spec(), sweep_dir, executor_kind="async", jobs=2)
        assert len(report.rows) == 4
        assert all(row.status == "completed" for row in report.rows)
        assert all(row.baseline_runtime_ms > 0 for row in report.rows)
        # Report artifacts: one JSON record per leg plus the aggregates.
        assert sorted(os.listdir(os.path.join(sweep_dir, "legs"))) == [
            "gevo-toy-P100-seed0.json", "gevo-toy-P100-seed1.json",
            "gevo-toy-V100-seed0.json", "gevo-toy-V100-seed1.json",
        ]
        with open(os.path.join(sweep_dir, "report.json")) as handle:
            document = json.load(handle)
        assert len(document["legs"]) == 4
        assert document["totals"]["legs"] == 4
        csv_text = open(os.path.join(sweep_dir, "report.csv")).read()
        assert csv_text.startswith("workload,arch,seed,method,status,")
        assert csv_text.count("\n") == 5  # header + one row per leg
        # The default shared cache is the sharded tier under the sweep dir.
        assert os.path.exists(os.path.join(sweep_dir, "cache", "shards.json"))
        # The table is keyed by (workload, arch, seed).
        assert "workload" in report.to_table() and "P100" in report.to_table()

    def test_resume_skips_finished_legs_with_zero_reevaluations(self, tmp_path):
        sweep_dir = str(tmp_path / "sweep")
        run_sweep(_spec(), sweep_dir, executor_kind="async", jobs=2)
        report = run_sweep(_spec(), sweep_dir, resume=True,
                           executor_kind="async", jobs=2)
        assert [row.status for row in report.rows] == ["skipped"] * 4
        assert report.totals()["fresh_evaluations"] == 0

    def test_resume_restarts_only_unfinished_legs(self, tmp_path):
        sweep_dir = str(tmp_path / "sweep")
        first = run_sweep(_spec(), sweep_dir)
        # Simulate a crash after three legs: the fourth leg's record is
        # gone, but its (final) checkpoint and the shared cache survive.
        victim = os.path.join(sweep_dir, "legs", "gevo-toy-V100-seed1.json")
        os.unlink(victim)
        report = run_sweep(_spec(), sweep_dir, resume=True)
        statuses = {(row.arch, row.seed): row.status for row in report.rows}
        assert statuses == {("P100", 0): "skipped", ("P100", 1): "skipped",
                            ("V100", 0): "skipped", ("V100", 1): "resumed"}
        # The restarted leg replayed from its checkpoint and the warm
        # cache: nothing was re-simulated anywhere in the sweep.
        assert report.totals()["fresh_evaluations"] == 0
        redone = {(row.arch, row.seed): row for row in report.rows}[("V100", 1)]
        done_before = {(row.arch, row.seed): row for row in first.rows}[("V100", 1)]
        assert redone.evaluations == done_before.evaluations
        assert redone.speedup == done_before.speedup

    def test_interrupted_sweep_resumes_without_redoing_work(self, tmp_path):
        sweep_dir = str(tmp_path / "sweep")

        def explode_after_first_leg(leg, outcome):
            if outcome.status != "skipped":
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(_spec(), sweep_dir, progress=explode_after_first_leg)
        assert len(os.listdir(os.path.join(sweep_dir, "legs"))) == 1
        report = run_sweep(_spec(), sweep_dir, resume=True)
        statuses = [row.status for row in report.rows]
        assert statuses[0] == "skipped"
        assert statuses.count("skipped") == 1
        assert {"completed"} == set(statuses[1:])
        assert len(report.rows) == 4

    def test_fresh_run_discards_stale_leg_artifacts(self, tmp_path):
        sweep_dir = str(tmp_path / "sweep")
        spec = _spec(seeds=[0], archs=["P100"])
        run_sweep(spec, sweep_dir)
        stale = os.path.join(sweep_dir, "legs", "gevo-toy-P100-seed0.json")
        before = json.load(open(stale))
        # Without resume=True the grid starts over; results are rewritten
        # (same deterministic content, fresh status).
        report = run_sweep(spec, sweep_dir)
        assert report.rows[0].status == "completed"
        after = json.load(open(stale))
        assert after["speedup"] == before["speedup"]

    def test_resume_with_changed_budget_is_rejected_loudly(self, tmp_path):
        sweep_dir = str(tmp_path / "sweep")
        run_sweep(_spec(archs=["P100"], seeds=[0]), sweep_dir)
        # A finished leg under a different budget must refuse, mirroring
        # the checkpoint layer's config validation, instead of silently
        # republishing the old numbers under the new spec.
        with pytest.raises(SearchError, match="original budget"):
            run_sweep(_spec(archs=["P100"], seeds=[0], generations=6),
                      sweep_dir, resume=True)

    def test_leg_checkpoints_hold_only_their_own_cache_namespace(self, tmp_path):
        # Regression: with a shared sweep cache, each leg's checkpoint
        # used to re-serialise *every* leg's entries (O(total cache) per
        # round, snowballing across the grid); now it exports only keys
        # the leg can actually hit.
        sweep_dir = str(tmp_path / "sweep")
        run_sweep(_spec(), sweep_dir)
        checkpoints_dir = os.path.join(sweep_dir, "checkpoints")
        for name in os.listdir(checkpoints_dir):
            arch = "P100" if "P100" in name else "V100"
            with open(os.path.join(checkpoints_dir, name)) as handle:
                entries = json.load(handle)["cache_entries"]
            assert entries, name
            assert all(f"|{arch}|" in key for key in entries), name

    def test_methods_dispatch(self, tmp_path):
        for method in ("random", "hill"):
            sweep_dir = str(tmp_path / method)
            spec = _spec(method=method, archs=["P100"], seeds=[0])
            report = run_sweep(spec, sweep_dir)
            assert len(report.rows) == 1
            assert report.rows[0].method == method
            assert report.rows[0].status == "completed"
