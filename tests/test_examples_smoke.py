"""Smoke tests: every documented entry point in ``examples/`` must run.

Each script is executed as a real subprocess (``python examples/<name>.py``
with ``PYTHONPATH=src``), exactly the way the README and the script
docstrings tell a user to run it, so a refactor that breaks an example's
imports or API use fails CI instead of rotting silently.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def run_example(name: str, timeout: int = 300) -> subprocess.CompletedProcess:
    script = EXAMPLES / name
    assert script.exists(), f"missing example script {script}"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, str(script)], cwd=REPO_ROOT, env=env,
        capture_output=True, text=True, timeout=timeout)


def assert_clean(process: subprocess.CompletedProcess) -> None:
    assert process.returncode == 0, (
        f"example exited with {process.returncode}\n"
        f"--- stdout ---\n{process.stdout[-2000:]}\n"
        f"--- stderr ---\n{process.stderr[-2000:]}")


def test_quickstart_example():
    process = run_example("quickstart.py")
    assert_clean(process)
    assert "GEVO" in process.stdout or "speedup" in process.stdout.lower()


def test_adept_alignment_example():
    process = run_example("adept_alignment.py")
    assert_clean(process)
    assert "score" in process.stdout.lower()


def test_simcov_simulation_example():
    process = run_example("simcov_simulation.py")
    assert_clean(process)
    assert "virions" in process.stdout.lower()


@pytest.mark.slow
def test_optimization_analysis_example():
    """The full Section V/VI walk-through (Algorithms 1+2, subsets, search)."""
    process = run_example("optimization_analysis.py", timeout=900)
    assert_clean(process)
    assert "edit" in process.stdout.lower()
