"""Integration tests: the ADEPT GPU kernels against the CPU reference, and the
behaviour of the recorded GEVO edits (Sections IV, V and VI of the paper)."""

import numpy as np
import pytest

from repro.gevo import apply_edits
from repro.gpu import GpuDevice, get_arch
from repro.workloads.adept import (
    AdeptDriver,
    adept_v0_discovered_edits,
    adept_v0_partial_edits,
    adept_v1_ballot_sync_edits,
    adept_v1_discovered_edits,
    adept_v1_edit,
    adept_v1_epistatic_edits,
    adept_v1_independent_edits,
    batch_alignment_scores,
    generate_pairs,
)


class TestAdeptCorrectness:
    def test_v1_scores_match_reference(self, adept_v1_adapter):
        baseline = adept_v1_adapter.baseline()
        assert baseline.valid, [case.message for case in baseline.cases]

    def test_v0_scores_match_reference(self, adept_v0_adapter):
        baseline = adept_v0_adapter.baseline()
        assert baseline.valid, [case.message for case in baseline.cases]

    def test_v1_heldout_validation_passes(self, adept_v1_adapter):
        validation = adept_v1_adapter.validate(adept_v1_adapter.original_module())
        assert validation.valid

    def test_driver_runs_arbitrary_batches(self):
        pairs = generate_pairs(3, reference_length=30, query_length=18, seed=77)
        driver = AdeptDriver.for_version("v1", pairs, GpuDevice(get_arch("P100")))
        result = driver.run(pairs)
        np.testing.assert_array_equal(result.scores, batch_alignment_scores(pairs))
        assert result.best_score == int(batch_alignment_scores(pairs).max())
        assert result.kernel_time_ms > 0

    def test_driver_rejects_oversized_batches(self, adept_v1_adapter):
        long_pairs = generate_pairs(1, reference_length=150, query_length=90, seed=1)
        with pytest.raises(Exception):
            adept_v1_adapter.driver.run(long_pairs)

    def test_unknown_version_rejected(self):
        pairs = generate_pairs(1, 20, 12, seed=0)
        with pytest.raises(Exception):
            AdeptDriver.for_version("v2", pairs)


class TestDiscoveredEditsV1:
    def test_full_edit_set_improves_and_validates(self, adept_v1_adapter):
        adapter = adept_v1_adapter
        baseline = adapter.baseline()
        edits = adept_v1_discovered_edits(adapter.kernel)
        optimized = adapter.evaluate(apply_edits(adapter.original_module(), edits).module)
        assert optimized.valid
        speedup = baseline.runtime_ms / optimized.runtime_ms
        assert 1.1 < speedup < 1.6  # paper: 1.28x on the P100

    def test_epistatic_cluster_alone_improves(self, adept_v1_adapter):
        adapter = adept_v1_adapter
        baseline = adapter.baseline()
        edits = list(adept_v1_epistatic_edits(adapter.kernel).values())
        optimized = adapter.evaluate(apply_edits(adapter.original_module(), edits).module)
        assert optimized.valid
        assert baseline.runtime_ms / optimized.runtime_ms > 1.05

    def test_independent_edits_alone_improve(self, adept_v1_adapter):
        adapter = adept_v1_adapter
        baseline = adapter.baseline()
        edits = list(adept_v1_independent_edits(adapter.kernel).values())
        optimized = adapter.evaluate(apply_edits(adapter.original_module(), edits).module)
        assert optimized.valid
        assert baseline.runtime_ms / optimized.runtime_ms > 1.02

    @pytest.mark.parametrize("paper_index", [5, 8, 10])
    def test_dependent_edits_fail_alone(self, adept_v1_adapter, paper_index):
        """Edits 5, 8 and 10 fail verification when applied individually (Fig. 7)."""
        adapter = adept_v1_adapter
        edit = adept_v1_edit(adapter.kernel, paper_index)
        result = adapter.evaluate(apply_edits(adapter.original_module(), [edit]).module)
        assert not result.valid

    def test_edit6_alone_is_roughly_neutral_and_valid(self, adept_v1_adapter):
        adapter = adept_v1_adapter
        baseline = adapter.baseline()
        edit = adept_v1_edit(adapter.kernel, 6)
        result = adapter.evaluate(apply_edits(adapter.original_module(), [edit]).module)
        assert result.valid
        assert abs(baseline.runtime_ms / result.runtime_ms - 1.0) < 0.1

    def test_edits_6_8_work_together(self, adept_v1_adapter):
        adapter = adept_v1_adapter
        edits = [adept_v1_edit(adapter.kernel, 6), adept_v1_edit(adapter.kernel, 8)]
        result = adapter.evaluate(apply_edits(adapter.original_module(), edits).module)
        assert result.valid

    def test_edit5_requires_the_full_cluster(self, adept_v1_adapter):
        adapter = adept_v1_adapter
        kernel = adapter.kernel
        partial = [adept_v1_edit(kernel, 5), adept_v1_edit(kernel, 6),
                   adept_v1_edit(kernel, 8)]
        result = adapter.evaluate(apply_edits(adapter.original_module(), partial).module)
        assert not result.valid
        full = partial + [adept_v1_edit(kernel, 10)]
        result = adapter.evaluate(apply_edits(adapter.original_module(), full).module)
        assert result.valid

    def test_ballot_sync_removal_is_volta_specific(self):
        from repro.workloads.adept import AdeptWorkloadAdapter, search_pairs

        improvements = {}
        for arch_name in ("P100", "V100"):
            adapter = AdeptWorkloadAdapter("v1", get_arch(arch_name),
                                           fitness_cases=[search_pairs()])
            baseline = adapter.baseline()
            edited = adapter.evaluate(apply_edits(
                adapter.original_module(),
                adept_v1_ballot_sync_edits(adapter.kernel)).module)
            assert edited.valid
            improvements[arch_name] = (baseline.runtime_ms - edited.runtime_ms) / baseline.runtime_ms
        assert improvements["V100"] > improvements["P100"]
        assert improvements["V100"] > 0.02
        assert improvements["P100"] < 0.03


class TestDiscoveredEditsV0:
    def test_init_region_removal_is_large_and_valid(self, adept_v0_adapter):
        adapter = adept_v0_adapter
        baseline = adapter.baseline()
        edits = adept_v0_discovered_edits(adapter.kernel)
        optimized = adapter.evaluate(apply_edits(adapter.original_module(), edits).module)
        assert optimized.valid
        speedup = baseline.runtime_ms / optimized.runtime_ms
        assert speedup > 10  # paper: >30x at full scale

    def test_partial_edits_give_partial_improvement(self, adept_v0_adapter):
        adapter = adept_v0_adapter
        baseline = adapter.baseline()
        partial = list(adept_v0_partial_edits(adapter.kernel).values())
        optimized = adapter.evaluate(apply_edits(adapter.original_module(), partial).module)
        assert optimized.valid
        partial_speedup = baseline.runtime_ms / optimized.runtime_ms
        full = adept_v0_discovered_edits(adapter.kernel)
        full_speedup = baseline.runtime_ms / adapter.evaluate(
            apply_edits(adapter.original_module(), full).module).runtime_ms
        assert 1.0 < partial_speedup < full_speedup
