"""Tests for the SIMCoV reference model, GPU kernels and recorded edits."""

import numpy as np
import pytest

from repro.gevo import apply_edits
from repro.ir import static_instruction_mix
from repro.workloads.simcov import (
    DEAD,
    EXPRESSING,
    HEALTHY,
    INCUBATING,
    SimCovParams,
    SimCovState,
    boundary_check_removal_edits,
    build_padded_spread_kernel,
    build_simcov_kernels,
    diffuse,
    redundant_load_removal_edits,
    run_padded_spread,
    run_reference,
    simcov_discovered_edits,
    states_close,
    summaries_close,
)


class TestParamsAndState:
    def test_default_infection_sites_inside_grid(self):
        params = SimCovParams(width=10, height=10)
        assert all(0 <= cell < params.cells for cell in params.infection_cells())

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SimCovParams(width=2, height=2)
        with pytest.raises(ValueError):
            SimCovParams(steps=0)
        with pytest.raises(ValueError):
            SimCovParams(initial_infections=((100, 100),))

    def test_initial_state_has_virions_at_sites(self):
        params = SimCovParams.quick()
        state = SimCovState.initial(params)
        assert state.virions.sum() == pytest.approx(
            params.initial_virions * len(set(params.infection_cells())))
        assert (state.epithelial == HEALTHY).all()

    def test_grid_view_shape(self):
        params = SimCovParams(width=6, height=4)
        state = SimCovState.initial(params)
        assert state.grid("virions").shape == (4, 6)

    def test_summary_counts_cells(self):
        params = SimCovParams.quick()
        summary = SimCovState.initial(params).summary()
        assert summary["healthy"] == params.cells


class TestReferenceModel:
    def test_infection_spreads_over_time(self):
        params = SimCovParams(width=12, height=12, steps=8)
        final = run_reference(params)
        summary = final.summary()
        assert summary["healthy"] < params.cells
        assert summary["total_virions"] > 0

    def test_diffusion_conserves_mass_without_decay(self):
        field = np.zeros(16)
        field[5] = 8.0
        spread = diffuse(field, 4, 4, diffusion=0.2, decay=0.0)
        assert spread.sum() == pytest.approx(8.0)
        assert spread.max() < 8.0

    def test_diffusion_decay_reduces_mass(self):
        field = np.full(16, 1.0)
        spread = diffuse(field, 4, 4, diffusion=0.1, decay=0.5)
        assert spread.sum() < field.sum()

    def test_reference_is_deterministic(self):
        params = SimCovParams.quick(seed=5)
        first = run_reference(params)
        second = run_reference(params)
        np.testing.assert_array_equal(first.virions, second.virions)
        np.testing.assert_array_equal(first.tcells, second.tcells)

    def test_different_seed_changes_tcells(self):
        base = SimCovParams(width=12, height=12, steps=8, seed=1,
                            chemokine_extravasate_threshold=0.0)
        other = base.with_(seed=2)
        assert run_reference(base).summary() != run_reference(other).summary()

    def test_epithelial_state_machine_progresses(self):
        params = SimCovParams(width=8, height=8, steps=6, incubation_period=1,
                              apoptosis_period=1)
        final = run_reference(params)
        states = set(np.unique(final.epithelial).astype(int))
        assert INCUBATING in states or EXPRESSING in states or DEAD in states


class TestValidationMetrics:
    def test_identical_states_are_close(self):
        params = SimCovParams.quick()
        state = run_reference(params)
        ok, report = states_close(state, state.copy())
        assert ok and all(value == 0 for value in report.values())

    def test_gross_difference_is_rejected(self):
        params = SimCovParams.quick()
        state = run_reference(params)
        broken = state.copy()
        broken.virions[:] = 0.0
        ok, _ = states_close(broken, state)
        assert not ok

    def test_summaries_close_tolerance(self):
        params = SimCovParams.quick()
        summary = run_reference(params).summary()
        assert summaries_close(dict(summary), summary)
        off = dict(summary)
        off["total_virions"] *= 2.0
        assert not summaries_close(off, summary)


class TestSimCovGpu:
    def test_gpu_matches_reference_exactly_on_quick_grid(self, simcov_adapter):
        baseline = simcov_adapter.baseline()
        assert baseline.valid, baseline.cases[0].message

    def test_kernel_module_has_eight_kernels(self):
        kernels = build_simcov_kernels()
        assert len(kernels.kernel_names()) == 8

    def test_boundary_logic_is_large_instruction_share(self):
        """Paper: ~31% of the diffusion kernel's instructions are boundary logic."""
        kernels = build_simcov_kernels()
        spread = kernels.module.get_function("simcov_spread_virions")
        mix = static_instruction_mix(spread)
        boundary_targets = kernels.edit_targets["simcov_spread_virions"]
        boundary_instructions = sum(1 for name in boundary_targets if "branch" not in name)
        assert boundary_instructions / spread.instruction_count() > 0.25

    def test_discovered_edits_speed_up_and_validate_on_fitness_grid(self, simcov_adapter):
        adapter = simcov_adapter
        baseline = adapter.baseline()
        edits = simcov_discovered_edits(adapter.kernels)
        optimized = adapter.evaluate(apply_edits(adapter.original_module(), edits).module)
        assert optimized.valid
        assert baseline.runtime_ms / optimized.runtime_ms > 1.1

    def test_boundary_removal_faults_on_heldout_grid(self, simcov_adapter):
        adapter = simcov_adapter
        module = apply_edits(adapter.original_module(),
                             boundary_check_removal_edits(adapter.kernels)).module
        heldout = adapter.validate(module)
        assert not heldout.valid
        assert "memory" in heldout.cases[0].message.lower()

    def test_baseline_passes_heldout_grid(self, simcov_adapter):
        heldout = simcov_adapter.validate(simcov_adapter.original_module())
        assert heldout.valid

    def test_redundant_load_removal_is_safe_everywhere(self, simcov_adapter):
        adapter = simcov_adapter
        module = apply_edits(adapter.original_module(),
                             redundant_load_removal_edits(adapter.kernels)).module
        assert adapter.evaluate(module).valid
        assert adapter.validate(module).valid


class TestPaddedSpread:
    def test_padded_kernel_matches_reference_diffusion(self, simcov_adapter):
        params = simcov_adapter.fitness_params
        state = run_reference(params)
        device = simcov_adapter.driver.device
        result = run_padded_spread(device, params, state.virions,
                                   params.virion_diffusion, params.virion_decay)
        expected = diffuse(state.virions, params.width, params.height,
                           params.virion_diffusion, params.virion_decay)
        # Zero padding treats missing neighbours as zero-valued cells, which
        # differs from the checked kernel only at the border.
        interior = np.ones((params.height, params.width), dtype=bool)
        interior[0, :] = interior[-1, :] = interior[:, 0] = interior[:, -1] = False
        np.testing.assert_allclose(
            result.field_next.reshape(params.height, params.width)[interior],
            expected.reshape(params.height, params.width)[interior])

    def test_padded_kernel_builds_and_verifies(self):
        from repro.ir import verify_module

        module = build_padded_spread_kernel()
        assert verify_module(module).ok
