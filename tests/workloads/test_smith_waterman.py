"""Tests for the CPU Smith-Waterman reference and the sequence generators."""

import numpy as np
import pytest

from repro.workloads.adept import (
    ScoringScheme,
    SequencePair,
    alignment_end_position,
    alignment_score,
    batch_alignment_scores,
    encode_batch,
    encode_sequence,
    fitness_pairs,
    generate_pairs,
    heldout_pairs,
    mutate_sequence,
    random_sequence,
    score_matrix,
    search_pairs,
    traceback,
    wavefront_alignment_score,
)


class TestSmithWaterman:
    def test_paper_figure2_example(self):
        """Figure 2 of the paper: ATGCT vs AGCT aligns with score 7."""
        assert alignment_score("ATGCT", "AGCT") == 7

    def test_figure2_matrix_values(self):
        matrix = score_matrix("ATGCT", "AGCT")
        # Row/column conventions: matrix[i][j] for prefix lengths i of ATGCT, j of AGCT.
        assert matrix[1, 1] == 2      # A-A match
        assert matrix.max() == 7

    def test_identical_sequences_score(self):
        assert alignment_score("ACGT", "ACGT") == 8  # 4 matches x +2

    def test_disjoint_sequences_score_low(self):
        assert alignment_score("AAAA", "TTTT") in (0, 2)

    def test_empty_behaviour(self):
        assert alignment_score("", "ACGT") == 0

    def test_symmetry(self):
        first, second = "ACGTACGGT", "ACGGTT"
        assert alignment_score(first, second) == alignment_score(second, first)

    def test_scores_are_non_negative_and_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            a = random_sequence(20, rng)
            b = random_sequence(15, rng)
            score = alignment_score(a, b)
            assert 0 <= score <= 2 * min(len(a), len(b))

    def test_wavefront_matches_classic(self):
        rng = np.random.default_rng(1)
        for _ in range(6):
            a = random_sequence(int(rng.integers(5, 30)), rng)
            b = random_sequence(int(rng.integers(5, 30)), rng)
            assert wavefront_alignment_score(a, b) == alignment_score(a, b)

    def test_traceback_alignment_is_consistent(self):
        aligned_a, aligned_b = traceback("ATGCT", "AGCT")
        assert len(aligned_a) == len(aligned_b)
        assert aligned_a.replace("-", "") in "ATGCT"

    def test_end_position_is_matrix_argmax(self):
        row, col = alignment_end_position("ATGCT", "AGCT")
        matrix = score_matrix("ATGCT", "AGCT")
        assert matrix[row, col] == matrix.max()

    def test_custom_scoring_scheme(self):
        generous = ScoringScheme(match=5, mismatch=-1, gap=-1)
        assert alignment_score("ACGT", "ACGT", generous) == 20

    def test_batch_scores_accept_pairs_and_tuples(self):
        pairs = [SequencePair("ACGT", "ACG"), ("ACGT", "ACG")]
        scores = batch_alignment_scores(pairs)
        assert scores[0] == scores[1]


class TestSequences:
    def test_random_sequence_alphabet_and_length(self):
        rng = np.random.default_rng(2)
        sequence = random_sequence(50, rng)
        assert len(sequence) == 50
        assert set(sequence) <= set("ACGT")

    def test_generation_is_deterministic_by_seed(self):
        assert generate_pairs(3, 20, 12, seed=9) == generate_pairs(3, 20, 12, seed=9)
        assert generate_pairs(3, 20, 12, seed=9) != generate_pairs(3, 20, 12, seed=10)

    def test_mutate_sequence_stays_on_alphabet(self):
        rng = np.random.default_rng(3)
        mutated = mutate_sequence("ACGTACGTACGT", rng)
        assert set(mutated) <= set("ACGT")

    def test_related_pairs_score_higher_than_random(self):
        related = generate_pairs(4, 40, 30, seed=4, related_fraction=1.0)
        unrelated = generate_pairs(4, 40, 30, seed=4, related_fraction=0.0)
        assert batch_alignment_scores(related).mean() > batch_alignment_scores(unrelated).mean()

    def test_encode_sequence_values(self):
        np.testing.assert_array_equal(encode_sequence("ACGT"), [0, 1, 2, 3])

    def test_encode_batch_layout(self):
        pairs = [SequencePair("ACGT", "AC"), SequencePair("GGG", "TTTT")]
        batch = encode_batch(pairs)
        assert batch.pair_count == 2
        assert batch.offsets_a.tolist() == [0, 4]
        assert batch.offsets_b.tolist() == [0, 2]
        assert batch.lengths_b.tolist() == [2, 4]
        assert batch.max_query_length == 4
        assert batch.seq_a.shape[0] == 7

    def test_standard_pair_sets_have_both_regimes(self):
        for pairs in (fitness_pairs(), search_pairs()):
            lengths = [len(pair.query) for pair in pairs]
            assert any(length <= 32 for length in lengths)
            assert any(length > 32 for length in lengths)
        assert len(heldout_pairs()) >= 8

    def test_invalid_sequence_pair_rejected(self):
        with pytest.raises(ValueError):
            SequencePair("ACGT", "")
        with pytest.raises(ValueError):
            SequencePair("ACGT", "ACBX")
