"""The README CLI reference stays in sync with the actual parsers.

Two directions, plus a ``--help`` smoke test:

* every flag a subcommand parser defines appears in README.md (no
  undocumented flags);
* every ``--flag`` mentioned in the README's CLI-reference section is a
  real flag of at least one subcommand (no stale documentation);
* ``--help`` renders for the top-level parser and every subcommand.
"""

import os
import re

import pytest

from repro.cli import _build_parser, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
README = open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8").read()


def _subparsers():
    parser = _build_parser()
    actions = [action for action in parser._actions
               if hasattr(action, "choices") and isinstance(action.choices, dict)]
    assert actions, "subcommand dispatch disappeared from the CLI parser"
    return actions[0].choices


def _option_strings(subparser):
    return {option
            for action in subparser._actions
            for option in action.option_strings
            if option.startswith("--")}


class TestReadmeMatchesParsers:
    def test_every_subcommand_is_documented(self):
        for name in _subparsers():
            assert f"`{name}" in README or f"`repro {name}" in README, (
                f"subcommand {name!r} is missing from the README CLI reference")

    def test_every_flag_is_documented(self):
        documented = set(re.findall(r"--[a-z][a-z-]*", README))
        for name, subparser in _subparsers().items():
            for option in _option_strings(subparser):
                assert option in documented, (
                    f"flag {option} of subcommand {name!r} is not documented "
                    "in the README CLI reference")

    def test_no_stale_flags_in_the_reference_tables(self):
        # Flags inside the CLI reference section must all exist somewhere.
        section = README.split("## CLI reference", 1)[1].split("\n## ", 1)[0]
        known = set()
        for subparser in _subparsers().values():
            known.update(_option_strings(subparser))
        for flag in set(re.findall(r"`(--[a-z][a-z-]*)", section)):
            assert flag in known, f"README documents unknown flag {flag}"


class TestHelpSmoke:
    @pytest.mark.parametrize("argv", [
        ["--help"],
        ["search", "--help"],
        ["baseline", "--help"],
        ["sweep", "--help"],
        ["run", "--help"],
        ["list", "--help"],
    ])
    def test_help_renders(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "usage:" in out

    def test_sweep_help_names_the_key_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        out = capsys.readouterr().out
        for flag in ("--arch", "--workload", "--seeds", "--runs", "--method",
                     "--sweep-dir", "--resume", "--jobs", "--executor",
                     "--cache", "--cache-backend", "--cache-shards",
                     "--checkpoint-every", "--reference-interpreter"):
            assert flag in out
