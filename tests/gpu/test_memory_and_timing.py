"""Unit tests for the memory model, cost model, arena and profiler."""

import numpy as np
import pytest

from repro.errors import KernelTrap, LaunchError
from repro.gpu import (
    GpuDevice,
    P100,
    V100,
    bank_conflicts,
    coalesced_transactions,
    cycles_to_milliseconds,
    get_arch,
)
from repro.gpu.memory import (
    ArenaBufferHandle,
    BufferHandle,
    GlobalMemory,
    SharedMemoryBlock,
)
from repro.gpu.timing import CostModel, MemoryAccessInfo
from repro.ir import Instruction, KernelBuilder, Param, Reg, Const


class TestCoalescingAndConflicts:
    def test_contiguous_access_is_one_transaction(self):
        assert coalesced_transactions(np.arange(32)) == 1

    def test_strided_access_needs_many_transactions(self):
        assert coalesced_transactions(np.arange(32) * 64) == 32

    def test_empty_access(self):
        assert coalesced_transactions(np.array([], dtype=np.int64)) == 0

    def test_conflict_free_banks(self):
        assert bank_conflicts(np.arange(32)) == 1

    def test_same_address_conflicts(self):
        assert bank_conflicts(np.zeros(32, dtype=np.int64)) == 32

    def test_two_way_conflict(self):
        assert bank_conflicts(np.array([0, 32, 1, 2, 3])) == 2


class TestBufferHandle:
    def test_bounds_check_passes_in_range(self):
        handle = BufferHandle("b", "global", np.zeros(8))
        idx = handle.check_bounds(np.array([0, 7]))
        assert list(idx) == [0, 7]

    def test_bounds_check_rejects_out_of_range(self):
        handle = BufferHandle("b", "global", np.zeros(8))
        with pytest.raises(KernelTrap):
            handle.check_bounds(np.array([8]))
        with pytest.raises(KernelTrap):
            handle.check_bounds(np.array([-1]))

    def test_non_finite_index_rejected(self):
        handle = BufferHandle("b", "global", np.zeros(8))
        with pytest.raises(KernelTrap):
            handle.check_bounds(np.array([np.nan]))

    def test_requires_one_dimensional(self):
        with pytest.raises(LaunchError):
            BufferHandle("b", "global", np.zeros((2, 2)))


class TestUnifiedArena:
    def test_slightly_out_of_bounds_reads_stay_in_arena(self):
        memory = GlobalMemory(unified_arena=True, guard_elements=16)
        first = memory.bind("first", np.arange(8, dtype=np.float64))
        memory.bind("second", np.arange(8, dtype=np.float64) + 100)
        memory.finalize_arena()
        first = memory.get("first")
        # Index 8 overflows 'first' but lands on 'second' (or guard) without a trap.
        translated = first.check_bounds(np.array([8]))
        assert translated[0] == first.offset + 8

    def test_far_out_of_bounds_traps(self):
        memory = GlobalMemory(unified_arena=True, guard_elements=4)
        memory.bind("only", np.zeros(8))
        memory.finalize_arena()
        handle = memory.get("only")
        with pytest.raises(KernelTrap):
            handle.check_bounds(np.array([-10]))
        with pytest.raises(KernelTrap):
            handle.check_bounds(np.array([100]))

    def test_sync_back_copies_results_to_host(self):
        memory = GlobalMemory(unified_arena=True, guard_elements=4)
        host = np.zeros(4)
        memory.bind("data", host)
        memory.finalize_arena()
        handle = memory.get("data")
        handle.logical_view()[:] = [1, 2, 3, 4]
        memory.sync_back()
        np.testing.assert_allclose(host, [1, 2, 3, 4])

    def test_arena_end_to_end_launch(self):
        device = GpuDevice(P100, unified_memory_arena=True, arena_guard_elements=8)
        b = KernelBuilder("copy", params=[Param("src", "buffer"), Param("dst", "buffer")])
        b.block("entry")
        tid = b.tid_x()
        value = b.load(b.reg("src"), tid)
        b.store(b.reg("dst"), tid, value)
        b.ret()
        src = np.arange(32, dtype=np.float64)
        dst = np.zeros(32)
        device.launch(b.build(), grid=1, block=32, args={"src": src, "dst": dst})
        np.testing.assert_allclose(dst, src)


class TestSharedMemoryBlock:
    def test_poison_fill_by_default(self, axpy_kernel):
        from repro.ir import Function, SharedDecl

        func = Function("k", shared=[SharedDecl("tile", 4, "float"),
                                     SharedDecl("itile", 4, "int")])
        block = SharedMemoryBlock(func)
        assert np.isnan(block.get("tile").array).all()
        assert (block.get("itile").array < 0).all()

    def test_zero_fill_option(self):
        from repro.ir import Function, SharedDecl

        func = Function("k", shared=[SharedDecl("tile", 4, "float")])
        block = SharedMemoryBlock(func, zero_fill=True)
        assert (block.get("tile").array == 0).all()

    def test_unknown_array_traps(self):
        from repro.ir import Function

        block = SharedMemoryBlock(Function("k"))
        with pytest.raises(KernelTrap):
            block.get("missing")


class TestCostModel:
    def _load_cost(self, arch, indices):
        model = CostModel(arch)
        instruction = Instruction("load", dest="v", operands=[Reg("buf"), Reg("i")])
        handle = BufferHandle("buf", "global", np.zeros(4096))
        return model.instruction_cost(instruction, 32,
                                      MemoryAccessInfo(handle, np.asarray(indices)))

    def test_coalesced_load_cheaper_than_scattered(self):
        arch = get_arch("P100")
        assert self._load_cost(arch, np.arange(32)) < self._load_cost(arch, np.arange(32) * 64)

    def test_ballot_cost_differs_by_architecture(self):
        instruction = Instruction("ballot.sync", dest="m", operands=[Reg("a"), Reg("p")])
        pascal = CostModel(P100).instruction_cost(instruction, 32)
        volta = CostModel(V100).instruction_cost(instruction, 32)
        assert volta > pascal

    def test_div_more_expensive_than_add(self):
        model = CostModel(P100)
        add = Instruction("add", dest="a", operands=[Const(1), Const(2)])
        div = Instruction("div", dest="d", operands=[Const(1), Const(2)])
        assert model.instruction_cost(div, 32) > model.instruction_cost(add, 32)

    def test_cost_override(self):
        arch = P100.with_overrides(cost_overrides={"add": 99})
        model = CostModel(arch)
        add = Instruction("add", dest="a", operands=[Const(1), Const(2)])
        assert model.instruction_cost(add, 32) == 99

    def test_cycles_to_milliseconds(self):
        assert cycles_to_milliseconds(P100.clock_mhz * 1000.0, P100) == pytest.approx(1.0)


class TestProfiler:
    def test_profile_attributes_cycles_to_instructions(self, p100_device, axpy_kernel, axpy_inputs):
        x, y, n = axpy_inputs
        result = p100_device.launch(axpy_kernel, grid=5, block=32,
                                    args={"x": x, "y": y.copy(), "a": 1.0, "n": n})
        profile = result.profile
        assert profile.total_executions() > 0
        assert profile.total_cycles() > 0
        hottest = profile.hottest(3)
        assert len(hottest) == 3
        assert hottest[0].cycles >= hottest[-1].cycles

    def test_fraction_of_cycles(self, p100_device, axpy_kernel, axpy_inputs):
        x, y, n = axpy_inputs
        result = p100_device.launch(axpy_kernel, grid=5, block=32,
                                    args={"x": x, "y": y.copy(), "a": 1.0, "n": n})
        loads = [inst.uid for inst in axpy_kernel.instructions() if inst.opcode == "load"]
        fraction = result.profile.fraction_of_cycles(loads)
        assert 0.0 < fraction < 1.0

    def test_by_opcode_category(self, p100_device, axpy_kernel, axpy_inputs):
        x, y, n = axpy_inputs
        result = p100_device.launch(axpy_kernel, grid=2, block=64,
                                    args={"x": x, "y": y.copy(), "a": 1.0, "n": n})
        categories = result.profile.by_opcode_category(axpy_kernel)
        assert "memory" in categories and categories["memory"] > 0
