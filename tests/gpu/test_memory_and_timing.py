"""Unit tests for the memory model, cost model, arena and profiler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelTrap, LaunchError
from repro.gpu import (
    GpuDevice,
    P100,
    V100,
    bank_conflicts,
    coalesced_transactions,
    cycles_to_milliseconds,
    get_arch,
)
from repro.gpu.memory import (
    ArenaBufferHandle,
    BufferHandle,
    GlobalMemory,
    SharedMemoryBlock,
    conflicts_from_stats,
    transactions_from_stats,
)
from repro.gpu.timing import CostModel, MemoryAccessInfo
from repro.ir import Instruction, KernelBuilder, Param, Reg, Const


class TestCoalescingAndConflicts:
    def test_contiguous_access_is_one_transaction(self):
        assert coalesced_transactions(np.arange(32)) == 1

    def test_strided_access_needs_many_transactions(self):
        assert coalesced_transactions(np.arange(32) * 64) == 32

    def test_empty_access(self):
        assert coalesced_transactions(np.array([], dtype=np.int64)) == 0

    def test_conflict_free_banks(self):
        assert bank_conflicts(np.arange(32)) == 1

    def test_same_address_conflicts(self):
        assert bank_conflicts(np.zeros(32, dtype=np.int64)) == 32

    def test_two_way_conflict(self):
        assert bank_conflicts(np.array([0, 32, 1, 2, 3])) == 2


def _oracle_transactions(idx: np.ndarray, segment_size: int) -> int:
    """The pre-vectorization definition: distinct touched segments."""
    if idx.size == 0:
        return 0
    return int(np.unique(idx // segment_size).size)


def _oracle_conflicts(idx: np.ndarray, num_banks: int) -> int:
    """The pre-vectorization definition: deepest bank occupancy."""
    if idx.size == 0:
        return 1
    return int(np.bincount(idx % num_banks).max())


class TestPricingProperties:
    """The vectorized pricing stack against its ``np.unique`` oracle.

    ``coalesced_transactions`` / ``bank_conflicts`` grew span- and
    contiguity-based fast paths (plus ``*_from_stats`` variants fed by the
    fused bounds check); every shortcut must agree with the direct
    definition on the whole non-negative index domain and on non-default
    geometry.
    """

    @given(indices=st.lists(st.integers(0, 4096), max_size=64),
           segment_size=st.sampled_from([8, 16, 32, 128]))
    @settings(max_examples=120, deadline=None)
    def test_transactions_match_oracle(self, indices, segment_size):
        idx = np.array(indices, dtype=np.int64)
        assert (coalesced_transactions(idx, segment_size)
                == _oracle_transactions(idx, segment_size))

    @given(indices=st.lists(st.integers(0, 4096), max_size=64),
           num_banks=st.sampled_from([4, 16, 32]))
    @settings(max_examples=120, deadline=None)
    def test_conflicts_match_oracle(self, indices, num_banks):
        idx = np.array(indices, dtype=np.int64)
        assert (bank_conflicts(idx, num_banks)
                == _oracle_conflicts(idx, num_banks))

    @given(indices=st.lists(st.integers(0, 4096), max_size=64),
           segment_size=st.sampled_from([8, 16, 32]),
           num_banks=st.sampled_from([4, 16, 32]))
    @settings(max_examples=120, deadline=None)
    def test_stats_variants_match_plain(self, indices, segment_size, num_banks):
        idx = np.array(indices, dtype=np.int64)
        lo = int(idx.min()) if idx.size else 0
        hi = int(idx.max()) if idx.size else -1
        assert (transactions_from_stats(idx.copy(), lo, hi, segment_size)
                == coalesced_transactions(idx, segment_size))
        assert (conflicts_from_stats(idx.copy(), lo, hi, num_banks)
                == bank_conflicts(idx, num_banks))

    def test_empty_access(self):
        empty = np.array([], dtype=np.int64)
        assert coalesced_transactions(empty, 16) == 0
        assert bank_conflicts(empty, 16) == 1

    def test_single_lane(self):
        one = np.array([37], dtype=np.int64)
        assert coalesced_transactions(one, 16) == 1
        assert bank_conflicts(one, 16) == 1

    def test_fully_coalesced_non_default_geometry(self):
        idx = np.arange(32, dtype=np.int64)
        # A 32-lane contiguous access spans two 16-element segments but
        # only one 32-element segment.
        assert coalesced_transactions(idx, 16) == 2
        assert coalesced_transactions(idx, 32) == 1
        assert bank_conflicts(idx, 16) == 2
        assert bank_conflicts(idx, 32) == 1

    def test_worst_case_scatter(self):
        idx = np.arange(32, dtype=np.int64) * 64
        assert coalesced_transactions(idx, 16) == 32
        assert bank_conflicts(idx, 16) == 32

    def test_contiguity_shortcut_requires_unit_steps(self):
        # Span == size - 1 but with a duplicate and a gap: the fast path
        # must fall through to the bincount, not ceil-divide.
        idx = np.array([0, 1, 1, 3], dtype=np.int64)
        assert bank_conflicts(idx, 4) == 2


class TestBufferHandle:
    def test_bounds_check_passes_in_range(self):
        handle = BufferHandle("b", "global", np.zeros(8))
        idx = handle.check_bounds(np.array([0, 7]))
        assert list(idx) == [0, 7]

    def test_bounds_check_rejects_out_of_range(self):
        handle = BufferHandle("b", "global", np.zeros(8))
        with pytest.raises(KernelTrap):
            handle.check_bounds(np.array([8]))
        with pytest.raises(KernelTrap):
            handle.check_bounds(np.array([-1]))

    def test_non_finite_index_rejected(self):
        handle = BufferHandle("b", "global", np.zeros(8))
        with pytest.raises(KernelTrap):
            handle.check_bounds(np.array([np.nan]))

    def test_requires_one_dimensional(self):
        with pytest.raises(LaunchError):
            BufferHandle("b", "global", np.zeros((2, 2)))


class TestUnifiedArena:
    def test_slightly_out_of_bounds_reads_stay_in_arena(self):
        memory = GlobalMemory(unified_arena=True, guard_elements=16)
        first = memory.bind("first", np.arange(8, dtype=np.float64))
        memory.bind("second", np.arange(8, dtype=np.float64) + 100)
        memory.finalize_arena()
        first = memory.get("first")
        # Index 8 overflows 'first' but lands on 'second' (or guard) without a trap.
        translated = first.check_bounds(np.array([8]))
        assert translated[0] == first.offset + 8

    def test_far_out_of_bounds_traps(self):
        memory = GlobalMemory(unified_arena=True, guard_elements=4)
        memory.bind("only", np.zeros(8))
        memory.finalize_arena()
        handle = memory.get("only")
        with pytest.raises(KernelTrap):
            handle.check_bounds(np.array([-10]))
        with pytest.raises(KernelTrap):
            handle.check_bounds(np.array([100]))

    def test_sync_back_copies_results_to_host(self):
        memory = GlobalMemory(unified_arena=True, guard_elements=4)
        host = np.zeros(4)
        memory.bind("data", host)
        memory.finalize_arena()
        handle = memory.get("data")
        handle.logical_view()[:] = [1, 2, 3, 4]
        memory.sync_back()
        np.testing.assert_allclose(host, [1, 2, 3, 4])

    def test_arena_end_to_end_launch(self):
        device = GpuDevice(P100, unified_memory_arena=True, arena_guard_elements=8)
        b = KernelBuilder("copy", params=[Param("src", "buffer"), Param("dst", "buffer")])
        b.block("entry")
        tid = b.tid_x()
        value = b.load(b.reg("src"), tid)
        b.store(b.reg("dst"), tid, value)
        b.ret()
        src = np.arange(32, dtype=np.float64)
        dst = np.zeros(32)
        device.launch(b.build(), grid=1, block=32, args={"src": src, "dst": dst})
        np.testing.assert_allclose(dst, src)


class TestSharedMemoryBlock:
    def test_poison_fill_by_default(self, axpy_kernel):
        from repro.ir import Function, SharedDecl

        func = Function("k", shared=[SharedDecl("tile", 4, "float"),
                                     SharedDecl("itile", 4, "int")])
        block = SharedMemoryBlock(func)
        assert np.isnan(block.get("tile").array).all()
        assert (block.get("itile").array < 0).all()

    def test_zero_fill_option(self):
        from repro.ir import Function, SharedDecl

        func = Function("k", shared=[SharedDecl("tile", 4, "float")])
        block = SharedMemoryBlock(func, zero_fill=True)
        assert (block.get("tile").array == 0).all()

    def test_unknown_array_traps(self):
        from repro.ir import Function

        block = SharedMemoryBlock(Function("k"))
        with pytest.raises(KernelTrap):
            block.get("missing")


class TestCostModel:
    def _load_cost(self, arch, indices):
        model = CostModel(arch)
        instruction = Instruction("load", dest="v", operands=[Reg("buf"), Reg("i")])
        handle = BufferHandle("buf", "global", np.zeros(4096))
        return model.instruction_cost(instruction, 32,
                                      MemoryAccessInfo(handle, np.asarray(indices)))

    def test_coalesced_load_cheaper_than_scattered(self):
        arch = get_arch("P100")
        assert self._load_cost(arch, np.arange(32)) < self._load_cost(arch, np.arange(32) * 64)

    def test_ballot_cost_differs_by_architecture(self):
        instruction = Instruction("ballot.sync", dest="m", operands=[Reg("a"), Reg("p")])
        pascal = CostModel(P100).instruction_cost(instruction, 32)
        volta = CostModel(V100).instruction_cost(instruction, 32)
        assert volta > pascal

    def test_div_more_expensive_than_add(self):
        model = CostModel(P100)
        add = Instruction("add", dest="a", operands=[Const(1), Const(2)])
        div = Instruction("div", dest="d", operands=[Const(1), Const(2)])
        assert model.instruction_cost(div, 32) > model.instruction_cost(add, 32)

    def test_cost_override(self):
        arch = P100.with_overrides(cost_overrides={"add": 99})
        model = CostModel(arch)
        add = Instruction("add", dest="a", operands=[Const(1), Const(2)])
        assert model.instruction_cost(add, 32) == 99

    def test_cycles_to_milliseconds(self):
        assert cycles_to_milliseconds(P100.clock_mhz * 1000.0, P100) == pytest.approx(1.0)


class TestCounterSymmetry:
    """Every charged cycle lands in a counter, and the sums agree."""

    CYCLE_COUNTERS = ("alu_cycles", "branch_cycles", "barrier_cycles",
                      "warp_sync_cycles", "shuffle_cycles", "global_cycles",
                      "shared_cycles", "override_cycles")

    def test_counter_sums_equal_charged_cycles(self):
        model = CostModel(get_arch("P100"))
        gbuf = BufferHandle("g", "global", np.zeros(4096))
        sbuf = BufferHandle("s", "shared", np.zeros(64))
        load = Instruction("load", dest="v", operands=[Reg("g"), Reg("i")])
        store = Instruction("store", operands=[Reg("s"), Reg("i"), Reg("v")])
        charged = 0.0
        charged += model.instruction_cost(
            Instruction("add", dest="a", operands=[Const(1), Const(2)]), 32)
        charged += model.instruction_cost(
            Instruction("syncthreads", operands=[]), 32)
        charged += model.instruction_cost(
            load, 32, MemoryAccessInfo(gbuf, np.arange(32) * 3))
        charged += model.instruction_cost(
            store, 32, MemoryAccessInfo(sbuf, np.zeros(32, dtype=np.int64)))
        # The trapped path (access never resolved) must charge a counter
        # too -- historically it bumped nothing, breaking the symmetry.
        charged += model.instruction_cost(load, 32, None)
        counted = sum(model.counters.get(key, 0.0)
                      for key in self.CYCLE_COUNTERS)
        assert counted == charged

    def test_shared_access_records_conflict_evidence(self):
        model = CostModel(get_arch("P100"))
        sbuf = BufferHandle("s", "shared", np.zeros(64))
        load = Instruction("load", dest="v", operands=[Reg("s"), Reg("i")])
        model.instruction_cost(
            load, 32, MemoryAccessInfo(sbuf, np.zeros(32, dtype=np.int64)))
        assert model.counters["shared_conflicts"] == 32.0


class TestArchGeometry:
    """Pricing geometry comes from the arch, never from literals."""

    def test_g80_registered_with_non_default_geometry(self):
        g80 = get_arch("G80")
        assert g80.memory_segment_size == 16
        assert g80.shared_banks == 16
        assert get_arch("P100").memory_segment_size == 32
        assert get_arch("P100").shared_banks == 32

    def test_geometry_changes_the_price(self):
        load = Instruction("load", dest="v", operands=[Reg("g"), Reg("i")])
        handle = BufferHandle("g", "global", np.zeros(4096))
        indices = np.arange(32)  # one 32-wide segment, two 16-wide ones

        def transactions(arch):
            model = CostModel(arch)
            model.instruction_cost(load, 32, MemoryAccessInfo(handle, indices))
            return model.counters["global_transactions"]

        assert transactions(get_arch("P100")) == 1.0
        assert transactions(get_arch("G80")) == 2.0

    def test_geometry_is_part_of_the_cost_signature(self):
        narrow = P100.with_overrides(memory_segment_size=16)
        banked = P100.with_overrides(shared_banks=16)
        assert narrow.cost_signature() != P100.cost_signature()
        assert banked.cost_signature() != P100.cost_signature()


class TestProfiler:
    def test_profile_attributes_cycles_to_instructions(self, p100_device, axpy_kernel, axpy_inputs):
        x, y, n = axpy_inputs
        result = p100_device.launch(axpy_kernel, grid=5, block=32,
                                    args={"x": x, "y": y.copy(), "a": 1.0, "n": n})
        profile = result.profile
        assert profile.total_executions() > 0
        assert profile.total_cycles() > 0
        hottest = profile.hottest(3)
        assert len(hottest) == 3
        assert hottest[0].cycles >= hottest[-1].cycles

    def test_fraction_of_cycles(self, p100_device, axpy_kernel, axpy_inputs):
        x, y, n = axpy_inputs
        result = p100_device.launch(axpy_kernel, grid=5, block=32,
                                    args={"x": x, "y": y.copy(), "a": 1.0, "n": n})
        loads = [inst.uid for inst in axpy_kernel.instructions() if inst.opcode == "load"]
        fraction = result.profile.fraction_of_cycles(loads)
        assert 0.0 < fraction < 1.0

    def test_by_opcode_category(self, p100_device, axpy_kernel, axpy_inputs):
        x, y, n = axpy_inputs
        result = p100_device.launch(axpy_kernel, grid=2, block=64,
                                    args={"x": x, "y": y.copy(), "a": 1.0, "n": n})
        categories = result.profile.by_opcode_category(axpy_kernel)
        assert "memory" in categories and categories["memory"] > 0
