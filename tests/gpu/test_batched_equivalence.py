"""Differential battery: batched launches against per-row solo launches.

``GpuDevice.launch_batched`` stacks N candidates into ``(N, lanes)``
NumPy state and must be **bit-for-bit** equivalent to launching every row
on its own: identical cycle counts, cost-model counters, per-uid profiler
statistics, output buffers, seeded RNG streams, and trap outcomes (a
trapped row falls back to a solo re-run without perturbing its
siblings).  The battery mirrors ``test_fast_path_equivalence.py``: every
workload, every architecture, discovered and seeded-random edit sets,
hypothesis-generated mixed batches, divergent/masked rows, and the
structural-key grouping the engine's clone batching relies on.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelTrap, LaunchError
from repro.gevo import apply_edits
from repro.gevo.edits import InstructionDelete, OperandReplace
from repro.gevo.mutation import EditGenerator
from repro.gpu import EVALUATION_ORDER, GpuDevice, get_arch
from repro.gpu.batched import batchable_function
from repro.gpu.jitted import structural_module_key
from repro.ir import KernelBuilder, Param, build_module
from repro.ir.values import Const
from repro.workloads.toy import ToyWorkloadAdapter, build_toy_kernel, toy_discovered_edits


def profile_stats(profile):
    return {uid: (p.executions, p.cycles, p.opcode, p.location)
            for uid, p in profile.instructions.items()}


def _copy_args(args):
    return {name: (value.copy() if isinstance(value, np.ndarray) else value)
            for name, value in args.items()}


def assert_batched_equals_solo(rows, grid, block, arch, *, kernel_name=None,
                               **device_kwargs):
    """One batched launch vs per-row solo launches, everything compared."""
    batched_device = GpuDevice(arch, **device_kwargs)
    batched_args = [_copy_args(args) for _, args in rows]
    batched = batched_device.launch_batched(
        [(module, args) for (module, _), args in zip(rows, batched_args)],
        grid, block, kernel_name=kernel_name)

    solo_device = GpuDevice(arch, **device_kwargs)
    for index, (module, args) in enumerate(rows):
        solo_args = _copy_args(args)
        try:
            solo = solo_device.launch(module, grid, block, solo_args,
                                      kernel_name=kernel_name)
        except (KernelTrap, LaunchError) as error:
            outcome = batched[index]
            assert isinstance(outcome, Exception), (index, outcome)
            assert type(outcome) is type(error), index
            assert str(outcome) == str(error), index
            continue
        outcome = batched[index]
        assert not isinstance(outcome, Exception), (index, outcome)
        assert outcome.cycles == solo.cycles, index
        assert outcome.time_ms == solo.time_ms, index
        assert outcome.instructions_executed == solo.instructions_executed, index
        assert outcome.warps_executed == solo.warps_executed, index
        assert outcome.blocks_executed == solo.blocks_executed, index
        assert outcome.counters == solo.counters, index
        assert profile_stats(outcome.profile) == profile_stats(solo.profile), index
        for name, value in solo_args.items():
            if isinstance(value, np.ndarray):
                np.testing.assert_array_equal(
                    batched_args[index][name], value,
                    err_msg=f"buffer {name!r} differs on row {index}")
    return batched


def _toy_args(elements, seed=7, n=None):
    rng = np.random.default_rng(seed)
    return {"x": rng.normal(size=elements), "y": rng.normal(size=elements),
            "out": np.zeros(elements), "n": elements if n is None else n}


# --------------------------------------------------------------------------- grid batching
@pytest.mark.parametrize("arch_name", EVALUATION_ORDER)
def test_scalar_parameter_rows_equivalent_on_every_arch(arch_name):
    """One program, per-row scalar parameters: the SimCov fitness-grid shape.

    Different ``n`` per row drives the bounds-check CONDBR differently in
    every row, so the same batch holds uniform-taken, uniform-skipped and
    divergent rows at once.
    """
    kernel = build_toy_kernel()
    variant = apply_edits(kernel.module, toy_discovered_edits(kernel)).module
    arch = get_arch(arch_name)
    rows = [(variant, _toy_args(128, seed=row, n=n))
            for row, n in enumerate([128, 96, 1, 0, 37, 128, 64, 127])]
    assert_batched_equals_solo(rows, 2, 64, arch, kernel_name="saxpy_wasteful")


def test_simcov_fitness_batched_equivalent():
    from repro.workloads.simcov import SimCovParams, SimCovWorkloadAdapter

    adapter = SimCovWorkloadAdapter(get_arch("P100"),
                                    fitness_params=SimCovParams.quick())
    module = adapter.original_module()
    mutated = apply_edits(module, []).module
    results = adapter.evaluate_batched([module, mutated, module])
    reference = adapter.evaluate(module)
    for result in results:
        assert result.valid == reference.valid
        assert result.runtime_ms == reference.runtime_ms
        assert [(case.name, case.passed, case.runtime_ms) for case in result.cases] \
            == [(case.name, case.passed, case.runtime_ms) for case in reference.cases]


def test_toy_adapter_batched_equivalent_on_every_arch():
    for arch_name in EVALUATION_ORDER:
        adapter = ToyWorkloadAdapter(get_arch(arch_name), elements=96)
        edits = toy_discovered_edits(adapter.kernel)
        modules = [adapter.original_module()] + [
            apply_edits(adapter.original_module(), [edit]).module
            for edit in edits]
        batched = adapter.evaluate_batched(modules)
        solo = [adapter.evaluate(module) for module in modules]
        for b, s in zip(batched, solo):
            assert b.valid == s.valid, arch_name
            assert b.runtime_ms == s.runtime_ms or (
                math.isinf(b.runtime_ms) and math.isinf(s.runtime_ms)), arch_name


# --------------------------------------------------------------------------- clone batching
def test_const_mutated_clones_share_structural_key_and_agree():
    """GEVO operand-mutation clones (same shape, different baked constants)
    group under one structural key and batch bit-for-bit."""
    kernel = build_toy_kernel()
    barrier_free = apply_edits(
        kernel.module, [InstructionDelete(kernel.edit_targets["useless_barrier"])])
    base = barrier_free.module
    scaled_uid = next(inst.uid for inst in base.instructions()
                      if inst.dest == "scaled")
    arch = get_arch("P100")
    clones = [apply_edits(base, [OperandReplace(scaled_uid, 1, Const(value))]).module
              for value in (3.0, 4.0, -1.0, 0.5)]
    keys = {structural_module_key(module, arch) for module in clones}
    assert len(keys) == 1
    assert all(batchable_function(m.get_function("saxpy_wasteful"), arch)
               for m in clones)
    rows = [(module, _toy_args(64, seed=3)) for module in clones]
    batched = assert_batched_equals_solo(rows, 1, 64, arch,
                                         kernel_name="saxpy_wasteful")
    assert all(not isinstance(outcome, Exception) for outcome in batched)


def test_mismatched_structural_keys_still_agree():
    """A batch whose rows do *not* share a structural key must fall back to
    solo launches transparently -- same results, no grouping assumptions."""
    kernel = build_toy_kernel()
    variants = [apply_edits(kernel.module, [edit]).module
                for edit in toy_discovered_edits(kernel)]
    rows = [(module, _toy_args(64, seed=5)) for module in variants]
    assert_batched_equals_solo(rows, 1, 64, get_arch("P100"),
                               kernel_name="saxpy_wasteful")


# --------------------------------------------------------------------------- random edit sets
def _random_variants(seed, count, length):
    kernel = build_toy_kernel()
    rng = random.Random(seed)
    generator = EditGenerator(kernel.module, rng)
    variants = []
    for _ in range(count):
        edits = []
        for _ in range(rng.randint(1, length)):
            edit = generator.random_edit()
            if edit is not None:
                edits.append(edit)
        variants.append(apply_edits(kernel.module, edits).module)
    return variants


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_mutant_batches_equivalent(seed):
    """Seeded random mutants -- many trap or diverge -- agree per row.

    Trapping rows mid-batch must surface their solo trap (type and
    message) while the surviving rows keep exact results and buffers.
    """
    elements = 150  # partial final warp
    rows = [(variant, _toy_args(elements, seed=seed, n=elements))
            for variant in _random_variants(seed, count=8, length=4)]
    assert_batched_equals_solo(rows, 3, 64, get_arch("P100"),
                               kernel_name="saxpy_wasteful")


@settings(max_examples=10, deadline=None)
@given(picks=st.lists(st.integers(min_value=0, max_value=7), min_size=2,
                      max_size=6),
       elements=st.integers(min_value=1, max_value=130))
def test_hypothesis_mixed_batches_equivalent(picks, elements):
    """Hypothesis-built mixed batches: discovered variants, random mutants
    (including trapping ones) and the barrier-carrying original, stacked
    in arbitrary multiplicity and order."""
    kernel = build_toy_kernel()
    edits = toy_discovered_edits(kernel)
    pool = ([kernel.module]
            + [apply_edits(kernel.module, [edit]).module for edit in edits]
            + _random_variants(11, count=4, length=3))
    grid = max(1, math.ceil(elements / 64))
    rows = [(pool[pick], _toy_args(elements, seed=pick, n=elements))
            for pick in picks]
    assert_batched_equals_solo(rows, grid, 64, get_arch("P100"),
                               kernel_name="saxpy_wasteful")


def test_trap_mid_batch_leaves_siblings_exact():
    """An out-of-bounds row traps alone; its siblings match solo runs."""
    kernel = build_toy_kernel()
    variant = apply_edits(kernel.module, toy_discovered_edits(kernel)).module
    good = _toy_args(64, seed=1, n=64)
    bad = dict(_toy_args(8, seed=2), n=256)  # guaranteed OOB
    rows = [(variant, good), (variant, bad), (variant, good)]
    batched = assert_batched_equals_solo(rows, 1, 64, get_arch("P100"),
                                         kernel_name="saxpy_wasteful")
    assert isinstance(batched[1], KernelTrap)
    assert "out-of-bounds" in str(batched[1])
    assert not isinstance(batched[0], Exception)
    assert not isinstance(batched[2], Exception)


# --------------------------------------------------------------------------- RNG parity
def test_rand_uniform_streams_equivalent_per_row():
    """Counter-based RNG draws stay per-candidate streams: rows with
    different seed scalars batch into one launch and still reproduce
    their solo streams exactly."""
    b = KernelBuilder("randk", params=[Param("out", "buffer"),
                                       Param("seed", "scalar")])
    b.block("entry")
    tid = b.tid_x()
    draw = b.rand_uniform(b.reg("seed"), tid, 3)
    b.store(b.reg("out"), tid, draw)
    b.ret()
    module = build_module("randm", b.build())
    rows = [(module, {"out": np.zeros(32), "seed": seed})
            for seed in (11, 12, 13, 11)]
    batched = assert_batched_equals_solo(rows, 1, 32, get_arch("P100"),
                                         kernel_name="randk")
    assert all(not isinstance(outcome, Exception) for outcome in batched)


# --------------------------------------------------------------------------- tier interplay
def test_oracle_tier_batches_fall_back_to_solo():
    """A non-JIT device still honours the batched entry point (solo runs)."""
    kernel = build_toy_kernel()
    rows = [(kernel.module, _toy_args(64, seed=4)) for _ in range(3)]
    assert_batched_equals_solo(rows, 1, 64, get_arch("P100"),
                               kernel_name="saxpy_wasteful",
                               fast_path="oracle")


def test_cost_override_arch_batches_equivalent():
    """Memory cost overrides flip loads/stores to static pricing; the
    batched path must price them identically (here: by refusing to batch
    and reproducing the solo results)."""
    arch = get_arch("P100").with_overrides(cost_overrides={"load": 7})
    kernel = build_toy_kernel()
    variant = apply_edits(kernel.module, toy_discovered_edits(kernel)).module
    rows = [(variant, _toy_args(96, seed=row, n=n))
            for row, n in enumerate([96, 40, 96])]
    batched = assert_batched_equals_solo(rows, 2, 64, arch,
                                         kernel_name="saxpy_wasteful")
    assert batched[0].counters["override_cycles"] > 0
