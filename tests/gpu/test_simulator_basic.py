"""Integration tests for the GPU simulator on small hand-written kernels."""

import numpy as np
import pytest

from repro.errors import KernelTrap, LaunchError
from repro.gpu import GpuDevice, get_arch
from repro.ir import KernelBuilder, Param, SharedDecl


class TestAxpyLaunch:
    def test_functional_result(self, p100_device, axpy_kernel, axpy_inputs):
        x, y, n = axpy_inputs
        expected = 2.5 * x + y
        y_device = y.copy()
        result = p100_device.launch(axpy_kernel, grid=5, block=32,
                                    args={"x": x, "y": y_device, "a": 2.5, "n": n})
        np.testing.assert_allclose(y_device, expected)
        assert result.time_ms > 0
        assert result.blocks_executed == 5

    def test_out_of_bounds_threads_masked(self, p100_device, axpy_kernel):
        # 3 blocks x 64 threads = 192 threads but only 100 elements: the bounds
        # check inside the kernel must keep the extra threads idle.
        n = 100
        x = np.ones(n)
        y = np.zeros(n)
        p100_device.launch(axpy_kernel, grid=3, block=64,
                           args={"x": x, "y": y, "a": 3.0, "n": n})
        np.testing.assert_allclose(y, 3.0)

    def test_missing_argument_raises(self, p100_device, axpy_kernel):
        with pytest.raises(LaunchError):
            p100_device.launch(axpy_kernel, grid=1, block=32, args={"x": np.ones(4)})

    def test_larger_grid_takes_longer(self, p100_device, axpy_kernel):
        n = 32 * 4096
        x = np.ones(n)
        args = {"x": x, "a": 1.0, "n": n}
        small = p100_device.launch(axpy_kernel, grid=64, block=64,
                                   args={**args, "y": np.zeros(n)})
        large = p100_device.launch(axpy_kernel, grid=4096, block=64,
                                   args={**args, "y": np.zeros(n)})
        assert large.cycles > small.cycles


class TestDivergenceAndSharedMemory:
    def build_divergent_kernel(self):
        """Threads < 16 take one path, the rest another; both write out[tid]."""
        b = KernelBuilder("divergent", params=[Param("out", "buffer")])
        b.block("entry")
        tid = b.tid_x()
        cond = b.lt(tid, 16)
        then_cm, else_cm = b.if_then_else(cond)
        with then_cm:
            v = b.mul(tid, 2)
            b.store(b.reg("out"), tid, v)
        with else_cm:
            v = b.mul(tid, 3)
            b.store(b.reg("out"), tid, v)
        b.ret()
        return b.build()

    def test_divergent_branch_results(self, p100_device):
        kernel = self.build_divergent_kernel()
        out = np.zeros(32)
        p100_device.launch(kernel, grid=1, block=32, args={"out": out})
        lanes = np.arange(32)
        expected = np.where(lanes < 16, lanes * 2, lanes * 3)
        np.testing.assert_allclose(out, expected)

    def test_divergence_costs_more_than_uniform(self, p100_device):
        """A warp-divergent branch executes both sides: more cycles than uniform."""
        def build(threshold):
            b = KernelBuilder("k", params=[Param("out", "buffer")])
            b.block("entry")
            tid = b.tid_x()
            cond = b.lt(tid, threshold)
            then_cm, else_cm = b.if_then_else(cond)
            with then_cm:
                acc = b.mov(0, dest="acc")
                for _ in range(20):
                    acc = b.add(acc, 1, dest="acc")
                b.store(b.reg("out"), tid, acc)
            with else_cm:
                acc = b.mov(0, dest="acc2")
                for _ in range(20):
                    acc = b.add(acc, 2, dest="acc2")
                b.store(b.reg("out"), tid, acc)
            b.ret()
            return b.build()

        uniform = build(32)      # every lane takes the "then" side
        divergent = build(16)    # half the warp on each side
        out = np.zeros(32)
        t_uniform = p100_device.launch(uniform, grid=1, block=32, args={"out": out})
        t_divergent = p100_device.launch(divergent, grid=1, block=32, args={"out": out})
        from repro.gpu import LAUNCH_OVERHEAD_CYCLES
        uniform_kernel_cycles = t_uniform.cycles - LAUNCH_OVERHEAD_CYCLES
        divergent_kernel_cycles = t_divergent.cycles - LAUNCH_OVERHEAD_CYCLES
        assert divergent_kernel_cycles > uniform_kernel_cycles * 1.5

    def test_shared_memory_exchange_with_syncthreads(self, p100_device):
        """Each thread publishes its value; thread i then reads thread i+1's value."""
        b = KernelBuilder("exchange", params=[Param("out", "buffer")],
                          shared=[SharedDecl("tile", 64)])
        b.block("entry")
        tid = b.tid_x()
        b.store(b.reg("tile"), tid, tid)
        b.syncthreads()
        bdim = b.bdim_x()
        nxt = b.add(tid, 1)
        wrapped = b.rem(nxt, bdim)
        neighbour = b.load(b.reg("tile"), wrapped)
        b.store(b.reg("out"), tid, neighbour)
        b.ret()
        kernel = b.build()
        out = np.zeros(64)
        p100_device.launch(kernel, grid=1, block=64, args={"out": out})
        expected = (np.arange(64) + 1) % 64
        np.testing.assert_allclose(out, expected)

    def test_uninitialised_shared_memory_is_poison(self, p100_device):
        b = KernelBuilder("readshared", params=[Param("out", "buffer")],
                          shared=[SharedDecl("tile", 32)])
        b.block("entry")
        tid = b.tid_x()
        v = b.load(b.reg("tile"), tid)
        b.store(b.reg("out"), tid, v)
        b.ret()
        out = np.zeros(32)
        p100_device.launch(b.build(), grid=1, block=32, args={"out": out})
        assert np.isnan(out).all()


class TestWarpIntrinsics:
    def test_shfl_sync_neighbour_exchange(self, p100_device):
        b = KernelBuilder("shfl", params=[Param("out", "buffer")])
        b.block("entry")
        lane = b.laneid()
        mask = b.activemask()
        value = b.mul(lane, 10)
        src = b.sub(lane, 1)
        src = b.max(src, 0)
        got = b.shfl_sync(mask, value, src)
        b.store(b.reg("out"), lane, got)
        b.ret()
        out = np.zeros(32)
        p100_device.launch(b.build(), grid=1, block=32, args={"out": out})
        expected = np.maximum(np.arange(32) - 1, 0) * 10
        np.testing.assert_allclose(out, expected)

    def test_ballot_sync_counts_predicate_lanes(self, p100_device):
        b = KernelBuilder("ballot", params=[Param("out", "buffer")])
        b.block("entry")
        lane = b.laneid()
        mask = b.activemask()
        pred = b.lt(lane, 4)
        votes = b.ballot_sync(mask, pred)
        b.store(b.reg("out"), lane, votes)
        b.ret()
        out = np.zeros(32)
        p100_device.launch(b.build(), grid=1, block=32, args={"out": out})
        assert out[0] == 0b1111

    def test_atomic_add_accumulates_across_threads(self, p100_device):
        b = KernelBuilder("atomic", params=[Param("out", "buffer")])
        b.block("entry")
        b.atomic_add(b.reg("out"), 0, 1)
        b.ret()
        out = np.zeros(1)
        p100_device.launch(b.build(), grid=4, block=64, args={"out": out})
        assert out[0] == 4 * 64


class TestTraps:
    def test_out_of_bounds_store_traps(self, p100_device):
        b = KernelBuilder("oob", params=[Param("out", "buffer")])
        b.block("entry")
        tid = b.tid_x()
        big = b.add(tid, 1000)
        b.store(b.reg("out"), big, tid)
        b.ret()
        with pytest.raises(KernelTrap):
            p100_device.launch(b.build(), grid=1, block=32, args={"out": np.zeros(8)})

    def test_undefined_register_traps(self, p100_device):
        b = KernelBuilder("undef", params=[Param("out", "buffer")])
        b.block("entry")
        tid = b.tid_x()
        v = b.add(b.reg("never_defined"), 1)
        b.store(b.reg("out"), tid, v)
        b.ret()
        with pytest.raises(KernelTrap):
            p100_device.launch(b.build(), grid=1, block=32, args={"out": np.zeros(32)})

    def test_division_by_zero_traps(self, p100_device):
        b = KernelBuilder("divzero", params=[Param("out", "buffer")])
        b.block("entry")
        tid = b.tid_x()
        v = b.div(10, tid)
        b.store(b.reg("out"), tid, v)
        b.ret()
        with pytest.raises(KernelTrap):
            p100_device.launch(b.build(), grid=1, block=32, args={"out": np.zeros(32)})

    def test_runaway_loop_hits_instruction_budget(self, p100_device):
        b = KernelBuilder("spin", params=[Param("out", "buffer")])
        b.block("entry")
        b.branch("spin")
        b.block("spin")
        b.branch("spin")
        with pytest.raises(KernelTrap):
            p100_device.launch(b.build(), grid=1, block=32, args={"out": np.zeros(4)},
                               max_instructions_per_warp=5_000)


class TestLoopExecution:
    def test_for_range_accumulates(self, p100_device):
        b = KernelBuilder("accum", params=[Param("out", "buffer"), Param("n", "scalar")])
        b.block("entry")
        tid = b.tid_x()
        b.mov(0, dest="sum")
        with b.for_range("i", 0, b.reg("n")) as i:
            b.add(b.reg("sum"), i, dest="sum")
        b.store(b.reg("out"), tid, b.reg("sum"))
        b.ret()
        out = np.zeros(32)
        p100_device.launch(b.build(), grid=1, block=32, args={"out": out, "n": 10})
        np.testing.assert_allclose(out, 45.0)

    def test_divergent_trip_counts(self, p100_device):
        """Each thread loops tid times: thread i accumulates i iterations."""
        b = KernelBuilder("tri", params=[Param("out", "buffer")])
        b.block("entry")
        tid = b.tid_x()
        b.mov(0, dest="sum")
        with b.for_range("i", 0, tid):
            b.add(b.reg("sum"), 1, dest="sum")
        b.store(b.reg("out"), tid, b.reg("sum"))
        b.ret()
        out = np.zeros(32)
        p100_device.launch(b.build(), grid=1, block=32, args={"out": out})
        np.testing.assert_allclose(out, np.arange(32, dtype=float))


class TestArchRegistry:
    def test_lookup_is_case_insensitive(self):
        from repro.gpu import parse_arch_list

        assert parse_arch_list("p100, v100,P100") == ("P100", "V100")

    def test_parse_rejects_unknown_names(self):
        from repro.gpu import parse_arch_list

        with pytest.raises(KeyError):
            parse_arch_list("P100,K80")
        with pytest.raises(KeyError):
            parse_arch_list(" , ")

    def test_register_arch_round_trip(self):
        from repro.gpu import ARCHITECTURES, available_archs, register_arch

        custom = get_arch("P100").with_overrides(name="P100-oc", clock_mhz=1600.0)
        try:
            register_arch(custom)
            assert get_arch("p100-oc") is custom
            assert available_archs()[-1] == "P100-oc"
            # Idempotent for an identical description...
            register_arch(custom)
            # ...but replacing a name with a different arch must be explicit
            # (the arch name is part of every fitness-cache key).
            with pytest.raises(ValueError):
                register_arch(custom.with_overrides(clock_mhz=1700.0))
            register_arch(custom.with_overrides(clock_mhz=1700.0), overwrite=True)
            assert get_arch("P100-oc").clock_mhz == 1700.0
        finally:
            ARCHITECTURES.pop("P100-oc", None)

    def test_paper_archs_keep_evaluation_order_first(self):
        from repro.gpu import available_archs

        assert available_archs()[:3] == ("P100", "1080Ti", "V100")


class TestArchitectureEffects:
    def test_clock_scales_time(self, axpy_kernel, axpy_inputs):
        x, y, n = axpy_inputs
        args = {"x": x, "a": 2.0, "n": n}
        p100 = GpuDevice(get_arch("P100")).launch(
            axpy_kernel, grid=5, block=32, args={**args, "y": y.copy()})
        gtx = GpuDevice(get_arch("1080Ti")).launch(
            axpy_kernel, grid=5, block=32, args={**args, "y": y.copy()})
        # Same cycle count per block but the 1080Ti clocks higher.
        assert gtx.time_ms < p100.time_ms

    def test_ballot_sync_is_expensive_only_on_volta(self):
        def build():
            b = KernelBuilder("bal", params=[Param("out", "buffer")])
            b.block("entry")
            lane = b.laneid()
            mask = b.activemask()
            for _ in range(50):
                mask = b.ballot_sync(mask, b.lt(lane, 16))
            b.store(b.reg("out"), lane, mask)
            b.ret()
            return b.build()

        kernel = build()
        out = np.zeros(32)
        pascal = GpuDevice(get_arch("P100")).launch(kernel, grid=1, block=32, args={"out": out})
        volta = GpuDevice(get_arch("V100")).launch(kernel, grid=1, block=32, args={"out": out})
        assert volta.counters["warp_sync_cycles"] > pascal.counters["warp_sync_cycles"] * 2
