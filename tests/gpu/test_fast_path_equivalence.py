"""Differential battery: all three interpreter tiers against each other.

The decode-once dispatch tables (:mod:`repro.gpu.decoded`) and the
exec-compiled segment JIT (:mod:`repro.gpu.jitted`) must both be
**bit-for-bit** equivalent to the tree-walking reference interpreter:
identical cycle counts, cost-model counters, per-uid profiler statistics,
output buffers, seeded RNG streams and trap messages.  Everything cached
in a persisted :class:`FitnessResult` depends on this, so the battery
runs the three tiers against each other on every workload (toy,
ADEPT-V0/V1, SIMCoV), on every architecture, and on seeded random edit
sets that exercise divergence, partial warps, traps and degenerate
control flow.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelTrap, LaunchError
from repro.gevo import apply_edits
from repro.gevo.mutation import EditGenerator
from repro.gpu import EVALUATION_ORDER, INTERPRETER_TIERS, GpuDevice, get_arch
from repro.workloads.toy import ToyWorkloadAdapter, build_toy_kernel, toy_discovered_edits

#: Oracle first: the comparisons below treat position 0 as the reference.
TIERS = tuple(INTERPRETER_TIERS)


def profile_stats(profile):
    return {uid: (p.executions, p.cycles, p.opcode, p.location)
            for uid, p in profile.instructions.items()}


def launch_tiers(module, grid, block, args, arch, *, kernel_name=None,
                 tiers=TIERS, **device_kwargs):
    """Launch on every tier (fresh buffer copies) and return the outcomes."""
    outcomes = {}
    for tier in tiers:
        device = GpuDevice(arch, fast_path=tier, **device_kwargs)
        copies = {name: (value.copy() if isinstance(value, np.ndarray) else value)
                  for name, value in args.items()}
        try:
            result = device.launch(module, grid, block, copies, kernel_name=kernel_name)
        except (KernelTrap, LaunchError) as error:
            outcomes[tier] = ("error", type(error).__name__, str(error))
        else:
            outcomes[tier] = ("ok", result, copies)
    return outcomes


def launch_both(module, grid, block, args, arch, *, kernel_name=None, **device_kwargs):
    """Backwards-compatible pair view: (jit outcome, oracle outcome)."""
    outcomes = launch_tiers(module, grid, block, args, arch,
                            kernel_name=kernel_name, **device_kwargs)
    return outcomes["jit"], outcomes["oracle"]


def assert_equivalent_launch(module, grid, block, args, arch, *,
                             kernel_name=None, **device_kwargs):
    outcomes = launch_tiers(module, grid, block, args, arch,
                            kernel_name=kernel_name, **device_kwargs)
    reference = outcomes["oracle"]
    for tier in TIERS[1:]:
        candidate = outcomes[tier]
        assert candidate[0] == reference[0], (tier, candidate, reference)
        if reference[0] == "error":
            assert candidate[1:] == reference[1:], tier
            continue
        _, tier_result, tier_buffers = candidate
        _, ref_result, ref_buffers = reference
        assert tier_result.cycles == ref_result.cycles, tier
        assert tier_result.time_ms == ref_result.time_ms, tier
        assert tier_result.instructions_executed == ref_result.instructions_executed, tier
        assert tier_result.warps_executed == ref_result.warps_executed, tier
        assert tier_result.counters == ref_result.counters, tier
        assert profile_stats(tier_result.profile) == profile_stats(ref_result.profile), tier
    if reference[0] == "error":
        return None
    for name in reference[2]:
        if isinstance(reference[2][name], np.ndarray):
            for tier in TIERS[1:]:
                np.testing.assert_array_equal(
                    outcomes[tier][2][name], reference[2][name],
                    err_msg=f"buffer {name!r} differs on tier {tier!r}")
    return outcomes["jit"][1]


def case_tuples(result):
    return [(case.name, case.passed, case.runtime_ms, case.message)
            for case in result.cases]


def assert_equivalent_fitness(make_adapter, module=None):
    """Evaluate *module* (default: the original) on one adapter per tier.

    ``make_adapter`` takes the historical fast-path selector: ``False``
    builds the oracle adapter and a tier name pins that tier, so existing
    workload factories keep working unchanged.
    """
    adapters = {tier: make_adapter(tier if tier != "oracle" else False)
                for tier in TIERS}
    target = module if module is not None else adapters["jit"].original_module()
    results = {tier: adapter.evaluate(target)
               for tier, adapter in adapters.items()}
    reference = results["oracle"]
    for tier in TIERS[1:]:
        result = results[tier]
        assert result.valid == reference.valid, tier
        assert result.runtime_ms == reference.runtime_ms or (
            math.isinf(result.runtime_ms)
            and math.isinf(reference.runtime_ms)), tier
        assert case_tuples(result) == case_tuples(reference), tier
    return results["jit"]


# --------------------------------------------------------------------------- workloads
@pytest.mark.parametrize("arch_name", EVALUATION_ORDER)
def test_toy_workload_equivalent_on_every_arch(arch_name):
    arch = get_arch(arch_name)
    assert_equivalent_fitness(
        lambda fast: ToyWorkloadAdapter(arch.with_overrides(fast_path=fast)))


@pytest.mark.parametrize("arch_name", ["P100", "V100"])
def test_adept_v1_workload_equivalent(arch_name):
    from repro.workloads.adept import AdeptWorkloadAdapter, search_pairs

    arch = get_arch(arch_name)
    result = assert_equivalent_fitness(
        lambda fast: AdeptWorkloadAdapter(
            "v1", arch.with_overrides(fast_path=fast),
            fitness_cases=[search_pairs()]))
    assert result.valid


def test_adept_v0_workload_equivalent():
    from repro.workloads.adept import AdeptWorkloadAdapter, generate_pairs

    pairs = generate_pairs(1, reference_length=36, query_length=22, seed=5)
    result = assert_equivalent_fitness(
        lambda fast: AdeptWorkloadAdapter(
            "v0", get_arch("P100").with_overrides(fast_path=fast),
            fitness_cases=[pairs]))
    assert result.valid


def test_simcov_workload_equivalent():
    from repro.workloads.simcov import SimCovParams, SimCovWorkloadAdapter

    result = assert_equivalent_fitness(
        lambda fast: SimCovWorkloadAdapter(
            get_arch("P100").with_overrides(fast_path=fast),
            fitness_params=SimCovParams.quick()))
    assert result.valid


def test_adept_discovered_edits_equivalent():
    """The recorded GEVO edit set (divergence-heavy rewrite) stays identical."""
    from repro.workloads.adept import (
        AdeptWorkloadAdapter,
        adept_v1_discovered_edits,
        search_pairs,
    )

    def make(fast):
        return AdeptWorkloadAdapter("v1", get_arch("P100").with_overrides(fast_path=fast),
                                    fitness_cases=[search_pairs()])

    adapter = make(True)
    edits = adept_v1_discovered_edits(adapter.driver.kernel)
    variant = apply_edits(adapter.original_module(), edits).module
    assert_equivalent_fitness(make, module=variant)


# --------------------------------------------------------------------------- random edit sets
def _random_variants(seed, count, length):
    """Seeded random edit-set variants of the toy kernel (plus the module)."""
    kernel = build_toy_kernel()
    rng = random.Random(seed)
    generator = EditGenerator(kernel.module, rng)
    variants = []
    for _ in range(count):
        edits = []
        for _ in range(rng.randint(1, length)):
            edit = generator.random_edit()
            if edit is not None:
                edits.append(edit)
        variants.append(apply_edits(kernel.module, edits).module)
    return variants


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_toy_edit_sets_equivalent(seed):
    """Random mutants -- many trap or diverge -- agree bit-for-bit.

    This sweeps the ugly corners: deleted terminators (falling off a
    block), deleted bounds checks (out-of-bounds traps), moved barriers
    (divergent syncthreads), undefined registers, and partial-warp masks.
    """
    elements = 150  # not a multiple of the block size: partial final warp
    rng = np.random.default_rng(seed)
    x = rng.normal(size=elements)
    y = rng.normal(size=elements)
    arch = get_arch("P100")
    for variant in _random_variants(seed, count=8, length=4):
        out = np.zeros(elements)
        assert_equivalent_launch(
            variant, 3, 64, {"x": x, "y": y, "out": out, "n": elements},
            arch, kernel_name="saxpy_wasteful")


@settings(max_examples=15, deadline=None)
@given(subset=st.sets(st.integers(min_value=0, max_value=2)),
       elements=st.integers(min_value=1, max_value=130))
def test_discovered_edit_subsets_equivalent(subset, elements):
    """Hypothesis: every subset of the toy's discovered edits, at odd sizes."""
    kernel = build_toy_kernel()
    edits = toy_discovered_edits(kernel)
    chosen = [edits[i] for i in sorted(subset)]
    variant = apply_edits(kernel.module, chosen).module
    rng = np.random.default_rng(7)
    x = rng.normal(size=elements)
    y = rng.normal(size=elements)
    out = np.zeros(elements)
    grid = max(1, math.ceil(elements / 64))
    assert_equivalent_launch(
        variant, grid, 64, {"x": x, "y": y, "out": out, "n": elements},
        get_arch("P100"), kernel_name="saxpy_wasteful")


# --------------------------------------------------------------------------- seeded RNG streams
def test_rand_uniform_stream_equivalent():
    """Kernels drawing counter-based randomness produce identical streams."""
    from repro.ir import KernelBuilder, Param, build_module

    b = KernelBuilder("randk", params=[Param("out", "buffer"), Param("seed", "scalar")])
    b.block("entry")
    tid = b.tid_x()
    draw = b.rand_uniform(b.reg("seed"), tid, 3)
    b.store(b.reg("out"), tid, draw)
    b.ret()
    module = build_module("randm", b.build())
    out = np.zeros(32)
    result = assert_equivalent_launch(module, 1, 32, {"out": out, "seed": 11},
                                      get_arch("P100"), kernel_name="randk")
    assert result is not None


# --------------------------------------------------------------------------- traps and budgets
def test_instruction_budget_trap_equivalent():
    """Both paths trap the runaway-loop budget with the same message."""
    from repro.ir import KernelBuilder, Param, build_module

    b = KernelBuilder("spin", params=[Param("out", "buffer")])
    b.block("entry")
    with b.for_range("i", 0, 1_000_000):
        b.add(b.reg("i"), 0, dest="sink")
    b.ret()
    module = build_module("spin_m", b.build())
    out = np.zeros(32)
    outcomes = launch_tiers(module, 1, 32, {"out": out}, get_arch("P100"),
                            kernel_name="spin",
                            max_instructions_per_warp=5_000)
    assert outcomes["jit"] == outcomes["dispatch"] == outcomes["oracle"]
    assert outcomes["oracle"][0] == "error"
    assert "budget exceeded" in outcomes["oracle"][2]


def test_out_of_bounds_trap_equivalent():
    kernel = build_toy_kernel()
    rng = np.random.default_rng(0)
    x = rng.normal(size=8)  # far smaller than n: guaranteed OOB
    y = rng.normal(size=8)
    out = np.zeros(8)
    outcomes = launch_tiers(
        kernel.module, 4, 64, {"x": x, "y": y, "out": out, "n": 256},
        get_arch("P100"), kernel_name="saxpy_wasteful")
    assert outcomes["jit"] == outcomes["dispatch"] == outcomes["oracle"]
    assert outcomes["oracle"][0] == "error"
    assert "out-of-bounds" in outcomes["oracle"][2]


# --------------------------------------------------------------------------- decode-cache hygiene
def test_decode_cache_invalidated_by_edits():
    """Editing a function after a launch must invalidate its decoding."""
    kernel = build_toy_kernel()
    module = kernel.module
    arch = get_arch("P100")
    rng = np.random.default_rng(1)
    x = rng.normal(size=128)
    y = rng.normal(size=128)
    args = {"x": x, "y": y, "out": np.zeros(128), "n": 128}

    device = GpuDevice(arch, fast_path=True)
    before = device.launch(module, 2, 64, dict(args, out=np.zeros(128)),
                           kernel_name="saxpy_wasteful")
    # Mutate the already-decoded module in place through a GEVO edit.
    from repro.gevo.edits import InstructionDelete

    InstructionDelete(kernel.edit_targets["useless_barrier"]).apply(module)
    after = device.launch(module, 2, 64, dict(args, out=np.zeros(128)),
                          kernel_name="saxpy_wasteful")
    assert after.cycles < before.cycles
    # And the re-decoded program still matches the reference interpreter.
    reference = GpuDevice(arch, fast_path=False).launch(
        module, 2, 64, dict(args, out=np.zeros(128)), kernel_name="saxpy_wasteful")
    assert after.cycles == reference.cycles
    assert after.counters == reference.counters


def test_decode_cache_invalidated_by_operand_replace():
    """In-place operand edits (uid survives) must also invalidate the cache."""
    from repro.gevo.edits import OperandReplace
    from repro.ir.values import Const

    kernel = build_toy_kernel()
    module = kernel.module
    arch = get_arch("P100")
    rng = np.random.default_rng(2)
    x = rng.normal(size=64)
    y = rng.normal(size=64)

    device = GpuDevice(arch, fast_path=True)
    out_before = np.zeros(64)
    device.launch(module, 1, 64, {"x": x, "y": y, "out": out_before, "n": 64},
                  kernel_name="saxpy_wasteful")
    scaled_uid = next(inst.uid for inst in module.instructions()
                      if inst.dest == "scaled")
    OperandReplace(scaled_uid, 1, Const(5)).apply(module)
    out_after = np.zeros(64)
    device.launch(module, 1, 64, {"x": x, "y": y, "out": out_after, "n": 64},
                  kernel_name="saxpy_wasteful")
    np.testing.assert_array_equal(out_after, 5.0 * x + y)

    out_reference = np.zeros(64)
    GpuDevice(arch, fast_path=False).launch(
        module, 1, 64, {"x": x, "y": y, "out": out_reference, "n": 64},
        kernel_name="saxpy_wasteful")
    np.testing.assert_array_equal(out_after, out_reference)


def test_fast_path_default_and_opt_out():
    """fast_path defaults on via the arch and can be disabled per device."""
    arch = get_arch("P100")
    assert GpuDevice(arch).fast_path is True
    assert GpuDevice(arch, fast_path=False).fast_path is False
    assert GpuDevice(arch.with_overrides(fast_path=False)).fast_path is False
    assert GpuDevice(arch.with_overrides(fast_path=False), fast_path=True).fast_path is True


# --------------------------------------------------------------------------- tier selection
def test_interpreter_tier_selection():
    """Booleans and tier names resolve to the documented tiers."""
    arch = get_arch("P100")
    assert GpuDevice(arch).interpreter_tier == "jit"
    assert GpuDevice(arch, fast_path=True).interpreter_tier == "jit"
    assert GpuDevice(arch, fast_path=False).interpreter_tier == "oracle"
    for tier in ("oracle", "dispatch", "jit"):
        assert GpuDevice(arch, fast_path=tier).interpreter_tier == tier
        assert GpuDevice(arch.with_overrides(fast_path=tier)).interpreter_tier == tier
    assert GpuDevice(arch, fast_path="reference").interpreter_tier == "oracle"
    assert GpuDevice(arch, fast_path="dispatch").fast_path is True
    with pytest.raises(LaunchError):
        GpuDevice(arch, fast_path="turbo")


def test_jit_tier_leaves_dispatch_uncompiled():
    """The dispatch tier must measure (and run) the pure dispatch loop:
    only a jit-tier device triggers segment compilation."""
    from repro.gpu import decode_function

    kernel = build_toy_kernel()
    module = kernel.module
    arch = get_arch("P100")
    rng = np.random.default_rng(3)
    args = {"x": rng.normal(size=64), "y": rng.normal(size=64),
            "out": np.zeros(64), "n": 64}
    GpuDevice(arch, fast_path="dispatch").launch(module, 1, 64, dict(args),
                                                 kernel_name="saxpy_wasteful")
    function = module.get_function("saxpy_wasteful")
    decoded = decode_function(function, arch)
    assert not decoded.jit_ready
    GpuDevice(arch, fast_path="jit").launch(module, 1, 64, dict(args),
                                            kernel_name="saxpy_wasteful")
    assert decode_function(function, arch) is decoded
    assert decoded.jit_ready


# --------------------------------------------------------------------------- atomics with NaN/Inf
def build_atomic_kernel(opcode):
    """One atomic op per lane: unique addresses when ``addresses`` is the
    lane id, colliding when the caller passes duplicates."""
    from repro.ir import KernelBuilder, Param, build_module

    params = [Param("values", "buffer"), Param("operand", "buffer"),
              Param("addresses", "buffer"), Param("old", "buffer"),
              Param("n", "scalar")]
    if opcode == "atomic.cas":
        params.insert(3, Param("compare", "buffer"))
    b = KernelBuilder("atomick", params=params)
    b.block("entry")
    tid = b.tid_x()
    bid = b.bid_x()
    gid = b.add(b.mul(bid, b.bdim_x()), tid, dest="gid")
    # Guard so a partial final warp exercises the masked atomic path.
    with b.if_then(b.lt(b.reg("gid"), b.reg("n"))):
        address = b.load(b.reg("addresses"), b.reg("gid"))
        value = b.load(b.reg("operand"), b.reg("gid"))
        if opcode == "atomic.max":
            result = b.atomic_max(b.reg("values"), address, value)
        elif opcode == "atomic.cas":
            compare = b.load(b.reg("compare"), b.reg("gid"))
            result = b.atomic_cas(b.reg("values"), address, compare, value)
        elif opcode == "atomic.exch":
            result = b.atomic_exch(b.reg("values"), address, value)
        else:
            result = b.atomic_add(b.reg("values"), address, value)
        b.store(b.reg("old"), b.reg("gid"), result)
    b.ret()
    return build_module("atomicm", b.build())


@pytest.mark.parametrize("opcode", ["atomic.max", "atomic.cas"])
@pytest.mark.parametrize("collide", [False, True])
def test_atomic_nan_inf_equivalent(opcode, collide):
    """atomic.max / atomic.cas with NaN/Inf operands agree across all
    tiers on both the unique-address (vectorized) and colliding
    (per-lane loop) paths, under full and partial warps."""
    n = 48  # partial final warp
    rng = np.random.default_rng(11)
    values = rng.normal(size=n)
    values[::7] = np.nan
    values[3::11] = np.inf
    operand = rng.normal(size=n)
    operand[::5] = np.nan
    operand[1::9] = -np.inf
    if collide:
        addresses = rng.integers(0, 6, size=n).astype(np.float64)
    else:
        addresses = np.arange(n, dtype=np.float64)
    args = {"values": values, "operand": operand, "addresses": addresses,
            "old": np.zeros(n), "n": n}
    if opcode == "atomic.cas":
        compare = values.copy()
        compare[::3] = rng.normal(size=len(compare[::3]))  # some equal, some not
        args["compare"] = compare
    module = build_atomic_kernel(opcode)
    assert_equivalent_launch(module, 2, 32, args, get_arch("P100"),
                             kernel_name="atomick")


@pytest.mark.parametrize("opcode", ["atomic.add", "atomic.exch"])
def test_atomic_add_exch_nan_equivalent(opcode):
    """The previously vectorized atomics stay pinned with NaN/Inf too."""
    n = 32
    rng = np.random.default_rng(13)
    values = rng.normal(size=n)
    values[::6] = np.nan
    operand = rng.normal(size=n)
    operand[2::5] = np.inf
    args = {"values": values, "operand": operand,
            "addresses": np.arange(n, dtype=np.float64),
            "old": np.zeros(n), "n": n}
    module = build_atomic_kernel(opcode)
    assert_equivalent_launch(module, 1, 32, args, get_arch("P100"),
                             kernel_name="atomick")


def test_masked_shfl_with_negative_delta_equivalent():
    """A shfl whose delta register was written in the same masked segment
    must behave identically on every tier: the gather's indices are shaped
    by *every* lane of the delta operand, so the JIT has to read it merged
    (an unmerged inactive-lane delta once indexed out of warp range)."""
    from repro.ir import KernelBuilder, Param, build_module

    b = KernelBuilder("shflk", params=[Param("x", "buffer"), Param("out", "buffer"),
                                       Param("n", "scalar")])
    b.block("entry")
    tid = b.tid_x()
    with b.if_then(b.lt(tid, b.reg("n"))):
        # delta = -5 on active lanes only; inactive lanes keep the merged 0.
        b.sub(0, 5, dest="delta")
        value = b.load(b.reg("x"), b.reg("tid.x") if False else tid)
        b.shfl_up_sync(-1, value, b.reg("delta"), dest="shifted")
        b.store(b.reg("out"), tid, b.reg("shifted"))
    b.ret()
    module = build_module("shflm", b.build())
    rng = np.random.default_rng(17)
    x = rng.normal(size=32)
    args = {"x": x, "out": np.zeros(32), "n": 27}  # partial mask: lanes 27-31 off
    assert_equivalent_launch(module, 1, 32, args, get_arch("P100"),
                             kernel_name="shflk")


# --------------------------------------------------------------------------- JIT cache hygiene
def test_jit_cache_invalidated_by_edits():
    """Mutating a function invalidates its compiled segments: the re-JITted
    program matches the oracle bit-for-bit after the edit."""
    from repro.gevo.edits import InstructionDelete, OperandReplace
    from repro.gpu import decode_function
    from repro.ir.values import Const

    kernel = build_toy_kernel()
    module = kernel.module
    arch = get_arch("P100")
    rng = np.random.default_rng(5)
    x = rng.normal(size=128)
    y = rng.normal(size=128)
    args = {"x": x, "y": y, "out": np.zeros(128), "n": 128}

    device = GpuDevice(arch, fast_path="jit")
    device.launch(module, 2, 64, dict(args, out=np.zeros(128)),
                  kernel_name="saxpy_wasteful")
    function = module.get_function("saxpy_wasteful")
    before = decode_function(function, arch)
    assert before.jit_ready

    # A structural edit (delete) and an in-place operand edit (uid kept)
    # must both re-decode and re-compile.
    InstructionDelete(kernel.edit_targets["useless_barrier"]).apply(module)
    scaled_uid = next(inst.uid for inst in module.instructions()
                      if inst.dest == "scaled")
    OperandReplace(scaled_uid, 1, Const(7)).apply(module)

    out_jit = np.zeros(128)
    device.launch(module, 2, 64, dict(args, out=out_jit),
                  kernel_name="saxpy_wasteful")
    after = decode_function(function, arch)
    assert after is not before
    assert after.jit_ready
    np.testing.assert_array_equal(out_jit, 7.0 * x + y)

    # And the recompiled program still matches the other tiers exactly.
    assert_equivalent_launch(module, 2, 64, args, arch,
                             kernel_name="saxpy_wasteful")


# --------------------------------------------------------------------------- arch-aware pricing
def _build_geometry_module():
    """Shared stride-2 + scattered global addressing: prices differently
    on 16-wide/16-bank geometry (G80) than on the 32-wide default."""
    from repro.ir import KernelBuilder, Param, build_module
    from repro.ir.function import SharedDecl

    b = KernelBuilder("geomk", params=[Param("x", "buffer"), Param("out", "buffer")],
                      shared=[SharedDecl("tile", 128)])
    b.block("entry")
    tid = b.tid_x(dest="tid")
    addr = b.mul(tid, 2, dest="addr")
    b.store(b.reg("tile"), addr, b.load(b.reg("x"), tid))
    v = b.load(b.reg("tile"), addr, dest="v")
    w = b.load(b.reg("x"), b.mul(tid, 4, dest="gaddr"), dest="w")
    b.store(b.reg("out"), tid, b.add(v, w))
    b.ret()
    return build_module("geomm", b.build())


@pytest.mark.parametrize("arch_name", ["P100", "G80"])
def test_bank_conflict_kernel_equivalent(arch_name):
    """Three-way equivalence holds on the non-default G80 geometry too."""
    module = _build_geometry_module()
    rng = np.random.default_rng(7)
    x = rng.normal(size=128)
    result = assert_equivalent_launch(module, 1, 32,
                                      {"x": x, "out": np.zeros(32)},
                                      get_arch(arch_name), kernel_name="geomk")
    assert result is not None
    assert result.counters["shared_conflicts"] > 0


def test_geometry_is_observable_end_to_end():
    """The same kernel records more transactions/conflicts on G80."""
    module = _build_geometry_module()
    rng = np.random.default_rng(7)

    def evidence(arch_name):
        device = GpuDevice(get_arch(arch_name), fast_path="jit")
        result = device.launch(module, 1, 32,
                               {"x": rng.normal(size=128), "out": np.zeros(32)},
                               kernel_name="geomk")
        return (result.counters["global_transactions"],
                result.counters["shared_conflicts"])

    p100_tx, p100_cf = evidence("P100")
    g80_tx, g80_cf = evidence("G80")
    assert g80_tx > p100_tx
    assert g80_cf > p100_cf


def test_toy_workload_equivalent_on_g80():
    arch = get_arch("G80")
    assert_equivalent_fitness(
        lambda fast: ToyWorkloadAdapter(arch.with_overrides(fast_path=fast)))


# --------------------------------------------------------------------------- solo control blocks
def test_solo_control_blocks_equivalent():
    """Blocks holding only a BR/CONDBR/RET run through compiled steps.

    The divergent CONDBR exercises both the full- and masked-mask compiled
    variants; the empty join block pins the compiled solo-RET's pc
    semantics against the plain dispatch path.
    """
    from repro.ir import KernelBuilder, Param, build_module

    b = KernelBuilder("ctlk", params=[Param("out", "buffer")])
    b.block("entry")
    tid = b.tid_x(dest="tid")
    b.eq(b.rem(tid, 2), 1, dest="odd")
    b.branch("decide")
    b.block("decide")           # solo CONDBR, divergent on odd lanes
    b.cbranch(b.reg("odd"), "left", "right")
    b.block("left")
    b.store(b.reg("out"), b.reg("tid"), 1.0)
    b.branch("mid")
    b.block("mid")              # solo BR
    b.branch("join")
    b.block("right")
    b.store(b.reg("out"), b.reg("tid"), 2.0)
    b.branch("join")
    b.block("join")             # solo RET
    b.ret()
    module = build_module("ctlm", b.build())
    for arch_name in ("P100", "G80"):
        result = assert_equivalent_launch(module, 2, 64, {"out": np.zeros(128)},
                                          get_arch(arch_name), kernel_name="ctlk")
        assert result is not None


def test_load_cost_override_equivalent():
    """A cost-overridden load is priced statically exactly once.

    Pins the JIT fix: the compiled path used to charge the override in its
    static prelude *and* run the dynamic pricing, double-charging relative
    to the dispatch/oracle tiers.
    """
    arch = get_arch("P100").with_overrides(cost_overrides={"load": 7})
    kernel = build_toy_kernel()
    rng = np.random.default_rng(9)
    x = rng.normal(size=256)
    y = rng.normal(size=256)
    result = assert_equivalent_launch(
        kernel.module, 4, 64, {"x": x, "y": y, "out": np.zeros(256), "n": 256},
        arch, kernel_name="saxpy_wasteful")
    assert result is not None
    assert result.counters["override_cycles"] > 0
