"""Differential battery: decoded fast path vs. the reference interpreter.

The decode-once dispatch-table path (:mod:`repro.gpu.decoded`) must be
**bit-for-bit** equivalent to the tree-walking reference interpreter:
identical cycle counts, cost-model counters, per-uid profiler statistics,
output buffers, seeded RNG streams and trap messages.  Everything cached
in a persisted :class:`FitnessResult` depends on this, so the battery
runs both paths against each other on every workload (toy, ADEPT-V0/V1,
SIMCoV), on every architecture, and on seeded random edit sets that
exercise divergence, partial warps, traps and degenerate control flow.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelTrap, LaunchError
from repro.gevo import apply_edits
from repro.gevo.mutation import EditGenerator
from repro.gpu import EVALUATION_ORDER, GpuDevice, get_arch
from repro.workloads.toy import ToyWorkloadAdapter, build_toy_kernel, toy_discovered_edits


def profile_stats(profile):
    return {uid: (p.executions, p.cycles, p.opcode, p.location)
            for uid, p in profile.instructions.items()}


def launch_both(module, grid, block, args, arch, *, kernel_name=None, **device_kwargs):
    """Launch on both paths (fresh buffer copies) and return the outcomes."""
    outcomes = []
    for fast in (True, False):
        device = GpuDevice(arch, fast_path=fast, **device_kwargs)
        copies = {name: (value.copy() if isinstance(value, np.ndarray) else value)
                  for name, value in args.items()}
        try:
            result = device.launch(module, grid, block, copies, kernel_name=kernel_name)
        except (KernelTrap, LaunchError) as error:
            outcomes.append(("error", type(error).__name__, str(error)))
        else:
            outcomes.append(("ok", result, copies))
    return outcomes


def assert_equivalent_launch(module, grid, block, args, arch, *,
                             kernel_name=None, **device_kwargs):
    fast, reference = launch_both(module, grid, block, args, arch,
                                  kernel_name=kernel_name, **device_kwargs)
    assert fast[0] == reference[0], (fast, reference)
    if fast[0] == "error":
        assert fast[1:] == reference[1:]
        return None
    _, fast_result, fast_buffers = fast
    _, ref_result, ref_buffers = reference
    assert fast_result.cycles == ref_result.cycles
    assert fast_result.time_ms == ref_result.time_ms
    assert fast_result.instructions_executed == ref_result.instructions_executed
    assert fast_result.warps_executed == ref_result.warps_executed
    assert fast_result.counters == ref_result.counters
    assert profile_stats(fast_result.profile) == profile_stats(ref_result.profile)
    for name in fast_buffers:
        if isinstance(fast_buffers[name], np.ndarray):
            np.testing.assert_array_equal(fast_buffers[name], ref_buffers[name],
                                          err_msg=f"buffer {name!r} differs")
    return fast_result


def case_tuples(result):
    return [(case.name, case.passed, case.runtime_ms, case.message)
            for case in result.cases]


def assert_equivalent_fitness(make_adapter, module=None):
    """Evaluate *module* (default: the original) on fast and reference adapters."""
    fast_adapter = make_adapter(True)
    ref_adapter = make_adapter(False)
    target = module if module is not None else fast_adapter.original_module()
    fast = fast_adapter.evaluate(target)
    reference = ref_adapter.evaluate(target)
    assert fast.valid == reference.valid
    assert fast.runtime_ms == reference.runtime_ms or (
        math.isinf(fast.runtime_ms) and math.isinf(reference.runtime_ms))
    assert case_tuples(fast) == case_tuples(reference)
    return fast


# --------------------------------------------------------------------------- workloads
@pytest.mark.parametrize("arch_name", EVALUATION_ORDER)
def test_toy_workload_equivalent_on_every_arch(arch_name):
    arch = get_arch(arch_name)
    assert_equivalent_fitness(
        lambda fast: ToyWorkloadAdapter(arch.with_overrides(fast_path=fast)))


@pytest.mark.parametrize("arch_name", ["P100", "V100"])
def test_adept_v1_workload_equivalent(arch_name):
    from repro.workloads.adept import AdeptWorkloadAdapter, search_pairs

    arch = get_arch(arch_name)
    result = assert_equivalent_fitness(
        lambda fast: AdeptWorkloadAdapter(
            "v1", arch.with_overrides(fast_path=fast),
            fitness_cases=[search_pairs()]))
    assert result.valid


def test_adept_v0_workload_equivalent():
    from repro.workloads.adept import AdeptWorkloadAdapter, generate_pairs

    pairs = generate_pairs(1, reference_length=36, query_length=22, seed=5)
    result = assert_equivalent_fitness(
        lambda fast: AdeptWorkloadAdapter(
            "v0", get_arch("P100").with_overrides(fast_path=fast),
            fitness_cases=[pairs]))
    assert result.valid


def test_simcov_workload_equivalent():
    from repro.workloads.simcov import SimCovParams, SimCovWorkloadAdapter

    result = assert_equivalent_fitness(
        lambda fast: SimCovWorkloadAdapter(
            get_arch("P100").with_overrides(fast_path=fast),
            fitness_params=SimCovParams.quick()))
    assert result.valid


def test_adept_discovered_edits_equivalent():
    """The recorded GEVO edit set (divergence-heavy rewrite) stays identical."""
    from repro.workloads.adept import (
        AdeptWorkloadAdapter,
        adept_v1_discovered_edits,
        search_pairs,
    )

    def make(fast):
        return AdeptWorkloadAdapter("v1", get_arch("P100").with_overrides(fast_path=fast),
                                    fitness_cases=[search_pairs()])

    adapter = make(True)
    edits = adept_v1_discovered_edits(adapter.driver.kernel)
    variant = apply_edits(adapter.original_module(), edits).module
    assert_equivalent_fitness(make, module=variant)


# --------------------------------------------------------------------------- random edit sets
def _random_variants(seed, count, length):
    """Seeded random edit-set variants of the toy kernel (plus the module)."""
    kernel = build_toy_kernel()
    rng = random.Random(seed)
    generator = EditGenerator(kernel.module, rng)
    variants = []
    for _ in range(count):
        edits = []
        for _ in range(rng.randint(1, length)):
            edit = generator.random_edit()
            if edit is not None:
                edits.append(edit)
        variants.append(apply_edits(kernel.module, edits).module)
    return variants


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_toy_edit_sets_equivalent(seed):
    """Random mutants -- many trap or diverge -- agree bit-for-bit.

    This sweeps the ugly corners: deleted terminators (falling off a
    block), deleted bounds checks (out-of-bounds traps), moved barriers
    (divergent syncthreads), undefined registers, and partial-warp masks.
    """
    elements = 150  # not a multiple of the block size: partial final warp
    rng = np.random.default_rng(seed)
    x = rng.normal(size=elements)
    y = rng.normal(size=elements)
    arch = get_arch("P100")
    for variant in _random_variants(seed, count=8, length=4):
        out = np.zeros(elements)
        assert_equivalent_launch(
            variant, 3, 64, {"x": x, "y": y, "out": out, "n": elements},
            arch, kernel_name="saxpy_wasteful")


@settings(max_examples=15, deadline=None)
@given(subset=st.sets(st.integers(min_value=0, max_value=2)),
       elements=st.integers(min_value=1, max_value=130))
def test_discovered_edit_subsets_equivalent(subset, elements):
    """Hypothesis: every subset of the toy's discovered edits, at odd sizes."""
    kernel = build_toy_kernel()
    edits = toy_discovered_edits(kernel)
    chosen = [edits[i] for i in sorted(subset)]
    variant = apply_edits(kernel.module, chosen).module
    rng = np.random.default_rng(7)
    x = rng.normal(size=elements)
    y = rng.normal(size=elements)
    out = np.zeros(elements)
    grid = max(1, math.ceil(elements / 64))
    assert_equivalent_launch(
        variant, grid, 64, {"x": x, "y": y, "out": out, "n": elements},
        get_arch("P100"), kernel_name="saxpy_wasteful")


# --------------------------------------------------------------------------- seeded RNG streams
def test_rand_uniform_stream_equivalent():
    """Kernels drawing counter-based randomness produce identical streams."""
    from repro.ir import KernelBuilder, Param, build_module

    b = KernelBuilder("randk", params=[Param("out", "buffer"), Param("seed", "scalar")])
    b.block("entry")
    tid = b.tid_x()
    draw = b.rand_uniform(b.reg("seed"), tid, 3)
    b.store(b.reg("out"), tid, draw)
    b.ret()
    module = build_module("randm", b.build())
    out = np.zeros(32)
    result = assert_equivalent_launch(module, 1, 32, {"out": out, "seed": 11},
                                      get_arch("P100"), kernel_name="randk")
    assert result is not None


# --------------------------------------------------------------------------- traps and budgets
def test_instruction_budget_trap_equivalent():
    """Both paths trap the runaway-loop budget with the same message."""
    from repro.ir import KernelBuilder, Param, build_module

    b = KernelBuilder("spin", params=[Param("out", "buffer")])
    b.block("entry")
    with b.for_range("i", 0, 1_000_000):
        b.add(b.reg("i"), 0, dest="sink")
    b.ret()
    module = build_module("spin_m", b.build())
    out = np.zeros(32)
    fast, reference = launch_both(module, 1, 32, {"out": out}, get_arch("P100"),
                                  kernel_name="spin",
                                  max_instructions_per_warp=5_000)
    assert fast == reference
    assert fast[0] == "error" and "budget exceeded" in fast[2]


def test_out_of_bounds_trap_equivalent():
    kernel = build_toy_kernel()
    rng = np.random.default_rng(0)
    x = rng.normal(size=8)  # far smaller than n: guaranteed OOB
    y = rng.normal(size=8)
    out = np.zeros(8)
    fast, reference = launch_both(
        kernel.module, 4, 64, {"x": x, "y": y, "out": out, "n": 256},
        get_arch("P100"), kernel_name="saxpy_wasteful")
    assert fast == reference
    assert fast[0] == "error" and "out-of-bounds" in fast[2]


# --------------------------------------------------------------------------- decode-cache hygiene
def test_decode_cache_invalidated_by_edits():
    """Editing a function after a launch must invalidate its decoding."""
    kernel = build_toy_kernel()
    module = kernel.module
    arch = get_arch("P100")
    rng = np.random.default_rng(1)
    x = rng.normal(size=128)
    y = rng.normal(size=128)
    args = {"x": x, "y": y, "out": np.zeros(128), "n": 128}

    device = GpuDevice(arch, fast_path=True)
    before = device.launch(module, 2, 64, dict(args, out=np.zeros(128)),
                           kernel_name="saxpy_wasteful")
    # Mutate the already-decoded module in place through a GEVO edit.
    from repro.gevo.edits import InstructionDelete

    InstructionDelete(kernel.edit_targets["useless_barrier"]).apply(module)
    after = device.launch(module, 2, 64, dict(args, out=np.zeros(128)),
                          kernel_name="saxpy_wasteful")
    assert after.cycles < before.cycles
    # And the re-decoded program still matches the reference interpreter.
    reference = GpuDevice(arch, fast_path=False).launch(
        module, 2, 64, dict(args, out=np.zeros(128)), kernel_name="saxpy_wasteful")
    assert after.cycles == reference.cycles
    assert after.counters == reference.counters


def test_decode_cache_invalidated_by_operand_replace():
    """In-place operand edits (uid survives) must also invalidate the cache."""
    from repro.gevo.edits import OperandReplace
    from repro.ir.values import Const

    kernel = build_toy_kernel()
    module = kernel.module
    arch = get_arch("P100")
    rng = np.random.default_rng(2)
    x = rng.normal(size=64)
    y = rng.normal(size=64)

    device = GpuDevice(arch, fast_path=True)
    out_before = np.zeros(64)
    device.launch(module, 1, 64, {"x": x, "y": y, "out": out_before, "n": 64},
                  kernel_name="saxpy_wasteful")
    scaled_uid = next(inst.uid for inst in module.instructions()
                      if inst.dest == "scaled")
    OperandReplace(scaled_uid, 1, Const(5)).apply(module)
    out_after = np.zeros(64)
    device.launch(module, 1, 64, {"x": x, "y": y, "out": out_after, "n": 64},
                  kernel_name="saxpy_wasteful")
    np.testing.assert_array_equal(out_after, 5.0 * x + y)

    out_reference = np.zeros(64)
    GpuDevice(arch, fast_path=False).launch(
        module, 1, 64, {"x": x, "y": y, "out": out_reference, "n": 64},
        kernel_name="saxpy_wasteful")
    np.testing.assert_array_equal(out_after, out_reference)


def test_fast_path_default_and_opt_out():
    """fast_path defaults on via the arch and can be disabled per device."""
    arch = get_arch("P100")
    assert GpuDevice(arch).fast_path is True
    assert GpuDevice(arch, fast_path=False).fast_path is False
    assert GpuDevice(arch.with_overrides(fast_path=False)).fast_path is False
    assert GpuDevice(arch.with_overrides(fast_path=False), fast_path=True).fast_path is True
