#!/usr/bin/env python3
"""Fail when the JIT hot-loop speedup regresses run-over-run.

Reads the ``BENCH_simulator.json`` trajectory that
``benchmarks/test_simulator_microbench.py`` appends to (CI restores the
previous run's file from the actions cache before the gate runs, so the
trajectory spans runs), picks the last two ``"gate": "jit"`` entries and
exits non-zero when the newest hot-loop speedup dropped by more than the
threshold relative to the previous one.

Intended for a *non-blocking* CI job: a regression reports loudly on the
run without gating merges (wall-clock measurements on shared runners are
too noisy to block on), while the absolute floors inside the pytest gate
still protect the headline numbers.

Usage::

    python tools/check_perf_regression.py [BENCH_simulator.json]
        [--threshold 0.2] [--gate jit] [--metric hot_loop]
        [--check GATE:METRIC ...]

``--check`` compares several gate/metric pairs in one invocation (e.g.
``--check jit:hot_loop --check memory_pricing:mem_loop``); the exit code
is non-zero when *any* pair regressed.  A missing file, an empty
document, or a trajectory without ``runs`` is never an error -- there is
simply nothing to compare yet.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_runs(path: Path) -> list:
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError:
        return []
    except (ValueError, OSError) as error:
        print(f"warning: could not read {path}: {error}")
        return []
    runs = document.get("runs") if isinstance(document, dict) else None
    return runs if isinstance(runs, list) else []


def speedups(runs: list, gate: str, metric: str) -> list:
    values = []
    for run in runs:
        if not isinstance(run, dict) or run.get("gate") != gate:
            continue
        section = run.get(metric)
        if isinstance(section, dict) and isinstance(
                section.get("speedup"), (int, float)):
            # Newer entries carry the telemetry run id that ties a
            # measurement to its trace; older ones predate it.
            stamp = run.get("timestamp", "?")
            if run.get("run_id"):
                stamp = f"{stamp} run {run['run_id']}"
            values.append((stamp, float(section["speedup"])))
    return values


def check_pair(runs: list, gate: str, metric: str, threshold: float) -> int:
    """Compare the last two entries of one gate/metric pair; 0 = fine."""
    values = speedups(runs, gate, metric)
    if len(values) < 2:
        print(f"{len(values)} {gate!r} run(s) in trajectory; "
              "nothing to compare yet")
        return 0
    (previous_stamp, previous), (latest_stamp, latest) = values[-2], values[-1]
    drop = (previous - latest) / previous if previous > 0 else 0.0
    print(f"{gate} {metric} speedup: "
          f"{previous:.2f}x ({previous_stamp}) -> {latest:.2f}x ({latest_stamp}) "
          f"[{-drop:+.1%}]")
    if drop > threshold:
        print(f"REGRESSION: {gate} {metric} speedup dropped {drop:.1%} "
              f"(> {threshold:.0%} threshold)")
        return 1
    print("within threshold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run-over-run perf regression check for the simulator "
                    "benchmark trajectory")
    parser.add_argument("trajectory", nargs="?", default="BENCH_simulator.json",
                        help="path to BENCH_simulator.json (default: ./)")
    parser.add_argument("--threshold", type=float, default=0.2, metavar="FRAC",
                        help="maximum tolerated fractional drop between the "
                             "last two runs (default: 0.2 = 20%%)")
    parser.add_argument("--gate", default="jit",
                        help="which gate's entries to compare (default: jit)")
    parser.add_argument("--metric", default="hot_loop",
                        help="which section's speedup to compare "
                             "(default: hot_loop)")
    parser.add_argument("--check", action="append", default=None,
                        metavar="GATE:METRIC",
                        help="compare this gate/metric pair; repeatable, "
                             "overrides --gate/--metric; non-zero exit when "
                             "any pair regressed")
    arguments = parser.parse_args(argv)

    pairs = []
    for item in arguments.check or []:
        gate, separator, metric = item.partition(":")
        if not separator or not gate or not metric:
            parser.error(f"--check expects GATE:METRIC, got {item!r}")
        pairs.append((gate, metric))
    if not pairs:
        pairs = [(arguments.gate, arguments.metric)]

    runs = load_runs(Path(arguments.trajectory))
    status = 0
    for gate, metric in pairs:
        status |= check_pair(runs, gate, metric, arguments.threshold)
    return status


if __name__ == "__main__":
    sys.exit(main())
