#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans every ``*.md`` file in the repository (skipping dot-directories
and virtualenv-ish folders) for inline links and verifies that each
**relative** target exists on disk.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are ignored;
``path#anchor`` targets are checked for the path only.

Used by the CI docs job and, importably, by
``tests/test_docs_links.py`` so broken links fail tier-1 locally too.

Usage::

    python tools/check_markdown_links.py [ROOT]
"""

from __future__ import annotations

import os
import re
import sys
from typing import List, Tuple

#: Inline markdown links: [text](target).  Reference-style links are rare
#: in this repo and intentionally out of scope.
LINK_PATTERN = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIPPED_DIRS = {".git", ".venv", "venv", "node_modules", "__pycache__",
                ".pytest_cache", ".hypothesis"}


def markdown_files(root: str) -> List[str]:
    found = []
    for directory, subdirs, files in os.walk(root):
        subdirs[:] = [name for name in subdirs
                      if name not in SKIPPED_DIRS and not name.startswith(".")]
        for name in files:
            if name.lower().endswith(".md"):
                found.append(os.path.join(directory, name))
    return sorted(found)


def check_file(path: str) -> List[Tuple[str, str]]:
    """Broken (target, reason) pairs for one markdown file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    broken = []
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), file_part))
        if not os.path.exists(resolved):
            broken.append((target, f"{resolved} does not exist"))
    return broken


def check_tree(root: str) -> List[str]:
    """Human-readable problem lines for every markdown file under *root*."""
    problems = []
    for path in markdown_files(root):
        for target, reason in check_file(path):
            problems.append(f"{os.path.relpath(path, root)}: broken link "
                            f"({target}): {reason}")
    return problems


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else "."
    files = markdown_files(root)
    problems = check_tree(root)
    for line in problems:
        print(line, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not problems else f'{len(problems)} broken links'}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
