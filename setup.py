"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so the
package can be installed in fully offline environments where the ``wheel``
package (needed for PEP 517 editable installs) is unavailable::

    python setup.py develop   # offline equivalent of `pip install -e .`
"""

from setuptools import setup

setup()
