"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through
:mod:`repro.experiments` and prints the resulting table, so running::

    pytest benchmarks/ -m slow -s

reproduces the full evaluation section (at the scaled sizes documented in
EXPERIMENTS.md; the experiment regenerations carry the ``slow`` marker,
which the tier-1 default in ``pytest.ini`` deselects).  Heavy experiments
run exactly once per benchmark (``rounds=1``); the micro-benchmarks of
the simulator itself use normal pytest-benchmark statistics and stay in
tier-1, including the fast-path regression gate.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run *function* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def report():
    """Print an ExperimentResult table after the benchmark (visible with -s)."""

    def _print(result):
        print()
        print(result.to_table())
        return result

    return _print
