"""Benchmark: Section V-A (Algorithm 1 weak-edit minimization on ADEPT-V1)."""

import pytest

from repro.analysis import identify_weak_edits
from repro.gevo import OperandReplace
from repro.gpu import get_arch
from repro.ir import Const
from repro.workloads.adept import AdeptWorkloadAdapter, adept_v1_discovered_edits, search_pairs

from .conftest import run_once

pytestmark = pytest.mark.slow  # full experiment regeneration; excluded from tier-1


def _run_minimization():
    adapter = AdeptWorkloadAdapter("v1", get_arch("P100"), fitness_cases=[search_pairs()])
    edits = adept_v1_discovered_edits(adapter.kernel)
    # Pad the edit list with neutral (weak) edits, standing in for the paper's
    # ~1400-edit genomes whose bulk has no performance effect.
    module = adapter.original_module()
    weak = []
    for inst in module.instructions():
        if inst.opcode == "mov" and inst.operands and inst.operands[0] == Const(0):
            weak.append(OperandReplace(inst.uid, 0, Const(0)))
        if len(weak) >= 4:
            break
    return adapter, identify_weak_edits(adapter, edits + weak)


def test_algorithm1_minimization(benchmark, report=None):
    adapter, result = run_once(benchmark, _run_minimization)
    print()
    print(f"Algorithm 1 on {adapter.name}: {result.summary()}")
    # The weak padding edits are removed, the significant ones survive.
    assert len(result.weak) >= 4
    assert len(result.significant) >= 4
    # Paper: minimization costs well under a percentage point of improvement.
    assert result.improvement_lost < 0.03
    assert result.minimized_improvement > 0.15
