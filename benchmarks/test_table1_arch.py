"""Benchmark: regenerate Table I (GPU architectural characteristics)."""

from repro.experiments import run_table1

from .conftest import run_once


def test_table1_architecture_table(benchmark, report):
    result = run_once(benchmark, run_table1)
    report(result)
    assert [row["GPU"] for row in result.rows] == ["P100", "1080Ti", "V100"]
    assert result.rows[2]["Architecture Family"] == "Volta"
