"""Benchmark: Section VI-B (ballot_sync removal is Volta-specific)."""

import pytest

from repro.experiments import run_ballot_sync

from .conftest import run_once

pytestmark = pytest.mark.slow  # full experiment regeneration; excluded from tier-1


def test_ballot_sync_removal_per_gpu(benchmark, report):
    result = run_once(benchmark, run_ballot_sync)
    report(result)
    rows = {row["gpu"]: row for row in result.rows}
    assert rows["V100"]["independent_thread_scheduling"]
    assert not rows["P100"]["independent_thread_scheduling"]
    # Paper: ~4% on the V100, no improvement on the P100.
    assert rows["V100"]["improvement"] > 0.02
    assert rows["P100"]["improvement"] < 0.03
    assert rows["V100"]["improvement"] > rows["P100"]["improvement"]
    assert all(row["still_validates"] for row in result.rows)
