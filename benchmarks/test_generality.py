"""Benchmark: Section IV generality (cross-GPU portability of discovered edits)."""

import pytest

from repro.experiments import run_generality

from .conftest import run_once

pytestmark = pytest.mark.slow  # full experiment regeneration; excluded from tier-1


def test_cross_gpu_portability(benchmark, report):
    result = run_once(benchmark, run_generality)
    report(result)
    per_gpu = {row["gpu"]: row for row in result.rows if " vs " not in str(row["gpu"])}
    assert set(per_gpu) == {"P100", "1080Ti", "V100"}
    for row in per_gpu.values():
        assert row["adept_v1_valid"] and row["simcov_valid"]
        assert row["adept_v1_speedup"] > 1.1
        assert row["simcov_speedup"] > 1.1
    # Relative retention rows: the P100-discovered edits keep most of the gain
    # elsewhere (paper: ~99% for ADEPT-V0 / SIMCoV).
    relative = [row for row in result.rows if " vs " in str(row["gpu"])]
    for row in relative:
        assert row["simcov_speedup"] > 0.85
