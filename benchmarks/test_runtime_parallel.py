"""Microbenchmark: serial vs. process-pool vs. async population evaluation.

Evaluates one GA-generation-sized batch of distinct toy-kernel variants
through the :class:`~repro.runtime.engine.EvaluationEngine`, once per
executor backend: :class:`SerialExecutor`, :class:`ParallelExecutor`
(pool started -- and the adapter shipped to the workers -- outside the
timed region, matching a long search where the startup cost amortises
over hundreds of generations) and the in-process
:class:`~repro.runtime.executors.AsyncExecutor`, whose pitch is paying
no pickling/IPC tax at all.  Run with ``-s`` to see the comparison; the
parity of the result sets is asserted either way.

No speedup is *asserted*: the expected ratios are entirely
hardware-dependent (on a single-core CI container the strategies tie,
with the pool paying a small IPC tax; on an N-core workstation the
parallel row approaches N-fold, while the async row is bounded by how
often the numpy kernels release the GIL).
"""

from __future__ import annotations

import pytest

from repro.gevo.edits import InstructionDelete
from repro.runtime import AsyncExecutor, EvaluationEngine, FitnessCache, ParallelExecutor
from repro.workloads import ToyWorkloadAdapter

#: One scaled GA generation's worth of variants.
POPULATION = 24
JOBS = 4


def _population_edit_sets(adapter):
    """Distinct single-delete variants (padded with multi-delete combos)."""
    deletable = [inst.uid for inst in adapter.kernel.module.instructions()
                 if not inst.info.pinned]
    sets = [[InstructionDelete(uid)] for uid in deletable]
    for first in deletable:
        for second in deletable:
            if len(sets) >= POPULATION:
                return sets[:POPULATION]
            if first < second:
                sets.append([InstructionDelete(first), InstructionDelete(second)])
    return sets[:POPULATION]


@pytest.fixture(scope="module")
def adapter():
    # Large enough that one evaluation costs ~tens of milliseconds --
    # below that, process-pool IPC dominates and parallel loses.
    return ToyWorkloadAdapter(elements=16384)


@pytest.fixture(scope="module")
def edit_sets(adapter):
    return _population_edit_sets(adapter)


@pytest.fixture(scope="module")
def expected(adapter, edit_sets):
    """Reference results (computed once, outside any timed region)."""
    return EvaluationEngine(adapter).evaluate_many(edit_sets)


def _check(results, expected):
    assert [(r.valid, r.runtime_ms) for r in results] == \
           [(r.valid, r.runtime_ms) for r in expected]


def test_population_evaluation_serial(benchmark, adapter, edit_sets, expected):
    def evaluate():
        # Fresh cache each round so every variant is actually simulated.
        engine = EvaluationEngine(adapter, cache=FitnessCache())
        return engine.evaluate_many(edit_sets)

    results = benchmark.pedantic(evaluate, rounds=3, iterations=1)
    _check(results, expected)


def test_population_evaluation_async(benchmark, adapter, edit_sets, expected):
    executor = AsyncExecutor(JOBS)

    def evaluate():
        engine = EvaluationEngine(adapter, executor=executor,
                                  cache=FitnessCache())
        return engine.evaluate_many(edit_sets)

    results = benchmark.pedantic(evaluate, rounds=3, iterations=1)
    _check(results, expected)


def test_population_evaluation_parallel(benchmark, adapter, edit_sets, expected):
    executor = ParallelExecutor(JOBS)
    try:
        # Warm-up outside the timed region: fork the pool, ship the adapter.
        executor.run_batch(adapter, adapter.original_module(), edit_sets[:JOBS])

        def evaluate():
            engine = EvaluationEngine(adapter, executor=executor,
                                      cache=FitnessCache())
            return engine.evaluate_many(edit_sets)

        results = benchmark.pedantic(evaluate, rounds=3, iterations=1)
        _check(results, expected)
    finally:
        executor.close()
