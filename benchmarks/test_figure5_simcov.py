"""Benchmark: regenerate Figure 5 (SIMCoV speedups on three GPU generations)."""

import pytest

from repro.experiments import run_figure5

from .conftest import run_once

pytestmark = pytest.mark.slow  # full experiment regeneration; excluded from tier-1


def test_figure5_simcov_speedups(benchmark, report):
    result = run_once(benchmark, run_figure5)
    report(result)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["baseline_valid"] and row["gevo_valid"]
        # Paper: 1.16x - 1.43x depending on the GPU.
        assert 1.1 < row["speedup"] < 1.6
