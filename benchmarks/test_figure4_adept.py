"""Benchmark: regenerate Figure 4 (ADEPT speedups on three GPU generations).

Paper shape being checked: the GEVO-optimized ADEPT-V0 reaches within the
same order of magnitude as the hand-tuned ADEPT-V1 (tens of times faster
than the naive V0), and GEVO still finds a further ~1.2-1.3x on top of the
hand-tuned V1.
"""

import pytest

from repro.experiments import run_figure4

from .conftest import run_once

pytestmark = pytest.mark.slow  # full experiment regeneration; excluded from tier-1


def test_figure4_adept_speedups(benchmark, report):
    result = run_once(benchmark, run_figure4)
    report(result)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["all_valid"]
        # V0 + GEVO edits: an order-of-magnitude class improvement (paper ~18-33x).
        assert row["speedup_v0_gevo"] > 10
        # The optimized V0 lands in the same ballpark as the hand-tuned V1.
        assert 0.5 < row["speedup_v0_gevo"] / row["speedup_v1"] < 2.5
        # GEVO on the hand-tuned V1: paper reports 1.17-1.31x.
        assert 1.1 < row["v1_gevo_over_v1"] < 1.5
