"""Micro-benchmarks of the simulated GPU itself (wall-clock of the simulator).

These are conventional pytest-benchmark measurements (multiple rounds) of
the reproduction's own substrate, useful when tuning the interpreter.
"""

import numpy as np
import pytest

from repro.gpu import GpuDevice, get_arch
from repro.workloads import ToyWorkloadAdapter
from repro.workloads.adept import AdeptDriver, generate_pairs
from repro.workloads.simcov import SimCovDriver, SimCovParams


@pytest.fixture(scope="module")
def device():
    return GpuDevice(get_arch("P100"))


def test_toy_kernel_launch_wallclock(benchmark):
    adapter = ToyWorkloadAdapter(elements=256)
    module = adapter.original_module()

    def launch():
        return adapter.evaluate(module).runtime_ms

    runtime = benchmark(launch)
    assert runtime > 0


def test_adept_v1_alignment_wallclock(benchmark, device):
    pairs = generate_pairs(2, reference_length=48, query_length=30, seed=3)
    driver = AdeptDriver.for_version("v1", pairs, device)

    def align():
        return driver.run(pairs).kernel_time_ms

    runtime = benchmark.pedantic(align, rounds=3, iterations=1)
    assert runtime > 0


def test_simcov_step_wallclock(benchmark):
    driver = SimCovDriver(arch=get_arch("P100"))
    params = SimCovParams.quick()

    def simulate():
        return driver.run(params).kernel_time_ms

    runtime = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert runtime > 0
