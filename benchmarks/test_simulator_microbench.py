"""Micro-benchmarks of the simulated GPU itself (wall-clock of the simulator).

Two families live here:

* conventional pytest-benchmark measurements of each workload's simulator
  wall-clock, useful when tuning the interpreter;
* the **fast-path regression gate**: timed comparisons of the decode-once
  dispatch-table interpreter against the tree-walking reference on the
  simulator hot loop, asserting a minimum speedup and appending every
  measurement to ``BENCH_simulator.json`` so the trajectory of the
  simulator's own performance accumulates across runs (CI restores the
  previous trajectory with actions/cache before the gate and uploads the
  grown file as an artifact).
"""

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gpu import GpuDevice, get_arch
from repro.ir import KernelBuilder, Param, build_module
from repro.workloads import ToyWorkloadAdapter
from repro.workloads.adept import AdeptDriver, generate_pairs
from repro.workloads.simcov import SimCovDriver, SimCovParams

#: Appended to on every gate run: one JSON document holding a list of runs.
BENCH_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"

#: Required fast-path speedup over the reference interpreter on the
#: straight-line hot loop (measured ~4-5x; 2.0 leaves headroom for CI noise).
HOT_LOOP_MIN_SPEEDUP = 2.0

#: Softer floor for the divergence/memory-heavy end-to-end workloads, where
#: genuine model work (coalescing analysis, masked merges) bounds the gain.
WORKLOAD_MIN_SPEEDUP = 1.15


@pytest.fixture(scope="module")
def device():
    return GpuDevice(get_arch("P100"))


# --------------------------------------------------------------------------- wall-clock benchmarks
def test_toy_kernel_launch_wallclock(benchmark):
    adapter = ToyWorkloadAdapter(elements=256)
    module = adapter.original_module()

    def launch():
        return adapter.evaluate(module).runtime_ms

    runtime = benchmark(launch)
    assert runtime > 0


def test_adept_v1_alignment_wallclock(benchmark, device):
    pairs = generate_pairs(2, reference_length=48, query_length=30, seed=3)
    driver = AdeptDriver.for_version("v1", pairs, device)

    def align():
        return driver.run(pairs).kernel_time_ms

    runtime = benchmark.pedantic(align, rounds=3, iterations=1)
    assert runtime > 0


def test_simcov_step_wallclock(benchmark):
    driver = SimCovDriver(arch=get_arch("P100"))
    params = SimCovParams.quick()

    def simulate():
        return driver.run(params).kernel_time_ms

    runtime = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert runtime > 0


# --------------------------------------------------------------------------- fast-path gate
def build_hot_loop_module():
    """A uniform, straight-line-heavy kernel: the interpreter's hot loop.

    Full warps, no divergence, long arithmetic segments inside a counted
    loop -- the shape fitness evaluation spends its cycles on, and the
    case the decode-once batching is designed for.
    """
    b = KernelBuilder("hotloop", params=[Param("x", "buffer"), Param("out", "buffer"),
                                         Param("n", "scalar")])
    b.block("entry")
    tid = b.tid_x()
    bid = b.bid_x()
    bdim = b.bdim_x()
    gid = b.add(b.mul(bid, bdim), tid, dest="gid")
    b.mov(b.load(b.reg("x"), gid), dest="acc")
    with b.for_range("i", 0, b.reg("n")):
        for _ in range(24):
            b.mul(b.reg("acc"), 1.0000001, dest="t")
            b.add(b.reg("t"), 0.5, dest="acc")
    b.store(b.reg("out"), b.reg("gid"), b.reg("acc"))
    b.ret()
    return build_module("hot", b.build())


def best_of(fn, repeat=5):
    """Minimum wall-clock of *repeat* runs (discards scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_speedup(run_with_device, arch_name="P100", repeat=5):
    """(fast_s, reference_s, fast LaunchResult-like, ref ditto) for one scenario.

    ``run_with_device(device)`` must run the scenario on the given device
    and return something with ``cycles``-comparable content (or None).
    """
    arch = get_arch(arch_name)
    fast_device = GpuDevice(arch, fast_path=True)
    reference_device = GpuDevice(arch, fast_path=False)
    fast_result = run_with_device(fast_device)       # warm-up + decode
    reference_result = run_with_device(reference_device)
    fast_s = best_of(lambda: run_with_device(fast_device), repeat)
    reference_s = best_of(lambda: run_with_device(reference_device), repeat)
    return fast_s, reference_s, fast_result, reference_result


def append_bench_entry(entry):
    document = {"benchmark": "simulator_fast_path", "runs": []}
    if BENCH_ARTIFACT.exists():
        try:
            loaded = json.loads(BENCH_ARTIFACT.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                document = loaded
        except (ValueError, OSError):
            pass  # a corrupt artifact restarts the trajectory
    document["runs"].append(entry)
    BENCH_ARTIFACT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def test_fast_path_speedup_gate():
    """Regression gate: the decoded interpreter must stay >= 2x on the hot loop.

    Also records (and softly gates) the end-to-end workload speedups, and
    re-checks bit-for-bit equivalence of the measured launches so a future
    "optimization" cannot buy speed with drift.
    """
    module = build_hot_loop_module()
    rng = np.random.default_rng(0)
    x = rng.normal(size=256)
    args = {"x": x, "out": np.zeros(256), "n": 40}

    def hot_loop(device):
        return device.launch(module, 4, 64, dict(args, out=np.zeros(256)),
                             kernel_name="hotloop")

    fast_s, reference_s, fast_result, reference_result = measure_speedup(hot_loop)
    assert fast_result.cycles == reference_result.cycles
    assert fast_result.counters == reference_result.counters
    hot_speedup = reference_s / fast_s

    # End-to-end workloads (divergence + memory traffic bound the gain).
    pairs = generate_pairs(2, reference_length=48, query_length=30, seed=3)

    def adept(device):
        return AdeptDriver.for_version("v1", pairs, device).run(pairs)

    adept_fast, adept_reference, fast_run, reference_run = measure_speedup(adept, repeat=3)
    assert fast_run.kernel_time_ms == reference_run.kernel_time_ms

    params = SimCovParams.quick()

    def simcov(device):
        return SimCovDriver(device=device).run(params)

    simcov_fast, simcov_reference, fast_run, reference_run = measure_speedup(simcov, repeat=3)
    assert fast_run.kernel_time_ms == reference_run.kernel_time_ms

    append_bench_entry({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "hot_loop": {"fast_s": fast_s, "reference_s": reference_s,
                     "speedup": hot_speedup},
        "adept_v1": {"fast_s": adept_fast, "reference_s": adept_reference,
                     "speedup": adept_reference / adept_fast},
        "simcov_quick": {"fast_s": simcov_fast, "reference_s": simcov_reference,
                         "speedup": simcov_reference / simcov_fast},
    })

    assert hot_speedup >= HOT_LOOP_MIN_SPEEDUP, (
        f"fast path regressed: {hot_speedup:.2f}x < {HOT_LOOP_MIN_SPEEDUP}x "
        f"on the hot loop (fast {fast_s * 1e3:.2f} ms, "
        f"reference {reference_s * 1e3:.2f} ms)")
    assert adept_reference / adept_fast >= WORKLOAD_MIN_SPEEDUP, (
        f"ADEPT-V1 fast path below floor: {adept_reference / adept_fast:.2f}x")
    assert simcov_reference / simcov_fast >= WORKLOAD_MIN_SPEEDUP, (
        f"SIMCoV fast path below floor: {simcov_reference / simcov_fast:.2f}x")
