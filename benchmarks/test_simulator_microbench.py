"""Micro-benchmarks of the simulated GPU itself (wall-clock of the simulator).

Three families live here:

* conventional pytest-benchmark measurements of each workload's simulator
  wall-clock, useful when tuning the interpreter;
* the **dispatch-tier regression gate**: timed comparisons of the
  decode-once dispatch-table interpreter against the tree-walking
  reference on the simulator hot loop;
* the **JIT-tier regression gate**: the exec-compiled segment tier
  against both the oracle (hot loop) and the dispatch tier (end-to-end
  ADEPT / SIMCoV).

Both gates append every measurement to ``BENCH_simulator.json`` so the
trajectory of the simulator's own performance accumulates across runs
(CI restores the previous trajectory with actions/cache before the gate,
uploads the grown file as an artifact, and a non-blocking job fails when
the JIT hot-loop speedup regresses run-over-run; see
``tools/check_perf_regression.py``).
"""

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gpu import GpuDevice, get_arch
from repro.ir import KernelBuilder, Param, build_module
from repro.runtime.telemetry import new_run_id
from repro.workloads import ToyWorkloadAdapter
from repro.workloads.adept import AdeptDriver, generate_pairs
from repro.workloads.simcov import SimCovDriver, SimCovParams

#: Appended to on every gate run: one JSON document holding a list of runs.
BENCH_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"

#: Required dispatch-tier speedup over the reference interpreter on the
#: straight-line hot loop (measured ~4-5x; 2.0 leaves headroom for CI noise).
HOT_LOOP_MIN_SPEEDUP = 2.0

#: Softer floor for the divergence/memory-heavy end-to-end workloads, where
#: genuine model work (coalescing analysis, masked merges) bounds the gain.
WORKLOAD_MIN_SPEEDUP = 1.15

#: Required JIT-tier speedup over the *oracle* on the hot loop (measured
#: ~10x; 8.0 is the headline the tier exists to defend).
JIT_HOT_LOOP_MIN_SPEEDUP = 8.0

#: Required JIT-tier end-to-end speedup over the *dispatch* tier on the
#: ADEPT and SIMCoV workloads (measured ~1.35-1.55x).
JIT_WORKLOAD_MIN_SPEEDUP = 1.3

#: Required JIT-tier speedup over the oracle on the *pricing-bound* loop
#: (every iteration is memory accesses, so the fused bounds/pricing path
#: dominates; measured ~8-9x, 5.0 leaves noise headroom).
MEMORY_PRICING_MIN_SPEEDUP_VS_ORACLE = 5.0

#: And over the dispatch tier on the same loop (measured ~3.5-4x): the
#: inlined per-segment pricing + identity memo against the shared
#: ``price_access`` seam.
MEMORY_PRICING_MIN_SPEEDUP_VS_DISPATCH = 2.0

#: Required speedup of one 16-row batched SimCov fitness-grid wave over 16
#: per-launch JIT runs (measured ~2.2-3.1x; 2.0 is the acceptance floor).
POPULATION_BATCH_GRID_MIN_SPEEDUP = 2.0

#: Required speedup of a GEVO clone wave (operand-mutated variants sharing
#: one structural key) batched vs solo (measured ~2-3x; 1.5 floor).
POPULATION_BATCH_CLONE_MIN_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def device():
    return GpuDevice(get_arch("P100"))


# --------------------------------------------------------------------------- wall-clock benchmarks
def test_toy_kernel_launch_wallclock(benchmark):
    adapter = ToyWorkloadAdapter(elements=256)
    module = adapter.original_module()

    def launch():
        return adapter.evaluate(module).runtime_ms

    runtime = benchmark(launch)
    assert runtime > 0


def test_adept_v1_alignment_wallclock(benchmark, device):
    pairs = generate_pairs(2, reference_length=48, query_length=30, seed=3)
    driver = AdeptDriver.for_version("v1", pairs, device)

    def align():
        return driver.run(pairs).kernel_time_ms

    runtime = benchmark.pedantic(align, rounds=3, iterations=1)
    assert runtime > 0


def test_simcov_step_wallclock(benchmark):
    driver = SimCovDriver(arch=get_arch("P100"))
    params = SimCovParams.quick()

    def simulate():
        return driver.run(params).kernel_time_ms

    runtime = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert runtime > 0


# --------------------------------------------------------------------------- fast-path gate
def build_hot_loop_module():
    """A uniform, straight-line-heavy kernel: the interpreter's hot loop.

    Full warps, no divergence, long arithmetic segments inside a counted
    loop -- the shape fitness evaluation spends its cycles on, and the
    case the decode-once batching is designed for.
    """
    b = KernelBuilder("hotloop", params=[Param("x", "buffer"), Param("out", "buffer"),
                                         Param("n", "scalar")])
    b.block("entry")
    tid = b.tid_x()
    bid = b.bid_x()
    bdim = b.bdim_x()
    gid = b.add(b.mul(bid, bdim), tid, dest="gid")
    b.mov(b.load(b.reg("x"), gid), dest="acc")
    with b.for_range("i", 0, b.reg("n")):
        for _ in range(24):
            b.mul(b.reg("acc"), 1.0000001, dest="t")
            b.add(b.reg("t"), 0.5, dest="acc")
    b.store(b.reg("out"), b.reg("gid"), b.reg("acc"))
    b.ret()
    return build_module("hot", b.build())


def best_of(fn, repeat=5):
    """Minimum wall-clock of *repeat* runs (discards scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_speedup(run_with_device, arch_name="P100", repeat=5,
                    fast_tier="dispatch", reference_tier="oracle"):
    """(fast_s, reference_s, fast LaunchResult-like, ref ditto) for one scenario.

    ``run_with_device(device)`` must run the scenario on the given device
    and return something with ``cycles``-comparable content (or None).
    """
    arch = get_arch(arch_name)
    fast_device = GpuDevice(arch, fast_path=fast_tier)
    reference_device = GpuDevice(arch, fast_path=reference_tier)
    fast_result = run_with_device(fast_device)       # warm-up + decode/compile
    reference_result = run_with_device(reference_device)
    fast_s = best_of(lambda: run_with_device(fast_device), repeat)
    reference_s = best_of(lambda: run_with_device(reference_device), repeat)
    return fast_s, reference_s, fast_result, reference_result


def append_bench_entry(entry):
    document = {"benchmark": "simulator_fast_path", "runs": []}
    if BENCH_ARTIFACT.exists():
        try:
            loaded = json.loads(BENCH_ARTIFACT.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                document = loaded
        except (ValueError, OSError):
            pass  # a corrupt artifact restarts the trajectory
    document["runs"].append(entry)
    BENCH_ARTIFACT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def test_fast_path_speedup_gate():
    """Regression gate: the decoded interpreter must stay >= 2x on the hot loop.

    Also records (and softly gates) the end-to-end workload speedups, and
    re-checks bit-for-bit equivalence of the measured launches so a future
    "optimization" cannot buy speed with drift.
    """
    module = build_hot_loop_module()
    rng = np.random.default_rng(0)
    x = rng.normal(size=256)
    args = {"x": x, "out": np.zeros(256), "n": 40}

    def hot_loop(device):
        return device.launch(module, 4, 64, dict(args, out=np.zeros(256)),
                             kernel_name="hotloop")

    fast_s, reference_s, fast_result, reference_result = measure_speedup(hot_loop)
    assert fast_result.cycles == reference_result.cycles
    assert fast_result.counters == reference_result.counters
    hot_speedup = reference_s / fast_s

    # End-to-end workloads (divergence + memory traffic bound the gain).
    pairs = generate_pairs(2, reference_length=48, query_length=30, seed=3)

    def adept(device):
        return AdeptDriver.for_version("v1", pairs, device).run(pairs)

    adept_fast, adept_reference, fast_run, reference_run = measure_speedup(adept, repeat=3)
    assert fast_run.kernel_time_ms == reference_run.kernel_time_ms

    params = SimCovParams.quick()

    def simcov(device):
        return SimCovDriver(device=device).run(params)

    simcov_fast, simcov_reference, fast_run, reference_run = measure_speedup(simcov, repeat=3)
    assert fast_run.kernel_time_ms == reference_run.kernel_time_ms

    append_bench_entry({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "run_id": new_run_id(),
        "gate": "dispatch",
        "hot_loop": {"fast_s": fast_s, "reference_s": reference_s,
                     "speedup": hot_speedup},
        "adept_v1": {"fast_s": adept_fast, "reference_s": adept_reference,
                     "speedup": adept_reference / adept_fast},
        "simcov_quick": {"fast_s": simcov_fast, "reference_s": simcov_reference,
                         "speedup": simcov_reference / simcov_fast},
    })

    assert hot_speedup >= HOT_LOOP_MIN_SPEEDUP, (
        f"fast path regressed: {hot_speedup:.2f}x < {HOT_LOOP_MIN_SPEEDUP}x "
        f"on the hot loop (fast {fast_s * 1e3:.2f} ms, "
        f"reference {reference_s * 1e3:.2f} ms)")
    assert adept_reference / adept_fast >= WORKLOAD_MIN_SPEEDUP, (
        f"ADEPT-V1 fast path below floor: {adept_reference / adept_fast:.2f}x")
    assert simcov_reference / simcov_fast >= WORKLOAD_MIN_SPEEDUP, (
        f"SIMCoV fast path below floor: {simcov_reference / simcov_fast:.2f}x")


# --------------------------------------------------------------------------- JIT gate
def measure_speedup_with_retry(run_with_device, floor, repeat=3, attempts=2,
                               **kwargs):
    """Like :func:`measure_speedup`, re-measuring once if the ratio lands
    under *floor* (a perf gate should not flake on one noisy scheduler
    window); keeps the best attempt."""
    best = None
    for _ in range(attempts):
        sample = measure_speedup(run_with_device, repeat=repeat, **kwargs)
        if best is None or sample[1] / sample[0] > best[1] / best[0]:
            best = sample
        if best[1] / best[0] >= floor:
            break
    return best


def test_jit_speedup_gate():
    """Regression gate for the segment-JIT tier.

    The JIT must stay >= 8x over the tree-walking oracle on the
    straight-line hot loop, and >= 1.3x end-to-end over the dispatch tier
    on ADEPT-V1 and SIMCoV (full fitness-grid configuration) -- the two
    workloads whose shape (partial warps, divergence, memory pricing) the
    masked/mega-closure compilation exists for.  Equivalence of the
    measured launches is re-checked so speed can never be bought with
    drift, and the measurement is appended to the benchmark trajectory.
    """
    module = build_hot_loop_module()
    rng = np.random.default_rng(0)
    x = rng.normal(size=256)
    args = {"x": x, "n": 40}

    def hot_loop(device):
        return device.launch(module, 4, 64, dict(args, out=np.zeros(256)),
                             kernel_name="hotloop")

    jit_s, oracle_s, jit_result, oracle_result = measure_speedup_with_retry(
        hot_loop, JIT_HOT_LOOP_MIN_SPEEDUP, repeat=5,
        fast_tier="jit", reference_tier="oracle")
    assert jit_result.cycles == oracle_result.cycles
    assert jit_result.counters == oracle_result.counters
    hot_speedup = oracle_s / jit_s

    # End-to-end workloads against the *dispatch* tier (the PR 3
    # baseline): a fresh driver per run, exactly how a search evaluates a
    # candidate (decode + segment compilation are part of the cost).
    pairs = generate_pairs(2, reference_length=48, query_length=30, seed=3)

    def adept(device):
        return AdeptDriver.for_version("v1", pairs, device).run(pairs)

    adept_jit, adept_dispatch, jit_run, dispatch_run = measure_speedup_with_retry(
        adept, JIT_WORKLOAD_MIN_SPEEDUP, attempts=3, fast_tier="jit",
        reference_tier="dispatch")
    assert jit_run.kernel_time_ms == dispatch_run.kernel_time_ms

    params = SimCovParams()  # the paper-scaled fitness grid, not the toy one

    def simcov(device):
        return SimCovDriver(device=device).run(params)

    simcov_jit, simcov_dispatch, jit_run, dispatch_run = measure_speedup_with_retry(
        simcov, JIT_WORKLOAD_MIN_SPEEDUP, attempts=3, fast_tier="jit",
        reference_tier="dispatch")
    assert jit_run.kernel_time_ms == dispatch_run.kernel_time_ms

    append_bench_entry({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "run_id": new_run_id(),
        "gate": "jit",
        "hot_loop": {"jit_s": jit_s, "oracle_s": oracle_s,
                     "speedup": hot_speedup},
        "adept_v1": {"jit_s": adept_jit, "dispatch_s": adept_dispatch,
                     "speedup": adept_dispatch / adept_jit},
        "simcov": {"jit_s": simcov_jit, "dispatch_s": simcov_dispatch,
                   "speedup": simcov_dispatch / simcov_jit},
    })

    assert hot_speedup >= JIT_HOT_LOOP_MIN_SPEEDUP, (
        f"segment JIT regressed: {hot_speedup:.2f}x < "
        f"{JIT_HOT_LOOP_MIN_SPEEDUP}x over the oracle on the hot loop "
        f"(jit {jit_s * 1e3:.2f} ms, oracle {oracle_s * 1e3:.2f} ms)")
    assert adept_dispatch / adept_jit >= JIT_WORKLOAD_MIN_SPEEDUP, (
        f"ADEPT-V1 JIT below floor vs dispatch: "
        f"{adept_dispatch / adept_jit:.2f}x")
    assert simcov_dispatch / simcov_jit >= JIT_WORKLOAD_MIN_SPEEDUP, (
        f"SIMCoV JIT below floor vs dispatch: "
        f"{simcov_dispatch / simcov_jit:.2f}x")


# --------------------------------------------------------------------------- population-batch gate
def measure_batched_vs_solo(batched_fn, solo_fn, floor, repeat=2, attempts=2):
    """Best-of wall-clock for the batched wave and the solo loop, keeping
    the best attempt (a perf gate should not flake on scheduler noise)."""
    best = None
    for _ in range(attempts):
        batched_s = best_of(batched_fn, repeat)
        solo_s = best_of(solo_fn, repeat)
        if best is None or solo_s / batched_s > best[1] / best[0]:
            best = (batched_s, solo_s)
        if best[1] / best[0] >= floor:
            break
    return best


def test_population_batch_gate():
    """Regression gate for population-batched evaluation.

    One batched launch wave must stay >= 2x over per-launch JIT runs on
    the SimCov 16-point fitness parameter grid (same program, per-row
    scalar parameters) and >= 1.5x on a GEVO clone wave (operand-mutated
    variants sharing one structural key).  Bit-for-bit equivalence of the
    measured waves is re-checked first, so batching can never buy speed
    with drift, and both measurements join the benchmark trajectory.
    """
    import dataclasses

    from repro.gevo import apply_edits
    from repro.gevo.edits import OperandReplace
    from repro.ir.values import Const

    driver = SimCovDriver(arch=get_arch("P100"))
    solo_driver = SimCovDriver(arch=get_arch("P100"))

    # (1) The fitness grid: 16 parameter points, one program.
    base = SimCovParams.fitness()
    grid = [dataclasses.replace(base, virion_diffusion=diffusion,
                                virion_production=production)
            for diffusion in (0.10, 0.13, 0.16, 0.19)
            for production in (0.9, 1.0, 1.1, 1.2)]
    grid_rows = [(params, None) for params in grid]
    batched = driver.run_batched(grid_rows)
    solo = [solo_driver.run(params) for params in grid]
    for row, (batched_run, solo_run) in enumerate(zip(batched, solo)):
        assert not isinstance(batched_run, Exception), row
        assert batched_run.kernel_time_ms == solo_run.kernel_time_ms, row
        for field, value in vars(solo_run.state).items():
            if isinstance(value, np.ndarray):
                np.testing.assert_array_equal(
                    getattr(batched_run.state, field), value,
                    err_msg=f"state field {field!r} differs on row {row}")

    grid_batched_s, grid_solo_s = measure_batched_vs_solo(
        lambda: driver.run_batched(grid_rows),
        lambda: [solo_driver.run(params) for params in grid],
        POPULATION_BATCH_GRID_MIN_SPEEDUP)
    grid_speedup = grid_solo_s / grid_batched_s

    # (2) A GEVO clone wave: operand-mutated variants, one structural key.
    module = driver.kernels.module
    produce = module.get_function("simcov_produce")
    uid, index, value = next(
        (instruction.uid, position, operand.value)
        for instruction in produce.instructions()
        for position, operand in enumerate(instruction.operands)
        if isinstance(operand, Const)
        and isinstance(operand.value, float)
        and not isinstance(operand.value, bool))
    clones = [apply_edits(module, [OperandReplace(uid, index,
                                                  Const(value * scale))]).module
              for scale in np.linspace(0.5, 1.5, 16)]
    clone_rows = [(base, clone) for clone in clones]
    batched = driver.run_batched(clone_rows)
    for row, (batched_run, clone) in enumerate(zip(batched, clones)):
        assert not isinstance(batched_run, Exception), row
        solo_run = solo_driver.run(base, clone)
        assert batched_run.kernel_time_ms == solo_run.kernel_time_ms, row

    clone_batched_s, clone_solo_s = measure_batched_vs_solo(
        lambda: driver.run_batched(clone_rows),
        lambda: [solo_driver.run(base, clone) for clone in clones],
        POPULATION_BATCH_CLONE_MIN_SPEEDUP)
    clone_speedup = clone_solo_s / clone_batched_s

    append_bench_entry({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "run_id": new_run_id(),
        "gate": "population_batch",
        "simcov_grid": {"batched_s": grid_batched_s, "solo_s": grid_solo_s,
                        "speedup": grid_speedup},
        "clone_wave": {"batched_s": clone_batched_s, "solo_s": clone_solo_s,
                       "speedup": clone_speedup},
    })

    assert grid_speedup >= POPULATION_BATCH_GRID_MIN_SPEEDUP, (
        f"population batching regressed on the SimCov fitness grid: "
        f"{grid_speedup:.2f}x < {POPULATION_BATCH_GRID_MIN_SPEEDUP}x "
        f"(batched {grid_batched_s * 1e3:.1f} ms, "
        f"solo {grid_solo_s * 1e3:.1f} ms)")
    assert clone_speedup >= POPULATION_BATCH_CLONE_MIN_SPEEDUP, (
        f"population batching below floor on the clone wave: "
        f"{clone_speedup:.2f}x < {POPULATION_BATCH_CLONE_MIN_SPEEDUP}x "
        f"(batched {clone_batched_s * 1e3:.1f} ms, "
        f"solo {clone_solo_s * 1e3:.1f} ms)")


# --------------------------------------------------------------------------- memory-pricing gate
def build_memory_loop_module():
    """A pricing-bound kernel: the hot loop is almost all memory accesses.

    Every iteration does two global and two shared accesses on
    loop-invariant addressing, so wall-clock is dominated by the bounds
    check + coalescing/bank-conflict pricing -- the stack the arch-aware
    vectorization (fused ``check_bounds_stats``, inlined per-segment
    pricing, identity memo) targets.
    """
    from repro.ir.function import SharedDecl

    b = KernelBuilder("memhot", params=[Param("x", "buffer"), Param("out", "buffer"),
                                        Param("n", "scalar")],
                      shared=[SharedDecl("tile", 64)])
    b.block("entry")
    tid = b.tid_x()
    bid = b.bid_x()
    bdim = b.bdim_x()
    gid = b.add(b.mul(bid, bdim), tid, dest="gid")
    b.store(b.reg("tile"), tid, b.load(b.reg("x"), gid))
    b.mov(b.const(0.0), dest="acc")
    with b.for_range("i", 0, b.reg("n")):
        v = b.load(b.reg("x"), b.reg("gid"), dest="v")
        b.store(b.reg("tile"), tid, b.add(v, b.reg("acc")))
        w = b.load(b.reg("tile"), tid, dest="w")
        b.add(b.reg("acc"), w, dest="acc")
        b.store(b.reg("out"), b.reg("gid"), b.reg("acc"))
    b.store(b.reg("out"), b.reg("gid"), b.reg("acc"))
    b.ret()
    return build_module("memhot", b.build())


def test_memory_pricing_gate():
    """Regression gate for the arch-aware memory-pricing stack.

    The JIT tier must stay >= 5x over the oracle and >= 2x over the
    dispatch tier on the pricing-bound loop.  Equivalence of the measured
    launches is re-checked on the default geometry *and* on G80's 16-wide
    segments / 16 banks, so a pricing shortcut can never buy speed with
    drift -- counters (including the shared-conflict evidence) must match
    bit for bit.
    """
    module = build_memory_loop_module()
    rng = np.random.default_rng(0)
    x = rng.normal(size=256)
    args = {"x": x, "n": 40}

    def mem_loop(device):
        return device.launch(module, 4, 64, dict(args, out=np.zeros(256)),
                             kernel_name="memhot")

    jit_s, oracle_s, jit_result, oracle_result = measure_speedup_with_retry(
        mem_loop, MEMORY_PRICING_MIN_SPEEDUP_VS_ORACLE, repeat=5,
        fast_tier="jit", reference_tier="oracle")
    assert jit_result.cycles == oracle_result.cycles
    assert jit_result.counters == oracle_result.counters
    assert jit_result.counters["shared_conflicts"] > 0
    oracle_speedup = oracle_s / jit_s

    jit_s2, dispatch_s, jit_result, dispatch_result = measure_speedup_with_retry(
        mem_loop, MEMORY_PRICING_MIN_SPEEDUP_VS_DISPATCH, repeat=5,
        fast_tier="jit", reference_tier="dispatch")
    assert jit_result.cycles == dispatch_result.cycles
    assert jit_result.counters == dispatch_result.counters
    dispatch_speedup = dispatch_s / jit_s2

    # Non-default geometry: same kernel, all three tiers, G80's 16/16.
    g80 = get_arch("G80")
    g80_results = {
        tier: GpuDevice(g80, fast_path=tier).launch(
            module, 4, 64, dict(args, out=np.zeros(256)), kernel_name="memhot")
        for tier in ("oracle", "dispatch", "jit")}
    assert (g80_results["jit"].cycles == g80_results["dispatch"].cycles
            == g80_results["oracle"].cycles)
    assert (g80_results["jit"].counters == g80_results["dispatch"].counters
            == g80_results["oracle"].counters)
    # 16-wide segments split the coalesced 32-lane accesses in two.
    assert (g80_results["jit"].counters["global_transactions"]
            > jit_result.counters["global_transactions"])

    append_bench_entry({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "run_id": new_run_id(),
        "gate": "memory_pricing",
        "mem_loop": {"jit_s": jit_s, "oracle_s": oracle_s,
                     "speedup": oracle_speedup},
        "mem_loop_vs_dispatch": {"jit_s": jit_s2, "dispatch_s": dispatch_s,
                                 "speedup": dispatch_speedup},
    })

    assert oracle_speedup >= MEMORY_PRICING_MIN_SPEEDUP_VS_ORACLE, (
        f"memory pricing regressed: {oracle_speedup:.2f}x < "
        f"{MEMORY_PRICING_MIN_SPEEDUP_VS_ORACLE}x over the oracle "
        f"(jit {jit_s * 1e3:.2f} ms, oracle {oracle_s * 1e3:.2f} ms)")
    assert dispatch_speedup >= MEMORY_PRICING_MIN_SPEEDUP_VS_DISPATCH, (
        f"memory pricing below floor vs dispatch: {dispatch_speedup:.2f}x "
        f"(jit {jit_s2 * 1e3:.2f} ms, dispatch {dispatch_s * 1e3:.2f} ms)")
