"""Benchmark: regenerate Figure 8 (discovery sequence of the epistatic edits).

A scaled-down live GEVO run; the property preserved from the paper is the
ordering constraint -- the enabling edit (6) is assembled into the best
individual no later than its dependent edits (8, 10), and the staging edit
(5) cannot be first.
"""

import pytest

from repro.experiments import run_figure8

from .conftest import run_once

pytestmark = pytest.mark.slow  # full experiment regeneration; excluded from tier-1


def test_figure8_discovery_sequence(benchmark, report):
    result = run_once(benchmark, run_figure8,
                      population_size=12, generations=10, seed=7,
                      candidate_probability=0.5)
    report(result)
    events = {row["edit"]: row["generation"] for row in result.rows
              if row["edit"].startswith("edit")}
    final = next(row for row in result.rows if row["edit"] == "final")
    assert final["speedup"] >= 1.0

    discovered = {label: generation for label, generation in events.items()
                  if generation is not None}
    if "edit8" in discovered or "edit10" in discovered:
        # A dependent edit can only enter the best individual together with or
        # after the enabling edit 6.
        assert "edit6" in discovered
        dependent_generations = [generation for label, generation in discovered.items()
                                 if label in ("edit8", "edit10")]
        assert min(dependent_generations) >= discovered["edit6"]
    if "edit5" in discovered:
        assert discovered["edit5"] >= discovered.get("edit6", 0)
