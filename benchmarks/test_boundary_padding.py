"""Benchmark: Section VI-D (SIMCoV boundary-check removal vs zero padding)."""

import pytest

from repro.experiments import run_boundary

from .conftest import run_once

pytestmark = pytest.mark.slow  # full experiment regeneration; excluded from tier-1


def test_boundary_removal_vs_padding(benchmark, report):
    result = run_once(benchmark, run_boundary)
    report(result)
    rows = {row["variant"]: row for row in result.rows}

    original = rows["original (checked)"]
    removal = rows["GEVO boundary removal"]
    assert original["passes_fitness"] and original["passes_heldout"]
    # The unsafe optimization: faster, passes the small fitness grid, faults on
    # the larger held-out grid (the paper's segmentation fault).
    assert removal["improvement"] > 0.08
    assert removal["passes_fitness"]
    assert not removal["passes_heldout"]

    checked = rows["spread kernel: checked"]
    removed = rows["spread kernel: checks removed"]
    padded = rows["spread kernel: zero padding"]
    assert removed["fitness_ms"] < checked["fitness_ms"]
    assert padded["fitness_ms"] < checked["fitness_ms"]
    assert padded["passes_heldout"] and not removed["passes_heldout"]
