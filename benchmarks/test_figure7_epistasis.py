"""Benchmark: regenerate Figure 7 / Section V (minimization, independence, epistasis).

Shape being checked: the ADEPT-V1 epistatic cluster {5, 6, 8, 10} has the
paper's dependency structure (8 and 10 depend on 6; 5, 8 and 10 fail
alone; the full cluster gives the largest improvement).
"""

import pytest

from repro.experiments import run_figure7

from .conftest import run_once

pytestmark = pytest.mark.slow  # full experiment regeneration; excluded from tier-1


def test_figure7_epistatic_cluster(benchmark, report):
    result = run_once(benchmark, run_figure7)
    report(result)
    stages = {row.get("stage") for row in result.rows}
    assert {"Algorithm 1 (minimization)", "Algorithm 2 (independence)",
            "subset", "dependency graph"} <= stages

    subsets = {row["subset"]: row for row in result.rows if row.get("stage") == "subset"}
    # Singletons 5, 8 and 10 fail verification.
    assert not subsets["edit5"]["valid"]
    assert not subsets["edit8"]["valid"]
    assert not subsets["edit10"]["valid"]
    # Edit 6 alone is valid but contributes (almost) nothing.
    assert subsets["edit6"]["valid"]
    assert subsets["edit6"]["improvement"] < 0.05
    # The full cluster is valid and the largest contributor (paper: ~15%).
    full = subsets["edit5+edit6+edit8+edit10"]
    assert full["valid"]
    assert full["improvement"] > 0.08
    assert full["improvement"] >= max(row["improvement"]
                                      for row in subsets.values() if row["valid"])

    algo2 = next(row for row in result.rows if row.get("stage") == "Algorithm 2 (independence)")
    assert algo2["epistatic"] >= 3
    assert algo2["epistatic_improvement"] > algo2["independent_improvement"] * 0.8
