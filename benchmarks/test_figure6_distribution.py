"""Benchmark: regenerate Figure 6 (distribution over repeated GEVO runs).

Scaled well below the paper's ten 130-300-generation runs; the preserved
property is that repeated runs produce a spread of final speedups with a
best at least as good as the mean (the paper's argument for running GEVO
multiple times).
"""

import pytest

from repro.experiments import run_figure6

from .conftest import run_once

pytestmark = pytest.mark.slow  # full experiment regeneration; excluded from tier-1


def test_figure6_run_distribution(benchmark, report):
    result = run_once(benchmark, run_figure6,
                      runs=2, population_size=8, generations=5, include_simcov=True)
    report(result)
    assert len(result.rows) == 2
    for row in result.rows:
        assert row["runs"] == 2
        assert row["best"] >= row["mean"] >= row["worst"] >= 0.95
