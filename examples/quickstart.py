#!/usr/bin/env python3
"""Quickstart: author a kernel, run it on the simulated GPU, let GEVO optimize it.

This walks the whole public API in under a minute:

1. build a small kernel with :class:`repro.ir.KernelBuilder` (here, the
   bundled "wasteful saxpy" toy kernel);
2. launch it on a simulated P100 with :class:`repro.gpu.GpuDevice`;
3. wrap it in a :class:`repro.gevo.WorkloadAdapter` and run a short GEVO
   search;
4. inspect what the search found and map the edits back to source lines.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_source_report
from repro.gevo import GevoConfig, GevoSearch
from repro.gpu import GpuDevice, get_arch
from repro.ir import format_module
from repro.workloads import ToyWorkloadAdapter


def main() -> None:
    # -- 1. the program under optimization -----------------------------------------
    adapter = ToyWorkloadAdapter(arch=get_arch("P100"), elements=256)
    module = adapter.original_module()
    print("Kernel under optimization (mini-IR):")
    print(format_module(module))

    # -- 2. run it on the simulated GPU ----------------------------------------------
    baseline = adapter.baseline()
    print(f"Baseline: valid={baseline.valid}, simulated runtime = "
          f"{baseline.runtime_ms * 1000:.2f} us")

    # -- 3. evolutionary search -------------------------------------------------------
    config = GevoConfig.quick(seed=42, population_size=12, generations=8)
    print(f"\nRunning GEVO: population={config.population_size}, "
          f"generations={config.generations} ...")
    result = GevoSearch(adapter, config).run(validate_best=True)

    print(f"Best variant: {len(result.best.edits)} edits, "
          f"speedup {result.speedup:.3f}x, "
          f"validates on held-out data: {result.validation.valid}")
    print(f"Fitness evaluations: {result.evaluations} "
          f"({result.wall_clock_seconds:.1f} s wall clock)")

    # -- 4. what did it find? ------------------------------------------------------------
    print("\nDiscovered edits mapped back to source lines:")
    print(format_source_report(module, result.best.edits))

    print("\nSpeedup trajectory (best individual per generation):")
    for generation, speedup in enumerate(result.history.speedup_series(), start=1):
        bar = "#" * int((speedup or 1.0) * 20)
        print(f"  gen {generation:2d}: {speedup:.3f}x {bar}")


if __name__ == "__main__":
    main()
