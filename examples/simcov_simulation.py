#!/usr/bin/env python3
"""SIMCoV: SARS-CoV-2 lung-infection simulation on the simulated GPU.

The script:

1. runs the CPU reference model and the eight GPU kernels side by side on
   a small grid with a fixed seed and compares their trajectories;
2. applies the GEVO-discovered edits (boundary-check removal + redundant
   load removal) and reports the speedup and validation outcome on the
   fitness grid;
3. shows the Section VI-D safety story: the same edits fault on the larger
   held-out grid, while the developers' zero-padding fix is safe.

Run with::

    python examples/simcov_simulation.py
"""

from __future__ import annotations

from repro.gevo import apply_edits
from repro.gpu import get_arch
from repro.workloads.simcov import (
    STATE_NAMES,
    SimCovParams,
    SimCovWorkloadAdapter,
    boundary_check_removal_edits,
    run_reference,
    simcov_discovered_edits,
    states_close,
)


def run_side_by_side(adapter: SimCovWorkloadAdapter, params: SimCovParams) -> None:
    reference = run_reference(params)
    gpu = adapter.driver.run(params, record_summaries=True)
    print(f"Grid {params.width}x{params.height}, {params.steps} steps, seed {params.seed}")
    print("step  virions(GPU)  virions(CPU)  T cells  infected+expressing  dead")
    for summary in gpu.summaries:
        step = int(summary["step"])
        print(f"{step:4d}  {summary['total_virions']:12.2f}  "
              f"{'':12s}  {int(summary['num_tcells']):7d}  "
              f"{int(summary['incubating'] + summary['expressing']):19d}  "
              f"{int(summary['dead']):4d}")
    reference_summary = reference.summary()
    print(f"final reference totals: virions={reference_summary['total_virions']:.2f}, "
          f"tcells={int(reference_summary['num_tcells'])}")
    ok, report = states_close(gpu.state, reference)
    print(f"GPU vs CPU per-value agreement: {ok} {report}")
    print(f"total simulated kernel time: {gpu.kernel_time_ms:.4f} ms")
    states = gpu.state.grid("epithelial")
    print("final epithelial states (one character per cell, "
          + ", ".join(f"{value}={name[0]}" for value, name in STATE_NAMES.items()) + "):")
    for row in states.astype(int):
        print("  " + "".join(STATE_NAMES[value][0] for value in row))
    print()


def optimize(adapter: SimCovWorkloadAdapter) -> None:
    baseline = adapter.baseline()
    edits = simcov_discovered_edits(adapter.kernels)
    optimized_module = apply_edits(adapter.original_module(), edits).module
    optimized = adapter.evaluate(optimized_module)
    print("GEVO-discovered SIMCoV optimization (boundary checks + redundant loads):")
    print(f"  fitness grid: {baseline.runtime_ms:.4f} ms -> {optimized.runtime_ms:.4f} ms "
          f"({baseline.runtime_ms / optimized.runtime_ms:.3f}x), "
          f"passes per-value validation: {optimized.valid}")

    boundary_only = apply_edits(adapter.original_module(),
                                boundary_check_removal_edits(adapter.kernels)).module
    heldout = adapter.validate(boundary_only)
    print("  held-out (larger) grid with boundary checks removed: "
          f"passes={heldout.valid}  ({heldout.cases[0].message[:70]}...)")
    print("  -> the unsafe edit is caught only by the larger held-out test, exactly the "
          "paper's Section VI-D observation; the safe fix is zero padding (see "
          "benchmarks/test_boundary_padding.py).")


def main() -> None:
    adapter = SimCovWorkloadAdapter(get_arch("P100"))
    run_side_by_side(adapter, adapter.fitness_params)
    optimize(adapter)


if __name__ == "__main__":
    main()
