#!/usr/bin/env python3
"""ADEPT sequence alignment on the simulated GPU (paper Sections II-B, IV, VI-A).

The script:

1. generates a batch of synthetic DNA pairs and aligns them with the
   hand-tuned ADEPT-V1 kernel, validating every score against the CPU
   Smith-Waterman reference;
2. applies the recorded GEVO-discovered edits (the register-to-shared-memory
   exchange rewrite of Figure 9 plus the independent edits) and shows the
   additional speedup on each simulated GPU;
3. shows the naive ADEPT-V0 kernel and the ~30x effect of removing its
   redundant initialization region (Section VI-C).

Run with::

    python examples/adept_alignment.py
"""

from __future__ import annotations

from repro.gevo import apply_edits
from repro.gpu import EVALUATION_ORDER, get_arch
from repro.workloads.adept import (
    AdeptWorkloadAdapter,
    adept_v0_discovered_edits,
    adept_v1_discovered_edits,
    batch_alignment_scores,
    generate_pairs,
    search_pairs,
    traceback,
)


def align_and_validate() -> None:
    pairs = generate_pairs(4, reference_length=48, query_length=32, seed=11)
    adapter = AdeptWorkloadAdapter("v1", get_arch("P100"), fitness_cases=[pairs])
    result = adapter.driver.run(pairs)
    expected = batch_alignment_scores(pairs)
    print("Pair  GPU score  CPU score  alignment (reference fragment)")
    for index, pair in enumerate(pairs):
        aligned_a, aligned_b = traceback(pair.reference, pair.query)
        print(f"{index:4d}  {int(result.scores[index]):9d}  {int(expected[index]):9d}  "
              f"{aligned_a[:32]}")
    assert (result.scores == expected).all(), "GPU kernel must match the CPU reference"
    print(f"Batch kernel time on the simulated P100: {result.kernel_time_ms:.4f} ms\n")


def optimize_hand_tuned_version() -> None:
    print("GEVO-discovered optimization of the hand-tuned ADEPT-V1:")
    for arch_name in EVALUATION_ORDER:
        adapter = AdeptWorkloadAdapter("v1", get_arch(arch_name),
                                       fitness_cases=[search_pairs()])
        baseline = adapter.baseline()
        edits = adept_v1_discovered_edits(adapter.kernel)
        optimized = adapter.evaluate(apply_edits(adapter.original_module(), edits).module)
        print(f"  {arch_name:7s}: {baseline.runtime_ms:.4f} ms -> {optimized.runtime_ms:.4f} ms "
              f"({baseline.runtime_ms / optimized.runtime_ms:.3f}x, "
              f"still 100% accurate: {optimized.valid})")
    print()


def optimize_naive_version() -> None:
    pairs = generate_pairs(1, reference_length=36, query_length=22, seed=5)
    adapter = AdeptWorkloadAdapter("v0", get_arch("P100"), fitness_cases=[pairs])
    baseline = adapter.baseline()
    edits = adept_v0_discovered_edits(adapter.kernel)
    optimized = adapter.evaluate(apply_edits(adapter.original_module(), edits).module)
    print("Naive ADEPT-V0 and the redundant-initialization removal (Section VI-C):")
    print(f"  before: {baseline.runtime_ms:.4f} ms   after: {optimized.runtime_ms:.4f} ms   "
          f"speedup {baseline.runtime_ms / optimized.runtime_ms:.1f}x "
          f"(valid: {optimized.valid})")


def main() -> None:
    align_and_validate()
    optimize_hand_tuned_version()
    optimize_naive_version()


if __name__ == "__main__":
    main()
