#!/usr/bin/env python3
"""Understanding a discovered optimization (paper Sections V and VI).

Starting from the recorded GEVO edit set for the hand-tuned ADEPT-V1
kernel, the script walks the paper's multi-step analysis:

1. Algorithm 1 -- remove weak edits (< 1% contribution);
2. Algorithm 2 -- split the remaining edits into independent and epistatic;
3. exhaustive subset analysis of the epistatic cluster {5, 6, 8, 10},
   reconstructing the dependency graph of Figure 7;
4. a scaled-down live GEVO run whose history yields the discovery sequence
   of Figure 8;
5. mapping every edit back to its "CUDA source" line (Figure 9 style).

Run with::

    python examples/optimization_analysis.py
"""

from __future__ import annotations

from repro.analysis import (
    discovery_sequence,
    exhaustive_subset_analysis,
    figure7_report,
    format_source_report,
    identify_weak_edits,
    separate_edits,
)
from repro.gevo import GevoConfig, GevoSearch
from repro.gpu import get_arch
from repro.workloads.adept import (
    AdeptWorkloadAdapter,
    adept_v1_discovered_edits,
    adept_v1_epistatic_edits,
    search_pairs,
)


def main() -> None:
    adapter = AdeptWorkloadAdapter("v1", get_arch("P100"), fitness_cases=[search_pairs()])
    kernel = adapter.kernel
    edits = adept_v1_discovered_edits(kernel)
    print(f"Workload: {adapter.name}; recorded GEVO edit set: {len(edits)} edits")

    # -- Algorithm 1 ------------------------------------------------------------------
    minimization = identify_weak_edits(adapter, edits)
    print(f"\n[Algorithm 1] {minimization.summary()}")

    # -- Algorithm 2 ------------------------------------------------------------------
    separation = separate_edits(adapter, minimization.significant)
    print(f"[Algorithm 2] {separation.summary()}")

    # -- exhaustive subsets of the epistatic cluster ------------------------------------
    cluster = adept_v1_epistatic_edits(kernel)
    labels = [f"edit{index}" for index in cluster]
    analysis = exhaustive_subset_analysis(adapter, list(cluster.values()), labels=labels)
    report = figure7_report(analysis)
    print("\n[Figure 7] epistatic cluster {5, 6, 8, 10}:")
    print(f"  edits failing alone: {report['failing_alone']}")
    print(f"  dependencies: {report['dependencies']}")
    print(f"  best subset: {report['best_subset']} "
          f"({report['best_improvement']:.1%} improvement)")
    for outcome in sorted(analysis.outcomes, key=lambda o: (o.size, o.labels)):
        status = f"{outcome.improvement:6.1%}" if outcome.valid else "exec failed"
        print(f"    {'+'.join(outcome.labels):32s} {status}")

    # -- Figure 8: live (scaled) discovery ------------------------------------------------
    print("\n[Figure 8] scaled live GEVO run (discovery of the cluster):")
    config = GevoConfig.quick(seed=7, population_size=12, generations=10)
    search = GevoSearch(adapter, config, candidate_edits=edits, candidate_probability=0.5)
    outcome = search.run()
    sequence = discovery_sequence(outcome.history,
                                  {f"edit{index}": edit for index, edit in cluster.items()})
    for event in sequence.events:
        generation = "never" if event.generation is None else f"generation {event.generation}"
        print(f"  {event.label:7s} first in best individual: {generation}")
    print(f"  final speedup of the run: {outcome.speedup:.3f}x")

    # -- Figure 9 style source mapping ----------------------------------------------------
    print("\n[Figure 9] edits mapped back to source lines:")
    print(format_source_report(adapter.original_module(), minimization.significant))


if __name__ == "__main__":
    main()
