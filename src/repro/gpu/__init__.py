"""Simulated GPU: architectures, SIMT execution, timing and profiling.

This package substitutes for the physical NVIDIA GPUs used in the paper.
The usual entry point is::

    from repro.gpu import GpuDevice, get_arch

    device = GpuDevice(get_arch("P100"))
    result = device.launch(kernel, grid=8, block=64, args={"x": host_array, "n": 512})
    print(result.time_ms)
"""

from .arch import ARCHITECTURES, EVALUATION_ORDER, GTX1080TI, INTERPRETER_TIERS, P100, V100, GpuArch, architecture_table, available_archs, get_arch, normalize_interpreter_tier, parse_arch_list, register_arch
from .decoded import DecodedBlock, DecodedFunction, DecodedInstruction, decode_function
from .jitted import attach_jit, jit_function
from .memory import BufferHandle, GlobalMemory, SharedMemoryBlock, bank_conflicts, coalesced_transactions
from .profiler import InstructionProfile, ProfileCollector
from .simulator import LAUNCH_OVERHEAD_CYCLES, BlockResult, GpuDevice, LaunchResult
from .timing import CostModel, MemoryAccessInfo, cycles_to_milliseconds
from .warp import ThreadIdentity, WarpState, WarpStatus, build_thread_identity

__all__ = [
    "ARCHITECTURES",
    "BlockResult",
    "BufferHandle",
    "CostModel",
    "DecodedBlock",
    "DecodedFunction",
    "DecodedInstruction",
    "EVALUATION_ORDER",
    "GTX1080TI",
    "GlobalMemory",
    "GpuArch",
    "GpuDevice",
    "INTERPRETER_TIERS",
    "InstructionProfile",
    "LAUNCH_OVERHEAD_CYCLES",
    "LaunchResult",
    "MemoryAccessInfo",
    "P100",
    "ProfileCollector",
    "SharedMemoryBlock",
    "ThreadIdentity",
    "V100",
    "WarpState",
    "WarpStatus",
    "architecture_table",
    "attach_jit",
    "available_archs",
    "bank_conflicts",
    "build_thread_identity",
    "coalesced_transactions",
    "cycles_to_milliseconds",
    "decode_function",
    "get_arch",
    "jit_function",
    "normalize_interpreter_tier",
    "parse_arch_list",
    "register_arch",
]
