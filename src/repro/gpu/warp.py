"""Warp state for the SIMT interpreter.

A warp is a group of (up to) 32 threads executed in lock step.  The state
consists of a per-lane register file (numpy arrays of width ``warp_size``),
an execution status, a cycle counter, and the SIMT *reconvergence stack*
that implements branch divergence: when the lanes of a warp disagree on a
conditional branch, both sides execute serially under partial masks and
re-join at the immediate post-dominator of the branching block, exactly the
mechanism the paper's Section VI-A analysis relies on to explain why the
hand-tuned register-shuffle exchange loses to plain shared memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .memory import BufferHandle

#: A program counter: (block label, instruction index within the block).
ProgramCounter = Tuple[str, int]

#: Register values are either per-lane numeric arrays or uniform buffer handles.
RegisterValue = Union[np.ndarray, BufferHandle]


class WarpStatus(enum.Enum):
    """Scheduling status of a warp within its block."""

    RUNNING = "running"
    AT_BARRIER = "at_barrier"
    DONE = "done"


@dataclass
class StackEntry:
    """One entry of the SIMT reconvergence stack."""

    pc: ProgramCounter
    mask: np.ndarray
    reconvergence: Optional[str]
    #: JIT-tier cache of ``bool(mask.all())``: masks are immutable and
    #: rebound on every change, so fullness is memoised by object identity
    #: (``mask_obj is mask``) instead of re-reducing per segment execution.
    mask_obj: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    mask_full: bool = field(default=False, repr=False, compare=False)

    def active_lane_count(self) -> int:
        return int(np.count_nonzero(self.mask))


@dataclass
class ThreadIdentity:
    """Per-lane thread/block coordinates for one warp.

    Identities are immutable (consumers copy before mutating), so one
    instance can be shared by every launch with the same geometry -- see
    :meth:`GpuDevice._thread_identity`.
    """

    tid_x: np.ndarray
    tid_y: np.ndarray
    bid_x: np.ndarray
    bid_y: np.ndarray
    bdim_x: np.ndarray
    bdim_y: np.ndarray
    gdim_x: np.ndarray
    gdim_y: np.ndarray
    lane_id: np.ndarray
    warp_id: np.ndarray
    valid: np.ndarray
    #: Lazily built opcode -> per-lane array map served to the interpreters
    #: (``tid.x`` reads etc.); built once per identity instead of once per
    #: warp executor.
    _register_values: Optional[Dict[str, np.ndarray]] = field(
        default=None, repr=False, compare=False)

    def register_values(self) -> Dict[str, np.ndarray]:
        values = self._register_values
        if values is None:
            values = {
                "tid.x": self.tid_x, "tid.y": self.tid_y,
                "bid.x": self.bid_x, "bid.y": self.bid_y,
                "bdim.x": self.bdim_x, "bdim.y": self.bdim_y,
                "gdim.x": self.gdim_x, "gdim.y": self.gdim_y,
                "laneid": self.lane_id, "warpid": self.warp_id,
            }
            self._register_values = values
        return values


def broadcast_scalar_arrays(scalar_bindings: Dict[str, float],
                            warp_size: int) -> Dict[str, np.ndarray]:
    """Read-only per-lane broadcast arrays for scalar kernel parameters.

    The single home of the scalar dtype rule (integral values become
    int64 lanes, everything else float64); the device caches the result
    per distinct scalar tuple and shares it across warps and launches --
    safe because register writes rebind, never mutate in place.
    """
    arrays: Dict[str, np.ndarray] = {}
    for name, value in scalar_bindings.items():
        dtype = np.int64 if float(value) == int(value) else np.float64
        array = np.full(warp_size, value, dtype=dtype)
        array.flags.writeable = False
        arrays[name] = array
    return arrays


def build_thread_identity(
    warp_index: int,
    block_coords: Tuple[int, int],
    block_dim: Tuple[int, int],
    grid_dim: Tuple[int, int],
    warp_size: int = 32,
) -> ThreadIdentity:
    """Compute the identity arrays for warp *warp_index* of one block.

    Threads are linearised row-major (``ty * bdim_x + tx``), matching CUDA's
    warp formation order, and lanes beyond the block's thread count are
    marked invalid (never active).
    """
    bx, by = block_dim
    total_threads = bx * by
    lanes = np.arange(warp_size, dtype=np.int64)
    linear = warp_index * warp_size + lanes
    valid = linear < total_threads
    safe_linear = np.where(valid, linear, 0)
    tid_x = safe_linear % bx
    tid_y = safe_linear // bx
    return ThreadIdentity(
        tid_x=tid_x.astype(np.int64),
        tid_y=tid_y.astype(np.int64),
        bid_x=np.full(warp_size, block_coords[0], dtype=np.int64),
        bid_y=np.full(warp_size, block_coords[1], dtype=np.int64),
        bdim_x=np.full(warp_size, bx, dtype=np.int64),
        bdim_y=np.full(warp_size, by, dtype=np.int64),
        gdim_x=np.full(warp_size, grid_dim[0], dtype=np.int64),
        gdim_y=np.full(warp_size, grid_dim[1], dtype=np.int64),
        lane_id=lanes,
        warp_id=np.full(warp_size, warp_index, dtype=np.int64),
        valid=valid,
    )


@dataclass
class WarpState:
    """Mutable execution state of one warp."""

    warp_index: int
    identity: ThreadIdentity
    entry_label: str
    warp_size: int = 32
    registers: Dict[str, RegisterValue] = field(default_factory=dict)
    stack: List[StackEntry] = field(default_factory=list)
    status: WarpStatus = WarpStatus.RUNNING
    cycles: float = 0.0
    instructions_executed: int = 0
    exited_mask: np.ndarray = field(default=None)

    def __post_init__(self):
        if self.exited_mask is None:
            self.exited_mask = np.zeros(self.warp_size, dtype=bool)
        if not self.stack:
            initial_mask = self.identity.valid.copy()
            self.stack.append(StackEntry(pc=(self.entry_label, 0),
                                         mask=initial_mask,
                                         reconvergence=None))
        if not np.any(self.identity.valid):
            self.status = WarpStatus.DONE
            self.stack.clear()

    # -- mask / stack helpers -------------------------------------------------------
    @property
    def active_mask(self) -> np.ndarray:
        """Mask of lanes active at the current top-of-stack (all false when done)."""
        if not self.stack:
            return np.zeros(self.warp_size, dtype=bool)
        return self.stack[-1].mask

    def retire_lanes(self, mask: np.ndarray) -> None:
        """Mark lanes as having executed ``ret``; prune them from every stack entry."""
        self.exited_mask |= mask
        for entry in self.stack:
            entry.mask = entry.mask & ~mask
        while self.stack and not np.any(self.stack[-1].mask):
            self.stack.pop()
        if not self.stack:
            self.status = WarpStatus.DONE

    def pop_reconverged(self) -> None:
        """Pop stack entries whose program counter reached their reconvergence block."""
        while self.stack:
            top = self.stack[-1]
            if top.reconvergence is not None and top.pc == (top.reconvergence, 0):
                self.stack.pop()
            else:
                break
        if not self.stack:
            self.status = WarpStatus.DONE

    def write_register(self, name: str, value: np.ndarray, mask: np.ndarray) -> None:
        """Write *value* into register *name* for the lanes selected by *mask*."""
        if isinstance(value, BufferHandle):
            # Buffer handles are uniform values; a masked write of a handle
            # simply rebinds the name (matches how pointer-typed registers
            # behave in practice: every lane holds the same pointer).
            self.registers[name] = value
            return
        value = np.asarray(value)
        existing = self.registers.get(name)
        if isinstance(existing, BufferHandle) or existing is None:
            base = np.zeros(self.warp_size, dtype=value.dtype)
        else:
            base = existing
        if base.dtype != value.dtype:
            common = np.result_type(base.dtype, value.dtype)
            base = base.astype(common)
            value = value.astype(common)
        self.registers[name] = np.where(mask, value, base)

    def write_register_full(self, name: str, value: np.ndarray) -> None:
        """Write *value* under a fully-active mask.

        Equivalent to :meth:`write_register` with an all-true mask -- the
        merge with the previous contents keeps nothing, so the masked
        ``np.where`` collapses to storing *value* (promoted against the
        existing register's dtype exactly as the merge would).  *value*
        must be a freshly produced array the caller does not retain; the
        decoded fast path's handlers guarantee this.
        """
        if isinstance(value, BufferHandle):
            self.registers[name] = value
            return
        existing = self.registers.get(name)
        if (existing is not None and not isinstance(existing, BufferHandle)
                and existing.dtype != value.dtype):
            common = np.result_type(existing.dtype, value.dtype)
            if value.dtype != common:
                value = value.astype(common)
        self.registers[name] = value

    def snapshot_cycles(self) -> float:
        return self.cycles
