"""Memory spaces of the simulated GPU.

Three spaces exist, mirroring the CUDA model described in Section II-B of
the paper:

* **global** memory -- kernel parameters of kind ``buffer``; shared by all
  blocks, backed by the numpy arrays the host passes to ``launch`` and
  mutated in place (like ``cudaMemcpy``-managed device buffers).
* **shared** memory -- per-block arrays declared by the kernel, visible to
  every thread in the block, *not* zero-initialised (so a kernel that reads
  before writing gets the poison fill value; see the ADEPT-V0 analysis in
  Section VI-C).
* **registers** -- per-thread virtual registers, handled by the warp state
  in :mod:`repro.gpu.warp`.

A :class:`BufferHandle` is the runtime value bound to a buffer parameter or
shared-array name; loads and stores resolve their base operand to such a
handle.  Out-of-bounds accesses raise :class:`KernelTrap`, the simulator's
analogue of the segmentation fault the paper observes when SIMCoV's
boundary check is removed on a large grid (Section VI-D).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..errors import KernelTrap, LaunchError
from ..ir.function import Function

#: Poison value used to fill uninitialised shared memory.  Chosen to be
#: loud: any computation that consumes it will produce visibly wrong
#: output and fail validation, rather than silently succeeding the way a
#: zero fill would.
SHARED_POISON = float("nan")

GLOBAL_SPACE = "global"
SHARED_SPACE = "shared"


class BufferHandle:
    """Runtime handle for a global or shared memory array."""

    __slots__ = ("name", "space", "array")

    def __init__(self, name: str, space: str, array: np.ndarray):
        if space not in (GLOBAL_SPACE, SHARED_SPACE):
            raise LaunchError(f"unknown memory space {space!r}")
        if array.ndim != 1:
            raise LaunchError(
                f"buffer {name!r} must be one-dimensional (flatten host arrays before launch)"
            )
        self.name = name
        self.space = space
        self.array = array

    @property
    def size(self) -> int:
        return int(self.array.shape[0])

    def check_bounds(self, indices: np.ndarray, instruction=None) -> np.ndarray:
        """Validate *indices* and return them as ``int64``.

        Raises :class:`KernelTrap` on any out-of-bounds or non-finite index,
        which the GEVO fitness harness interprets as a failed test case.
        """
        return self.check_bounds_stats(indices, instruction)[0]

    def check_bounds_stats(self, indices: np.ndarray, instruction=None):
        """Validate *indices*; return ``(idx, lo, hi)`` with the extrema.

        The bounds check has to reduce the index vector to its min/max
        anyway, and the memory-pricing fast paths
        (:func:`transactions_from_stats` / :func:`conflicts_from_stats`)
        are keyed on exactly those extrema -- fusing the two means one
        reduction pass per executed memory instruction instead of three.
        ``lo``/``hi`` are Python ints; an empty access returns ``(0, -1)``
        (the sentinel both pricing helpers treat as "no lanes").
        """
        idx = np.asarray(indices)
        if idx.dtype.kind == "f":
            if not np.all(np.isfinite(idx)):
                raise KernelTrap(
                    f"non-finite index into {self.space} buffer {self.name!r}",
                    instruction=instruction,
                )
        idx = idx.astype(np.int64, copy=False)
        if not idx.size:
            return idx, 0, -1
        lo = int(idx.min())
        hi = int(idx.max())
        if lo < 0 or hi >= self.size:
            bad = lo if lo < 0 else hi
            raise KernelTrap(
                f"out-of-bounds access to {self.space} buffer {self.name!r} "
                f"(index {bad}, size {self.size})",
                instruction=instruction,
            )
        return idx, lo, hi

    def __repr__(self) -> str:
        return f"<BufferHandle {self.space}:{self.name}[{self.size}]>"


class ArenaBufferHandle(BufferHandle):
    """A buffer living inside a unified global-memory arena.

    Real GPUs place every ``cudaMalloc`` allocation in one address space, so
    a slightly out-of-bounds access usually reads a neighbouring allocation
    instead of faulting; only accesses that leave mapped memory fault.  This
    handle reproduces that: indices outside the logical buffer but inside
    the arena resolve to whatever lives there, indices outside the arena
    trap.  Section VI-D of the paper (SIMCoV's boundary-check removal
    passing small-grid tests but segfaulting on large grids) depends on
    exactly this behaviour.
    """

    __slots__ = ("offset", "logical_size", "arena")

    def __init__(self, name: str, arena: np.ndarray, offset: int, logical_size: int):
        super().__init__(name, GLOBAL_SPACE, arena)
        self.arena = arena
        self.offset = int(offset)
        self.logical_size = int(logical_size)

    @property
    def size(self) -> int:
        return self.logical_size

    def logical_view(self) -> np.ndarray:
        """The slice of the arena corresponding to the logical buffer."""
        return self.arena[self.offset:self.offset + self.logical_size]

    def check_bounds_stats(self, indices: np.ndarray, instruction=None):
        idx = np.asarray(indices)
        if idx.dtype.kind == "f":
            if not np.all(np.isfinite(idx)):
                raise KernelTrap(
                    f"non-finite index into global buffer {self.name!r}",
                    instruction=instruction)
        idx = idx.astype(np.int64, copy=False) + self.offset
        if not idx.size:
            return idx, 0, -1
        lo = int(idx.min())
        hi = int(idx.max())
        if lo < 0 or hi >= self.arena.shape[0]:
            raise KernelTrap(
                f"illegal memory access: buffer {self.name!r} index "
                f"{lo - self.offset}..{hi - self.offset} leaves the "
                f"mapped device arena (logical size {self.logical_size})",
                instruction=instruction)
        return idx, lo, hi


class GlobalMemory:
    """The device's global memory: named buffers bound to host numpy arrays.

    Two modes exist:

    * the default mode gives every buffer its own allocation with strict
      bounds checking (any out-of-bounds access traps);
    * ``unified_arena=True`` packs all buffers into one float64 arena with
      guard regions, reproducing the CUDA single-address-space behaviour
      that the SIMCoV boundary-check study relies on.  Host arrays are
      copied in at bind time and copied back by :meth:`sync_back`.
    """

    def __init__(self, unified_arena: bool = False, guard_elements: int = 24):
        self._buffers: Dict[str, BufferHandle] = {}
        self.unified_arena = unified_arena
        self.guard_elements = int(guard_elements)
        self._arena: np.ndarray = np.zeros(0, dtype=np.float64)
        self._host_arrays: Dict[str, np.ndarray] = {}

    def bind(self, name: str, array: np.ndarray) -> BufferHandle:
        """Bind a host array as a global buffer (device-resident, in place)."""
        if not isinstance(array, np.ndarray):
            raise LaunchError(
                f"buffer argument {name!r} must be a numpy array, got {type(array)!r}"
            )
        arr = array if array.ndim == 1 else array.reshape(-1)
        if self.unified_arena:
            handle = self._bind_in_arena(name, arr)
        else:
            handle = BufferHandle(name, GLOBAL_SPACE, arr)
        self._buffers[name] = handle
        return handle

    def _bind_in_arena(self, name: str, array: np.ndarray) -> ArenaBufferHandle:
        offset = self._arena.shape[0] + self.guard_elements
        new_size = offset + array.shape[0]
        grown = np.zeros(new_size, dtype=np.float64)
        grown[: self._arena.shape[0]] = self._arena
        grown[offset:offset + array.shape[0]] = array.astype(np.float64)
        self._arena = grown
        self._host_arrays[name] = array
        # Rebuild existing handles against the grown arena so every handle
        # shares the same backing storage.
        for existing_name, existing in list(self._buffers.items()):
            if isinstance(existing, ArenaBufferHandle):
                rebuilt = ArenaBufferHandle(existing_name, self._arena,
                                            existing.offset, existing.logical_size)
                self._buffers[existing_name] = rebuilt
        return ArenaBufferHandle(name, self._arena, offset, array.shape[0])

    def finalize_arena(self) -> None:
        """Append the tail guard region once every buffer is bound."""
        if not self.unified_arena:
            return
        grown = np.zeros(self._arena.shape[0] + self.guard_elements, dtype=np.float64)
        grown[: self._arena.shape[0]] = self._arena
        self._arena = grown
        for name, handle in list(self._buffers.items()):
            if isinstance(handle, ArenaBufferHandle):
                self._buffers[name] = ArenaBufferHandle(name, self._arena,
                                                        handle.offset, handle.logical_size)

    def sync_back(self) -> None:
        """Copy arena contents back into the host arrays (arena mode only)."""
        if not self.unified_arena:
            return
        for name, host in self._host_arrays.items():
            handle = self._buffers[name]
            if isinstance(handle, ArenaBufferHandle):
                host[...] = handle.logical_view().astype(host.dtype)

    def get(self, name: str) -> BufferHandle:
        try:
            return self._buffers[name]
        except KeyError:
            raise LaunchError(f"no global buffer bound for parameter {name!r}") from None

    def names(self) -> Iterable[str]:
        return self._buffers.keys()

    def total_bytes(self) -> int:
        if self.unified_arena:
            return int(self._arena.nbytes)
        return sum(h.array.nbytes for h in self._buffers.values())


class SharedMemoryBlock:
    """The shared memory of one thread block.

    One array is allocated per ``shared`` declaration of the kernel.  The
    fill value is poison (NaN) by default; a simulator option allows a zero
    fill to mimic debugging environments, but the default matches hardware
    semantics where shared memory contents are undefined at kernel start.
    """

    def __init__(self, function: Function, zero_fill: bool = False):
        self._arrays: Dict[str, BufferHandle] = {}
        self.bytes_allocated = 0
        for decl in function.shared:
            if decl.dtype == "int":
                fill = 0 if zero_fill else np.iinfo(np.int64).min // 2
                array = np.full(decl.size, fill, dtype=np.int64)
            else:
                fill = 0.0 if zero_fill else SHARED_POISON
                array = np.full(decl.size, fill, dtype=np.float64)
            self._arrays[decl.name] = BufferHandle(decl.name, SHARED_SPACE, array)
            self.bytes_allocated += array.nbytes

    def get(self, name: str) -> BufferHandle:
        try:
            return self._arrays[name]
        except KeyError:
            raise KernelTrap(f"kernel references undeclared shared array {name!r}") from None

    def handles(self) -> Dict[str, BufferHandle]:
        return dict(self._arrays)


def coalesced_transactions(indices: np.ndarray, segment_size: int = 32) -> int:
    """Number of memory transactions a warp access generates.

    Global memory accesses are serviced in segments of
    ``segment_size`` elements (callers pass ``GpuArch.memory_segment_size``
    -- the default only serves standalone use); a fully coalesced access
    touches one segment, a strided or scattered access touches up to one
    per lane.  The cost model charges per transaction, which is how the
    simulator reproduces the benefit of coalesced access patterns.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return 0
    return transactions_from_stats(idx, int(idx.min()), int(idx.max()), segment_size)


def transactions_from_stats(idx: np.ndarray, lo: int, hi: int, segment_size: int) -> int:
    """:func:`coalesced_transactions` given precomputed index extrema.

    The hot tiers obtain ``(lo, hi)`` for free from the fused bounds check
    (``BufferHandle.check_bounds_stats``); when the extrema land in at most
    two adjacent segments the count is exact without sorting -- which is
    the overwhelmingly common case for coalesced kernels.  An empty access
    is encoded as ``(lo, hi) == (0, -1)`` and prices to 0 transactions.
    """
    span = hi // segment_size - lo // segment_size
    if span <= 1:
        # Both extrema exist in the access, so a 0-segment span is exactly
        # one transaction and a 1-segment span exactly two (and the empty
        # sentinel gives span == -1 -> 0).
        return span + 1
    # Equivalent to np.unique(...).size, without the wrapper overhead (this
    # runs once per executed global-memory instruction).
    segments = idx // segment_size
    segments.sort()
    return int(np.count_nonzero(segments[1:] != segments[:-1])) + 1


def bank_conflicts(indices: np.ndarray, num_banks: int = 32) -> int:
    """Worst-case shared-memory bank conflict degree for a warp access.

    Returns the maximum number of lanes that hit the same bank (1 means
    conflict free); the cost model charges the excess serialisation.
    ``num_banks`` must be positive (bank ids are ``index % num_banks``,
    non-negative for any index the bounds check lets through); callers
    pass ``GpuArch.shared_banks``, the default only serves standalone use.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return 1
    return conflicts_from_stats(idx, int(idx.min()), int(idx.max()), num_banks)


def conflicts_from_stats(idx: np.ndarray, lo: int, hi: int, num_banks: int) -> int:
    """:func:`bank_conflicts` given precomputed index extrema.

    A contiguous ascending access (the ``tile[tid]`` pattern) is provably
    conflict free up to the bank wrap-around, so the common case skips the
    bincount.  Contiguity needs both the range check *and* the adjacent
    deltas (``[0, 1, 1, 3]`` has ``hi - lo == n - 1`` without being
    contiguous).  The empty sentinel ``(0, -1)`` prices to degree 1.
    """
    n = idx.size
    if n <= 1:
        return 1
    if hi - lo == n - 1 and bool((idx[1:] == idx[:-1] + 1).all()):
        # n consecutive addresses: each bank is hit ceil(n / num_banks) times.
        return -(-n // num_banks)
    # Equivalent to np.unique(..., return_counts=True)[1].max(): the zero
    # counts np.bincount adds for untouched banks never win the max.
    return int(np.bincount(idx % num_banks).max())
