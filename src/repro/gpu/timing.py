"""Cycle cost model of the simulated GPU.

The model is deliberately simple -- a per-instruction issue cost plus
memory/synchronisation surcharges -- but it captures every mechanism the
paper's discovered optimizations exploit:

* **branch divergence**: the SIMT executor runs both sides of a divergent
  branch serially, so the *structure* of execution (not this module)
  accounts for the dominant cost; this module merely prices each executed
  instruction once per warp.
* **memory-space latency**: global >> shared >> registers/shuffles, with
  coalescing and bank-conflict surcharges (Section VI-A's shared-vs-register
  trade-off, Section VI-C's redundant memset traffic).
* **barriers**: ``__syncthreads`` costs issue latency here plus the warp
  round-up applied by the block scheduler (the V0 init loop pathology).
* **Volta sub-warp synchronisation**: ``ballot_sync``/``syncwarp`` are
  cheap on Pascal and expensive when
  ``arch.independent_thread_scheduling`` is set (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..ir.instructions import Instruction
from .arch import GpuArch
from .memory import GLOBAL_SPACE, SHARED_SPACE, BufferHandle, bank_conflicts, coalesced_transactions

import numpy as np


@dataclass
class MemoryAccessInfo:
    """Runtime facts about one memory instruction needed to price it."""

    handle: BufferHandle
    indices: np.ndarray


@dataclass
class CostModel:
    """Maps executed instructions to cycle costs for a given architecture."""

    arch: GpuArch
    #: Cumulative counters useful for reports (filled in as costs are charged).
    counters: Dict[str, float] = field(default_factory=dict)

    def _bump(self, key: str, amount: float) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + amount

    def instruction_cost(
        self,
        instruction: Instruction,
        active_lanes: int,
        memory: Optional[MemoryAccessInfo] = None,
    ) -> float:
        """Cycles charged to the issuing warp for one executed instruction."""
        arch = self.arch
        opcode = instruction.opcode
        if opcode in arch.cost_overrides:
            cost = float(arch.cost_overrides[opcode])
            self._bump("override_cycles", cost)
            return cost

        category = instruction.info.category
        if category in ("arith", "cmp", "intrinsic", "misc"):
            cost = float(arch.alu_latency)
            if opcode in ("div", "rem"):
                cost = float(arch.special_latency)
            elif opcode == "rand.uniform":
                cost = float(arch.rng_latency)
            self._bump("alu_cycles", cost)
            return cost

        if category == "control":
            cost = float(arch.branch_latency)
            self._bump("branch_cycles", cost)
            return cost

        if category in ("memory", "atomic"):
            return self._memory_cost(instruction, active_lanes, memory)

        if category == "sync":
            return self._sync_cost(instruction)

        # Unknown categories should not exist (the opcode registry is closed),
        # but default to an ALU issue so a future opcode cannot be free.
        return float(arch.alu_latency)

    # -- helpers -----------------------------------------------------------------
    def _memory_cost(
        self,
        instruction: Instruction,
        active_lanes: int,
        memory: Optional[MemoryAccessInfo],
    ) -> float:
        arch = self.arch
        is_atomic = instruction.info.category == "atomic"
        is_store = instruction.opcode in ("store", "memset")
        if memory is None:
            # A memory instruction that trapped before the access resolved.
            return float(arch.alu_latency)
        space = memory.handle.space
        if space == GLOBAL_SPACE:
            transactions = coalesced_transactions(memory.indices)
            base = arch.global_store_latency if is_store else arch.global_latency
            cost = base + arch.global_per_transaction * max(0, transactions - 1)
            if is_atomic:
                cost += (arch.atomic_latency
                         + arch.atomic_serialization * max(0, active_lanes - 1))
            self._bump("global_cycles", cost)
            self._bump("global_transactions", transactions)
            return float(cost)
        if space == SHARED_SPACE:
            conflict = bank_conflicts(memory.indices)
            base = arch.shared_store_latency if is_store else arch.shared_latency
            cost = base + arch.shared_conflict_penalty * max(0, conflict - 1)
            if is_atomic:
                cost += (arch.atomic_latency // 2
                         + (arch.atomic_serialization // 2) * max(0, active_lanes - 1))
            self._bump("shared_cycles", cost)
            return float(cost)
        return float(arch.alu_latency)

    def _sync_cost(self, instruction: Instruction) -> float:
        arch = self.arch
        opcode = instruction.opcode
        if opcode == "syncthreads":
            cost = float(arch.barrier_latency)
            self._bump("barrier_cycles", cost)
            return cost
        if opcode in ("ballot.sync", "syncwarp"):
            # The Volta-specific warp re-synchronisation cost (Section VI-B):
            # near-free on Pascal, tens of cycles on Volta.
            cost = float(arch.warp_sync_latency if arch.independent_thread_scheduling
                         else arch.alu_latency)
            self._bump("warp_sync_cycles", cost)
            return cost
        if opcode == "activemask":
            cost = float(arch.alu_latency)
            self._bump("warp_sync_cycles", cost)
            return cost
        if opcode.startswith("shfl."):
            cost = float(arch.shuffle_latency)
            self._bump("shuffle_cycles", cost)
            return cost
        return float(arch.alu_latency)


def cycles_to_milliseconds(cycles: float, arch: GpuArch) -> float:
    """Convert a cycle count into milliseconds at the architecture's clock."""
    return cycles / (arch.clock_mhz * 1000.0)
