"""Cycle cost model of the simulated GPU.

The model is deliberately simple -- a per-instruction issue cost plus
memory/synchronisation surcharges -- but it captures every mechanism the
paper's discovered optimizations exploit:

* **branch divergence**: the SIMT executor runs both sides of a divergent
  branch serially, so the *structure* of execution (not this module)
  accounts for the dominant cost; this module merely prices each executed
  instruction once per warp.
* **memory-space latency**: global >> shared >> registers/shuffles, with
  coalescing and bank-conflict surcharges (Section VI-A's shared-vs-register
  trade-off, Section VI-C's redundant memset traffic).
* **barriers**: ``__syncthreads`` costs issue latency here plus the warp
  round-up applied by the block scheduler (the V0 init loop pathology).
* **Volta sub-warp synchronisation**: ``ballot_sync``/``syncwarp`` are
  cheap on Pascal and expensive when
  ``arch.independent_thread_scheduling`` is set (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..ir.instructions import Instruction
from .arch import GpuArch
from .memory import GLOBAL_SPACE, SHARED_SPACE, BufferHandle, bank_conflicts, coalesced_transactions

import numpy as np


@dataclass
class MemoryAccessInfo:
    """Runtime facts about one memory instruction needed to price it."""

    handle: BufferHandle
    indices: np.ndarray


@dataclass
class CostModel:
    """Maps executed instructions to cycle costs for a given architecture."""

    arch: GpuArch
    #: Cumulative counters useful for reports (filled in as costs are charged).
    counters: Dict[str, float] = field(default_factory=dict)

    def _bump(self, key: str, amount: float) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + amount

    def instruction_cost(
        self,
        instruction: Instruction,
        active_lanes: int,
        memory: Optional[MemoryAccessInfo] = None,
    ) -> float:
        """Cycles charged to the issuing warp for one executed instruction.

        Launch-invariant costs come from :func:`static_instruction_cost` --
        the same function the decode step bakes from, so the reference and
        fast paths cannot drift -- leaving only the memory/atomic pricing
        (which depends on the addresses the warp touched) computed here.
        """
        static = static_instruction_cost(self.arch, instruction)
        if static is not None:
            cost, counter_key = static
            if counter_key is not None:
                self._bump(counter_key, cost)
            return cost
        return self._memory_cost(instruction, active_lanes, memory)

    # -- helpers -----------------------------------------------------------------
    def _memory_cost(
        self,
        instruction: Instruction,
        active_lanes: int,
        memory: Optional[MemoryAccessInfo],
    ) -> float:
        arch = self.arch
        is_atomic = instruction.info.category == "atomic"
        is_store = instruction.opcode in ("store", "memset")
        if memory is None:
            # A memory instruction that trapped before the access resolved.
            return float(arch.alu_latency)
        space = memory.handle.space
        if space == GLOBAL_SPACE:
            transactions = coalesced_transactions(memory.indices)
            base = arch.global_store_latency if is_store else arch.global_latency
            cost = base + arch.global_per_transaction * max(0, transactions - 1)
            if is_atomic:
                cost += (arch.atomic_latency
                         + arch.atomic_serialization * max(0, active_lanes - 1))
            self._bump("global_cycles", cost)
            self._bump("global_transactions", transactions)
            return float(cost)
        if space == SHARED_SPACE:
            conflict = bank_conflicts(memory.indices)
            base = arch.shared_store_latency if is_store else arch.shared_latency
            cost = base + arch.shared_conflict_penalty * max(0, conflict - 1)
            if is_atomic:
                cost += (arch.atomic_latency // 2
                         + (arch.atomic_serialization // 2) * max(0, active_lanes - 1))
            self._bump("shared_cycles", cost)
            return float(cost)
        return float(arch.alu_latency)


def static_instruction_cost(
    arch: GpuArch, instruction: Instruction
) -> Optional[Tuple[float, Optional[str]]]:
    """``(cycles, counter key)`` when an instruction's cost is launch-invariant.

    The single source of truth for static pricing: every category except
    memory and atomics (whose cost depends on the addresses the warp
    actually touches) prices an instruction from the architecture alone.
    :meth:`CostModel.instruction_cost` charges from this at runtime and
    the decode step bakes it into the instruction stream, so the reference
    and fast paths cannot disagree.  Returns ``None`` for the dynamic
    cases; the counter key is ``None`` where the charge bumps no counter.
    """
    opcode = instruction.opcode
    if opcode in arch.cost_overrides:
        return float(arch.cost_overrides[opcode]), "override_cycles"
    category = instruction.info.category
    if category in ("arith", "cmp", "intrinsic", "misc"):
        if opcode in ("div", "rem"):
            return float(arch.special_latency), "alu_cycles"
        if opcode == "rand.uniform":
            return float(arch.rng_latency), "alu_cycles"
        return float(arch.alu_latency), "alu_cycles"
    if category == "control":
        return float(arch.branch_latency), "branch_cycles"
    if category in ("memory", "atomic"):
        return None
    if category == "sync":
        if opcode == "syncthreads":
            return float(arch.barrier_latency), "barrier_cycles"
        if opcode in ("ballot.sync", "syncwarp"):
            # The Volta-specific warp re-synchronisation cost (Section VI-B):
            # near-free on Pascal, tens of cycles on Volta.
            cost = float(arch.warp_sync_latency if arch.independent_thread_scheduling
                         else arch.alu_latency)
            return cost, "warp_sync_cycles"
        if opcode == "activemask":
            return float(arch.alu_latency), "warp_sync_cycles"
        if opcode.startswith("shfl."):
            return float(arch.shuffle_latency), "shuffle_cycles"
        return float(arch.alu_latency), None
    return float(arch.alu_latency), None


def cycles_to_milliseconds(cycles: float, arch: GpuArch) -> float:
    """Convert a cycle count into milliseconds at the architecture's clock."""
    return cycles / (arch.clock_mhz * 1000.0)
