"""Cycle cost model of the simulated GPU.

The model is deliberately simple -- a per-instruction issue cost plus
memory/synchronisation surcharges -- but it captures every mechanism the
paper's discovered optimizations exploit:

* **branch divergence**: the SIMT executor runs both sides of a divergent
  branch serially, so the *structure* of execution (not this module)
  accounts for the dominant cost; this module merely prices each executed
  instruction once per warp.
* **memory-space latency**: global >> shared >> registers/shuffles, with
  coalescing and bank-conflict surcharges (Section VI-A's shared-vs-register
  trade-off, Section VI-C's redundant memset traffic).
* **barriers**: ``__syncthreads`` costs issue latency here plus the warp
  round-up applied by the block scheduler (the V0 init loop pathology).
* **Volta sub-warp synchronisation**: ``ballot_sync``/``syncwarp`` are
  cheap on Pascal and expensive when
  ``arch.independent_thread_scheduling`` is set (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..ir.instructions import Instruction
from .arch import GpuArch
from .memory import (
    GLOBAL_SPACE,
    SHARED_SPACE,
    BufferHandle,
    bank_conflicts,
    coalesced_transactions,
    conflicts_from_stats,
    transactions_from_stats,
)

import numpy as np


@dataclass
class MemoryAccessInfo:
    """Runtime facts about one memory instruction needed to price it."""

    handle: BufferHandle
    indices: np.ndarray
    #: ``(min, max)`` of ``indices`` when the access path already reduced
    #: them (the decoded/JIT tiers fuse the reductions into the bounds
    #: check; ``(0, -1)`` encodes an empty access).  ``None`` means the
    #: pricing re-reduces from ``indices`` -- same result either way.
    stats: Optional[Tuple[int, int]] = None


@dataclass
class CostModel:
    """Maps executed instructions to cycle costs for a given architecture."""

    arch: GpuArch
    #: Cumulative counters useful for reports (filled in as costs are charged).
    counters: Dict[str, float] = field(default_factory=dict)

    def _bump(self, key: str, amount: float) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + amount

    def instruction_cost(
        self,
        instruction: Instruction,
        active_lanes: int,
        memory: Optional[MemoryAccessInfo] = None,
    ) -> float:
        """Cycles charged to the issuing warp for one executed instruction.

        Launch-invariant costs come from :func:`static_instruction_cost` --
        the same function the decode step bakes from, so the reference and
        fast paths cannot drift -- leaving only the memory/atomic pricing
        (which depends on the addresses the warp touched) computed here.
        """
        static = static_instruction_cost(self.arch, instruction)
        if static is not None:
            cost, counter_key = static
            if counter_key is not None:
                self._bump(counter_key, cost)
            return cost
        return self._memory_cost(instruction, active_lanes, memory)

    # -- helpers -----------------------------------------------------------------
    def _memory_cost(
        self,
        instruction: Instruction,
        active_lanes: int,
        memory: Optional[MemoryAccessInfo],
    ) -> float:
        if memory is None:
            # A memory instruction that trapped before the access resolved.
            cost = float(self.arch.alu_latency)
            self._bump("alu_cycles", cost)
            return cost
        return self.price_access(
            memory,
            active_lanes,
            instruction.opcode in ("store", "memset"),
            instruction.info.category == "atomic",
        )

    def price_access(
        self,
        memory: MemoryAccessInfo,
        active_lanes: int,
        is_store: bool,
        is_atomic: bool,
    ) -> float:
        """Price one resolved warp memory access and bump its counters.

        The single dynamic-pricing seam shared by all three interpreter
        tiers (the JIT tier inlines the equivalent arithmetic into its
        generated source, baking the same ``GpuArch`` geometry and
        latencies as literals).  Geometry -- transaction segment width and
        bank count -- always comes from the arch, never from literals.
        Every charge lands in a counter, so the counter sums equal the
        total cycles charged; ``global_transactions`` / ``shared_conflicts``
        record the per-access evidence the multi-objective fitness reads.
        """
        arch = self.arch
        space = memory.handle.space
        stats = memory.stats
        if space == GLOBAL_SPACE:
            if stats is not None:
                transactions = transactions_from_stats(
                    memory.indices, stats[0], stats[1], arch.memory_segment_size)
            else:
                transactions = coalesced_transactions(
                    memory.indices, arch.memory_segment_size)
            base = arch.global_store_latency if is_store else arch.global_latency
            cost = base + arch.global_per_transaction * max(0, transactions - 1)
            if is_atomic:
                cost += (arch.atomic_latency
                         + arch.atomic_serialization * max(0, active_lanes - 1))
            self._bump("global_cycles", cost)
            self._bump("global_transactions", transactions)
            return float(cost)
        if space == SHARED_SPACE:
            if stats is not None:
                conflict = conflicts_from_stats(
                    memory.indices, stats[0], stats[1], arch.shared_banks)
            else:
                conflict = bank_conflicts(memory.indices, arch.shared_banks)
            base = arch.shared_store_latency if is_store else arch.shared_latency
            cost = base + arch.shared_conflict_penalty * max(0, conflict - 1)
            if is_atomic:
                cost += (arch.atomic_latency // 2
                         + (arch.atomic_serialization // 2) * max(0, active_lanes - 1))
            self._bump("shared_cycles", cost)
            self._bump("shared_conflicts", conflict)
            return float(cost)
        cost = float(arch.alu_latency)
        self._bump("alu_cycles", cost)
        return cost


def static_instruction_cost(
    arch: GpuArch, instruction: Instruction
) -> Optional[Tuple[float, Optional[str]]]:
    """``(cycles, counter key)`` when an instruction's cost is launch-invariant.

    The single source of truth for static pricing: every category except
    memory and atomics (whose cost depends on the addresses the warp
    actually touches) prices an instruction from the architecture alone.
    :meth:`CostModel.instruction_cost` charges from this at runtime and
    the decode step bakes it into the instruction stream, so the reference
    and fast paths cannot disagree.  Returns ``None`` for the dynamic
    cases; every static charge names a counter, so the counter sums always
    equal the total cycles charged.
    """
    opcode = instruction.opcode
    if opcode in arch.cost_overrides:
        return float(arch.cost_overrides[opcode]), "override_cycles"
    category = instruction.info.category
    if category in ("arith", "cmp", "intrinsic", "misc"):
        if opcode in ("div", "rem"):
            return float(arch.special_latency), "alu_cycles"
        if opcode == "rand.uniform":
            return float(arch.rng_latency), "alu_cycles"
        return float(arch.alu_latency), "alu_cycles"
    if category == "control":
        return float(arch.branch_latency), "branch_cycles"
    if category in ("memory", "atomic"):
        return None
    if category == "sync":
        if opcode == "syncthreads":
            return float(arch.barrier_latency), "barrier_cycles"
        if opcode in ("ballot.sync", "syncwarp"):
            # The Volta-specific warp re-synchronisation cost (Section VI-B):
            # near-free on Pascal, tens of cycles on Volta.
            cost = float(arch.warp_sync_latency if arch.independent_thread_scheduling
                         else arch.alu_latency)
            return cost, "warp_sync_cycles"
        if opcode == "activemask":
            return float(arch.alu_latency), "warp_sync_cycles"
        if opcode.startswith("shfl."):
            return float(arch.shuffle_latency), "shuffle_cycles"
        return float(arch.alu_latency), "alu_cycles"
    return float(arch.alu_latency), "alu_cycles"


def cycles_to_milliseconds(cycles: float, arch: GpuArch) -> float:
    """Convert a cycle count into milliseconds at the architecture's clock."""
    return cycles / (arch.clock_mhz * 1000.0)
