"""Population-batched lockstep execution: N launches in one NumPy pass.

The search loop re-simulates near-identical kernels: every SIMCoV
fitness evaluation launches the same program with different scalar
parameters, and every GEVO generation is full of structurally identical
clones that differ only in baked constants.  Warp state is already
``(lanes,)`` NumPy arrays, so N such launches stack into ``(N, lanes)``
arrays and execute together, amortising the per-instruction Python
overhead of the dispatch tier across the whole population.

The batching axis is *independent launches*: each row of the stack is
one complete launch with its own (copied) global memory, scalar
parameters and constant operands.  Rows never share mutable state, so
any interleaving of their execution is equivalent to running them
sequentially -- which is exactly what the solo path does.

Execution is *group lockstep with splitting*.  A group is a set of rows
at the same program counter with the same reconvergence-stack shape
(stack entries share pcs and reconvergence labels; only the ``(rows,
lanes)`` masks differ per row).  Straight-line segments execute once per
group over stacked operands; a conditional branch classifies each row as
uniformly-taken, uniformly-not-taken or divergent and splits the group
into at most three subgroups; ``ret`` splits by per-row stack pop count.
Groups only ever split -- they never merge -- so within a group the
dynamic instruction sequence, cycle charges, counter bumps and profile
increments are the solo tiers' sequences exactly, vectorised over rows.

Anything the batched model cannot reproduce bit-for-bit -- a would-trap
condition (out-of-bounds or non-finite index, division by zero among
active lanes, undefined register, instruction-budget exhaustion), a
barrier, a non-exact segment, cross-row buffer aliasing -- raises
:class:`BatchAbort` *before* any host array is written (all work happens
on stacked copies; host write-back is the final step of a fully
successful batch).  The caller then falls back to per-row solo launches,
so per-candidate traps, messages and partial-write semantics are the
solo path's own.  Equivalence with the solo tiers is pinned by
``tests/gpu/test_batched_equivalence.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.function import Function
from ..ir.values import Const, Reg
from .arch import GpuArch
from .decoded import _IDENTITY_OPCODES, decode_function
from .interpreter import (
    _ARITHMETIC,
    STEP_BR,
    STEP_CONDBR,
    STEP_RET,
    STEP_SEGMENT,
)
from .rng import counter_uniform

_INT = np.int64
_FLOAT = np.float64


class BatchAbort(Exception):
    """The batched path cannot model this launch bit-for-bit; run solo.

    Raised before any host state is modified: the batch works on stacked
    copies and only writes back after a fully successful run, so the
    caller's per-row solo fallback always starts from pristine inputs.
    """


#: Opcodes the batched executor models.  Everything else (barriers,
#: warp-wide queries/shuffles, memset) falls back to solo launches.
_BATCHABLE_OPCODES = (
    frozenset(_ARITHMETIC)
    | _IDENTITY_OPCODES
    | frozenset(("load", "store", "rand.uniform", "nop",
                 "atomic.add", "atomic.max", "atomic.exch", "atomic.cas",
                 "br", "condbr", "ret"))
)


# --------------------------------------------------------------------------- stacked memory
class StackedBuffer:
    """One logical buffer across all rows of a batch.

    ``flat`` is the raveled view of the row-major stacked storage:
    element ``i`` of row ``r`` lives at ``r * row_stride + offset + i``.
    ``bound`` is the per-row addressable range (the whole arena in
    unified-arena mode, the logical size otherwise) -- the exact range
    the solo bounds check enforces.
    """

    __slots__ = ("name", "flat", "row_stride", "offset", "size", "bound", "dtype")

    def __init__(self, name: str, flat: np.ndarray, row_stride: int,
                 offset: int, size: int, bound: int):
        self.name = name
        self.flat = flat
        self.row_stride = row_stride
        self.offset = offset
        self.size = size
        self.bound = bound
        self.dtype = flat.dtype


# --------------------------------------------------------------------------- batched program
class _BatchedSegment:
    __slots__ = ("kind", "start", "count", "static_cycles", "counter_totals", "body")

    def __init__(self, start, count, static_cycles, counter_totals, body):
        self.kind = STEP_SEGMENT
        self.start = start
        self.count = count
        self.static_cycles = static_cycles
        self.counter_totals = counter_totals
        #: list of (DecodedInstruction, batched execute fn)
        self.body = body


class _BatchedControl:
    __slots__ = ("kind", "instruction", "static_cost", "counter_key", "uid",
                 "target", "true_target", "false_target", "reconvergence",
                 "condition")

    def __init__(self, step):
        self.kind = step.kind
        self.instruction = step.instruction
        self.static_cost = step.static_cost
        self.counter_key = step.counter_key
        self.uid = step.instruction.uid
        self.target = step.target
        self.true_target = step.true_target
        self.false_target = step.false_target
        self.reconvergence = step.reconvergence
        self.condition = None


class _BatchedBlock:
    __slots__ = ("label", "length", "steps", "step_of_index")

    def __init__(self, label, length, steps, step_of_index):
        self.label = label
        self.length = length
        self.steps = steps
        self.step_of_index = step_of_index


class _BatchedProgram:
    __slots__ = ("blocks", "entry_label", "lanes")

    def __init__(self, blocks, entry_label, lanes):
        self.blocks = blocks
        self.entry_label = entry_label
        self.lanes = lanes


def _const_lane_array(value, lanes: int) -> np.ndarray:
    """Shared per-lane array for a constant (same dtype rules as decode)."""
    if isinstance(value, bool):
        array = np.full(lanes, value, dtype=bool)
    else:
        array = np.full(lanes, value, dtype=_INT if isinstance(value, int) else _FLOAT)
    array.flags.writeable = False
    return array


def _rows(value: np.ndarray, shape) -> np.ndarray:
    """Broadcast a register/constant value to the group's (rows, lanes)."""
    if value.shape != shape:
        return np.broadcast_to(value, shape)
    return value


def _numeric_getter(operand, uid: int, operand_index: int, lanes: int):
    if isinstance(operand, Const):
        key = (uid, operand_index)
        shared = _const_lane_array(operand.value, lanes)

        def get_const(group):
            column = group.columns.get(key)
            return shared if column is None else column

        return get_const
    if isinstance(operand, Reg):
        name = operand.name

        def get_reg(group):
            value = group.registers.get(name)
            if value is None or isinstance(value, StackedBuffer):
                raise BatchAbort(f"register %{name} is not numeric here")
            return value

        return get_reg

    def get_unsupported(group):
        raise BatchAbort(f"unsupported operand {operand!r}")

    return get_unsupported


def _buffer_getter(operand):
    if isinstance(operand, Reg):
        name = operand.name

        def get_handle(group):
            value = group.registers.get(name)
            if not isinstance(value, StackedBuffer):
                raise BatchAbort(f"register %{name} is not a buffer here")
            return value

        return get_handle

    def get_unsupported(group):
        raise BatchAbort(f"unsupported buffer operand {operand!r}")

    return get_unsupported


# --------------------------------------------------------------------------- handlers
def _active_indices(handle: StackedBuffer, index: np.ndarray,
                    mask: np.ndarray, full: bool):
    """Bounds-check and offset the stacked index array.

    Returns ``(adj, act, starts, cols)``: in the full case ``adj`` is the
    (rows, lanes) adjusted index array and the rest are ``None``; in the
    masked case ``act`` is the flat row-major active index vector with
    per-row ``starts`` boundaries and ``cols`` lane positions.  Any index
    the solo bounds check would reject aborts the batch.
    """
    if full:
        if index.dtype.kind == "f":
            if not np.all(np.isfinite(index)):
                raise BatchAbort("non-finite index")
        adj = index.astype(np.int64) + handle.offset
        if adj.size and (int(adj.min()) < 0 or int(adj.max()) >= handle.bound):
            raise BatchAbort("index outside the addressable range")
        return adj, None, None, None
    act = index[mask]
    if act.dtype.kind == "f":
        if not np.all(np.isfinite(act)):
            raise BatchAbort("non-finite index")
    act = act.astype(np.int64) + handle.offset
    if act.size and (int(act.min()) < 0 or int(act.max()) >= handle.bound):
        raise BatchAbort("index outside the addressable range")
    counts = np.count_nonzero(mask, axis=1)
    starts = np.concatenate(([0], np.cumsum(counts)))
    cols = np.nonzero(mask)[1]
    return None, act, starts, cols


def _transactions_full(adj: np.ndarray, segment_size: int) -> np.ndarray:
    """Per-row coalesced transaction counts (all lanes active)."""
    lo = adj.min(axis=1)
    hi = adj.max(axis=1)
    span = hi // segment_size - lo // segment_size
    tx = span + 1
    multi = span > 1
    if multi.any():
        segments = np.sort(adj[multi] // segment_size, axis=1)
        tx[multi] = (segments[:, 1:] != segments[:, :-1]).sum(axis=1) + 1
    return tx


def _transactions_masked(act: np.ndarray, starts: np.ndarray,
                         segment_size: int) -> np.ndarray:
    rows = starts.shape[0] - 1
    tx = np.zeros(rows, dtype=np.int64)
    for row in range(rows):
        part = act[starts[row]:starts[row + 1]]
        if not part.size:
            continue
        lo = int(part.min())
        hi = int(part.max())
        span = hi // segment_size - lo // segment_size
        if span <= 1:
            tx[row] = span + 1
        else:
            segments = np.sort(part // segment_size)
            tx[row] = int(np.count_nonzero(segments[1:] != segments[:-1])) + 1
    return tx


def _price_global(group, tx: np.ndarray, active: np.ndarray,
                  is_store: bool, is_atomic: bool) -> np.ndarray:
    """Per-row replica of ``CostModel.price_access`` for global memory."""
    arch = group.arch
    base = arch.global_store_latency if is_store else arch.global_latency
    cost = base + arch.global_per_transaction * np.maximum(0, tx - 1)
    if is_atomic:
        cost = (cost + arch.atomic_latency
                + arch.atomic_serialization * np.maximum(0, active - 1))
    cost = cost.astype(np.float64)
    group.bump("global_cycles", cost)
    group.bump("global_transactions", tx.astype(np.float64))
    group.cycles += cost
    return cost


def _build_arith(d, lanes: int):
    handler = _ARITHMETIC[d.instruction.opcode]
    instruction = d.instruction
    dest = instruction.dest
    getters = [_numeric_getter(op, d.uid, i, lanes)
               for i, op in enumerate(instruction.operands)]
    # The shared handlers broadcast (lanes,) / (rows, 1) operands
    # natively; only the division-by-zero scan indexes an operand with
    # the full (rows, lanes) mask and needs an explicit broadcast.
    if instruction.opcode in ("div", "rem"):

        def execute(group, mask, full):
            operands = [get(group) for get in getters]
            operands[1] = _rows(np.asarray(operands[1]), mask.shape)
            result = handler(group, instruction, operands)
            group.write(dest, result, mask)
            return None

        return execute

    def execute(group, mask, full):
        operands = [get(group) for get in getters]
        result = handler(group, instruction, operands)
        group.write(dest, result, mask)
        return None

    return execute


def _build_identity_op(d):
    opcode = d.instruction.opcode
    dest = d.instruction.dest

    def execute(group, mask, full):
        group.write(dest, group.identity[opcode], mask)
        return None

    return execute


def _build_load(d, lanes: int):
    get_base = _buffer_getter(d.instruction.operands[0])
    get_index = _numeric_getter(d.instruction.operands[1], d.uid, 1, lanes)
    dest = d.instruction.dest

    def execute(group, mask, full):
        handle = get_base(group)
        index = _rows(get_index(group), mask.shape)
        adj, act, starts, cols = _active_indices(handle, index, mask, full)
        stride = handle.row_stride
        slots = group.row_slots
        if full:
            values = handle.flat[slots[:, None] * stride + adj]
            group.write(dest, values, mask)
            tx = _transactions_full(adj, group.arch.memory_segment_size)
            active = np.full(len(slots), lanes, dtype=np.int64)
        else:
            result = np.zeros(mask.shape, dtype=handle.dtype)
            rr = np.nonzero(mask)[0]
            result[rr, cols] = handle.flat[slots[rr] * stride + act]
            group.write(dest, result, mask)
            tx = _transactions_masked(act, starts, group.arch.memory_segment_size)
            active = np.count_nonzero(mask, axis=1)
        return _price_global(group, tx, active, False, False)

    return execute


def _build_store(d, lanes: int):
    get_base = _buffer_getter(d.instruction.operands[0])
    get_index = _numeric_getter(d.instruction.operands[1], d.uid, 1, lanes)
    get_value = _numeric_getter(d.instruction.operands[2], d.uid, 2, lanes)

    def execute(group, mask, full):
        handle = get_base(group)
        index = _rows(get_index(group), mask.shape)
        value = _rows(get_value(group), mask.shape)
        adj, act, starts, cols = _active_indices(handle, index, mask, full)
        stride = handle.row_stride
        slots = group.row_slots
        if full:
            handle.flat[slots[:, None] * stride + adj] = value.astype(handle.dtype)
            tx = _transactions_full(adj, group.arch.memory_segment_size)
            active = np.full(len(slots), lanes, dtype=np.int64)
        else:
            rr = np.nonzero(mask)[0]
            handle.flat[slots[rr] * stride + act] = \
                value[rr, cols].astype(handle.dtype)
            tx = _transactions_masked(act, starts, group.arch.memory_segment_size)
            active = np.count_nonzero(mask, axis=1)
        return _price_global(group, tx, active, True, False)

    return execute


def _build_atomic(d, lanes: int):
    opcode = d.instruction.opcode
    operands = d.instruction.operands
    get_base = _buffer_getter(operands[0])
    get_index = _numeric_getter(operands[1], d.uid, 1, lanes)
    if opcode == "atomic.cas":
        get_compare = _numeric_getter(operands[2], d.uid, 2, lanes)
        get_value = _numeric_getter(operands[3], d.uid, 3, lanes)
    else:
        get_compare = None
        get_value = _numeric_getter(operands[2], d.uid, 2, lanes)
    dest = d.instruction.dest

    def execute(group, mask, full):
        handle = get_base(group)
        shape = mask.shape
        index = _rows(get_index(group), shape)
        value = _rows(get_value(group), shape)
        compare = (_rows(get_compare(group), shape)
                   if get_compare is not None else None)
        adj, act, starts, cols = _active_indices(handle, index, mask, full)
        stride = handle.row_stride
        slots = group.row_slots
        flat = handle.flat
        if full:
            tx = _transactions_full(adj, group.arch.memory_segment_size)
            active = np.full(len(slots), lanes, dtype=np.int64)
        else:
            tx = _transactions_masked(act, starts, group.arch.memory_segment_size)
            active = np.count_nonzero(mask, axis=1)
        collision_free = False
        if full and lanes > 1:
            ordered = np.sort(adj, axis=1)
            collision_free = bool((ordered[:, 1:] != ordered[:, :-1]).all())
        if collision_free:
            # No within-row address collisions (rows are disjoint by
            # construction): element-wise reads/writes match the serial
            # per-lane loop exactly, including NaN comparison behaviour
            # (same reasoning as the dispatch tier's vectorised atomics).
            flat_idx = slots[:, None] * stride + adj
            old = flat[flat_idx]
            if opcode == "atomic.add":
                flat[flat_idx] = old + value
            elif opcode == "atomic.max":
                flat[flat_idx] = np.where(value > old, value, old)
            elif opcode == "atomic.cas":
                flat[flat_idx] = np.where(old == compare, value, old)
            else:  # atomic.exch
                flat[flat_idx] = value
            if dest is not None:
                group.write(dest, old, mask)
            return _price_global(group, tx, active, False, True)
        old_values = np.zeros(shape, dtype=handle.dtype)
        rows = len(slots)
        for row in range(rows):
            base = int(slots[row]) * stride
            if full:
                addresses = adj[row]
                row_lanes = range(lanes)
            else:
                addresses = act[starts[row]:starts[row + 1]]
                row_lanes = cols[starts[row]:starts[row + 1]]
            for position, lane in enumerate(row_lanes):
                address = base + int(addresses[position])
                old = flat[address]
                old_values[row, lane] = old
                new = value[row, lane]
                if opcode == "atomic.add":
                    flat[address] = old + new
                elif opcode == "atomic.max":
                    flat[address] = max(old, new)
                elif opcode == "atomic.exch":
                    flat[address] = new
                elif opcode == "atomic.cas":
                    if old == compare[row, lane]:
                        flat[address] = new
        if dest is not None:
            group.write(dest, old_values, mask)
        return _price_global(group, tx, active, False, True)

    return execute


def _build_rand(d, lanes: int):
    get_seed = _numeric_getter(d.instruction.operands[0], d.uid, 0, lanes)
    get_step = _numeric_getter(d.instruction.operands[1], d.uid, 1, lanes)
    get_salt = _numeric_getter(d.instruction.operands[2], d.uid, 2, lanes)
    dest = d.instruction.dest

    def execute(group, mask, full):
        seed = get_seed(group).astype(_INT)
        step = get_step(group).astype(_INT)
        salt = get_salt(group).astype(_INT)
        group.write(dest, counter_uniform(seed, step, salt), mask)
        return None

    return execute


def _build_nop(d):
    def execute(group, mask, full):
        return None

    return execute


def _build_batched_execute(d, lanes: int):
    opcode = d.instruction.opcode
    if opcode in _ARITHMETIC:
        return _build_arith(d, lanes)
    if opcode in _IDENTITY_OPCODES:
        return _build_identity_op(d)
    if opcode == "load":
        return _build_load(d, lanes)
    if opcode == "store":
        return _build_store(d, lanes)
    if opcode.startswith("atomic."):
        return _build_atomic(d, lanes)
    if opcode == "rand.uniform":
        return _build_rand(d, lanes)
    if opcode == "nop":
        return _build_nop(d)
    return None


# --------------------------------------------------------------------------- program build
def _build_program(function: Function, arch: GpuArch) -> Optional[_BatchedProgram]:
    """Batched decoding of *function*, or ``None`` when not batchable."""
    if function.shared:
        return None
    for instruction in function.instructions():
        if instruction.opcode not in _BATCHABLE_OPCODES:
            return None
        for operand in instruction.operands:
            if not isinstance(operand, (Const, Reg)):
                return None
    decoded = decode_function(function, arch)
    lanes = arch.warp_size
    blocks: Dict[str, _BatchedBlock] = {}
    for label, dblock in decoded.blocks.items():
        steps: List[object] = []
        for step in dblock.steps:
            if step.kind == STEP_SEGMENT:
                if not step.exact:
                    return None
                body = []
                for d in step.body:
                    opcode = d.instruction.opcode
                    dynamic = (opcode in ("load", "store")
                               or opcode.startswith("atomic."))
                    if dynamic != (d.static_cost is None):
                        # A cost override flipped a memory opcode to
                        # static pricing (or vice versa); the handlers
                        # here assume the default split, so stay solo.
                        return None
                    execute = _build_batched_execute(d, lanes)
                    if execute is None:
                        return None
                    body.append((d, execute))
                steps.append(_BatchedSegment(step.start, len(step.body),
                                             step.static_cycles,
                                             list(step.counter_totals), body))
            elif step.kind in (STEP_BR, STEP_CONDBR, STEP_RET):
                control = _BatchedControl(step)
                if step.kind == STEP_CONDBR:
                    control.condition = _numeric_getter(
                        step.instruction.operands[0], step.instruction.uid,
                        0, lanes)
                steps.append(control)
            else:
                return None  # barriers never reach here (opcode gate above)
        blocks[label] = _BatchedBlock(label, dblock.length, steps,
                                      dblock.step_of_index)
    return _BatchedProgram(blocks, function.entry_label, lanes)


def batched_program(function: Function, arch: GpuArch) -> Optional[_BatchedProgram]:
    """Memoised :func:`_build_program` (same cache discipline as decode)."""
    key = ("batched", arch.warp_size, arch.cost_signature())
    return function.cached_decoding(key, lambda fn: _build_program(fn, arch))


def batchable_function(function: Function, arch: GpuArch) -> bool:
    """Whether the batched executor models *function* bit-for-bit."""
    return batched_program(function, arch) is not None


# --------------------------------------------------------------------------- group state
class _Entry:
    __slots__ = ("pc", "mask", "reconvergence")

    def __init__(self, pc, mask, reconvergence):
        self.pc = pc
        self.mask = mask
        self.reconvergence = reconvergence


class _Group:
    """A set of rows in lockstep: shared pcs/stack shape, per-row masks.

    Doubles as the executor object the shared arithmetic table expects:
    ``group.warp.active_mask`` is the (rows, lanes) mask of the current
    step and ``group._trap`` aborts the batch (the solo rerun reproduces
    the per-row trap).
    """

    __slots__ = ("rows", "row_slots", "stack", "cycles", "instructions",
                 "counters", "profile", "registers", "columns", "identity",
                 "arch", "active_mask", "mask_full", "warp", "whole")

    def __init__(self):
        self.warp = self
        self.active_mask = None
        self.mask_full = False
        #: True while the group still covers every row of the batch in
        #: order (the common never-split case); lets retirement use
        #: whole-array stores instead of fancy indexing.
        self.whole = False

    @classmethod
    def initial(cls, rows, registers, columns, identity, arch, entry_label):
        group = cls()
        group.rows = rows
        group.row_slots = rows
        group.registers = registers
        group.columns = columns
        group.identity = identity
        group.arch = arch
        group.cycles = np.zeros(len(rows), dtype=np.float64)
        group.instructions = 0
        group.counters = {}
        group.profile = {}
        group.whole = True
        return group

    # -- executor duck type (shared arithmetic handlers) -------------------
    def _trap(self, message, instruction=None):
        raise BatchAbort(str(message))

    # -- state updates -----------------------------------------------------
    def write(self, name: str, value, mask: np.ndarray) -> None:
        """Masked register write; the (rows, lanes) twin of
        ``WarpState.write_register`` (bit-for-bit per row, including the
        dtype promotion against the previous contents)."""
        if isinstance(value, StackedBuffer):
            self.registers[name] = value
            return
        value = np.asarray(value)
        existing = self.registers.get(name)
        if self.mask_full:
            # All lanes of all rows active: the masked merge reduces to
            # a plain store (after the same dtype promotion the solo
            # full path applies).  Registers are rebound, never mutated
            # in place, so storing an unbroadcast or shared array is
            # safe.
            if (existing is not None
                    and not isinstance(existing, StackedBuffer)
                    and existing.dtype != value.dtype):
                value = value.astype(np.result_type(existing.dtype, value.dtype))
            self.registers[name] = value
            return
        if existing is None or isinstance(existing, StackedBuffer):
            base = np.zeros(mask.shape, dtype=value.dtype)
        else:
            base = existing
        if base.dtype != value.dtype:
            common = np.result_type(base.dtype, value.dtype)
            base = base.astype(common)
            value = value.astype(common)
        self.registers[name] = np.where(mask, value, base)

    def bump(self, key: str, amount) -> None:
        # Scalar charges (segment statics) accumulate as python floats;
        # the first per-row charge promotes the entry to an array.
        self.counters[key] = self.counters.get(key, 0.0) + amount

    def record(self, uid: int, cost, profile_enabled: bool) -> None:
        if not profile_enabled:
            return
        entry = self.profile.get(uid)
        if entry is None:
            entry = self.profile[uid] = [0, 0.0]
        entry[0] += 1
        entry[1] = entry[1] + cost

    def subset(self, picks: np.ndarray) -> "_Group":
        sub = _Group()
        sub.rows = self.rows[picks]
        sub.row_slots = self.row_slots[picks]
        sub.stack = [_Entry(e.pc, e.mask[picks], e.reconvergence)
                     for e in self.stack]
        sub.cycles = self.cycles[picks]
        sub.instructions = self.instructions
        sub.counters = {key: value[picks] if isinstance(value, np.ndarray)
                        else value
                        for key, value in self.counters.items()}
        sub.profile = {uid: [count,
                             value[picks] if isinstance(value, np.ndarray)
                             else value]
                       for uid, (count, value) in self.profile.items()}
        sub.registers = {
            name: (value if isinstance(value, StackedBuffer) or value.ndim == 1
                   else value[picks])
            for name, value in self.registers.items()}
        sub.columns = {key: value[picks] for key, value in self.columns.items()}
        sub.identity = self.identity
        sub.arch = self.arch
        return sub


class _WarpTally:
    """Per-launch accumulators the retiring groups fold into.

    The overwhelmingly common contribution -- a never-split group whose
    per-uid cost stayed a scalar -- accumulates in plain python numbers;
    everything else is queued and folded into per-row arrays once per
    launch (all charges are integer-valued, so the sums are exact
    regardless of association order, the same keystone the solo tiers'
    bulk static charging rests on).
    """

    def __init__(self, total_rows: int):
        self.total_rows = total_rows
        #: key -> [scalar_total, touches_all_rows, [(rows|None, value)]]
        self.counters: Dict[str, list] = {}
        #: uid -> [scalar_count, scalar_cycles, touches_all_rows,
        #:         [(rows|None, count, value)]]
        self.profiles: Dict[int, list] = {}

    def retire(self, group: _Group, warp_cycles: np.ndarray,
               warp_instructions: np.ndarray) -> None:
        whole = group.whole
        rows = slice(None) if whole else group.rows
        warp_cycles[rows] = group.cycles
        warp_instructions[rows] = group.instructions
        for key, value in group.counters.items():
            entry = self.counters.get(key)
            if entry is None:
                entry = self.counters[key] = [0.0, False, []]
            if whole:
                entry[1] = True
                if not isinstance(value, np.ndarray):
                    entry[0] += value
                    continue
            entry[2].append((None if whole else group.rows, value))
        for uid, (count, value) in group.profile.items():
            entry = self.profiles.get(uid)
            if entry is None:
                entry = self.profiles[uid] = [0, 0.0, []]
            if whole and not isinstance(value, np.ndarray):
                entry[0] += count
                entry[1] += value
                continue
            entry[2].append((None if whole else group.rows, count, value))

    def materialize(self, instruction_of: Dict[int, object]):
        """Fold the queued contributions into per-row arrays."""
        total = self.total_rows
        counters: Dict[str, np.ndarray] = {}
        touched: Dict[str, np.ndarray] = {}
        for key, (scalar, all_rows, contribs) in self.counters.items():
            values = np.full(total, scalar, dtype=np.float64)
            hit = np.full(total, all_rows)
            for rows, value in contribs:
                if rows is None:
                    values += value
                else:
                    values[rows] += value
                    hit[rows] = True
            counters[key] = values
            touched[key] = hit
        profiles: Dict[int, list] = {}
        for uid, (count, cycles, contribs) in self.profiles.items():
            executions = np.full(total, count, dtype=np.int64)
            cost = np.full(total, cycles, dtype=np.float64)
            for rows, sub_count, value in contribs:
                if rows is None:
                    executions += sub_count
                    cost += value
                else:
                    executions[rows] += sub_count
                    cost[rows] += value
            instruction = instruction_of[uid]
            location = (str(instruction.loc)
                        if instruction.loc is not None else None)
            profiles[uid] = [executions, cost, instruction.opcode, location]
        return counters, touched, profiles


# --------------------------------------------------------------------------- the executor
def _advance(program: _BatchedProgram, group: _Group, tally: _WarpTally,
             warp_cycles: np.ndarray, warp_instructions: np.ndarray,
             budget: int, profile_enabled: bool) -> List[_Group]:
    """Run *group* until it retires or splits; returns the subgroups."""
    blocks = program.blocks
    while True:
        stack = group.stack
        while stack:
            top = stack[-1]
            reconvergence = top.reconvergence
            if reconvergence is not None:
                pc = top.pc
                if pc[1] == 0 and pc[0] == reconvergence:
                    stack.pop()
                    continue
            break
        if not stack:
            tally.retire(group, warp_cycles, warp_instructions)
            return []
        top = stack[-1]
        label, index = top.pc
        block = blocks.get(label)
        if block is None:
            raise BatchAbort(f"branch to unknown block {label!r}")
        length = block.length
        steps = block.steps
        step_of_index = block.step_of_index
        transferred = False
        while not transferred:
            if index >= length:
                raise BatchAbort(f"fell off the end of block {label!r}")
            step = steps[step_of_index[index]]
            if step.kind == STEP_SEGMENT:
                if index != step.start:
                    raise BatchAbort("mid-segment entry")
                if group.instructions + step.count > budget:
                    raise BatchAbort("instruction budget straddled")
                group.instructions += step.count
                group.cycles += step.static_cycles
                for key, total in step.counter_totals:
                    group.bump(key, total)
                mask = top.mask
                full = bool(mask.all())
                group.active_mask = mask
                group.mask_full = full
                if profile_enabled:
                    profile = group.profile
                    for d, execute in step.body:
                        cost = execute(group, mask, full)
                        if cost is None:
                            cost = d.static_cost
                        entry = profile.get(d.uid)
                        if entry is None:
                            entry = profile[d.uid] = [0, 0.0]
                        entry[0] += 1
                        # Scalar statics stay python floats; the first
                        # dynamic (per-row) cost promotes to an array.
                        entry[1] = entry[1] + cost
                else:
                    for d, execute in step.body:
                        execute(group, mask, full)
                index = step.start + step.count
                top.pc = (label, index)
                continue
            # control step: one instruction on its own
            if group.instructions + 1 > budget:
                raise BatchAbort("instruction budget exhausted")
            group.instructions += 1
            cost = step.static_cost
            if step.counter_key is not None:
                group.bump(step.counter_key, cost)
            group.cycles += cost
            if profile_enabled:
                group.record(step.uid, cost, True)
            mask = top.mask
            kind = step.kind
            if kind == STEP_BR:
                top.pc = (step.target, 0)
                transferred = True
            elif kind == STEP_CONDBR:
                group.active_mask = mask
                cond = np.asarray(step.condition(group)).astype(bool)
                taken = mask & cond
                not_taken = mask & ~cond
                taken_any = taken.any(axis=1)
                not_taken_any = not_taken.any(axis=1)
                # Per-row branch class, in exactly the solo classification:
                # no not-taken lanes -> jump true; otherwise no taken lanes
                # -> jump false; both sides live -> diverge.
                goes_true = ~not_taken_any
                goes_false = not_taken_any & ~taken_any
                diverges = taken_any & not_taken_any
                if goes_true.all():
                    top.pc = (step.true_target, 0)
                elif goes_false.all():
                    top.pc = (step.false_target, 0)
                elif diverges.all():
                    _diverge(stack, top, step, taken, not_taken)
                else:
                    subgroups = []
                    for picks_mask, shape in ((goes_true, "t"),
                                              (goes_false, "f"),
                                              (diverges, "d")):
                        if not picks_mask.any():
                            continue
                        picks = np.nonzero(picks_mask)[0]
                        sub = group.subset(picks)
                        sub_top = sub.stack[-1]
                        if shape == "t":
                            sub_top.pc = (step.true_target, 0)
                        elif shape == "f":
                            sub_top.pc = (step.false_target, 0)
                        else:
                            _diverge(sub.stack, sub_top, step,
                                     taken[picks], not_taken[picks])
                        subgroups.append(sub)
                    return subgroups
                transferred = True
            else:  # STEP_RET
                for entry in stack:
                    entry.mask = entry.mask & ~mask
                depth = len(stack)
                empty_from_top = np.stack(
                    [~stack[depth - 1 - level].mask.any(axis=1)
                     for level in range(depth)])
                alive = ~empty_from_top
                any_alive = alive.any(axis=0)
                pops = np.where(any_alive, np.argmax(alive, axis=0), depth)
                low = int(pops.min())
                if low == int(pops.max()):
                    if low:
                        del stack[depth - low:]
                    if not stack:
                        tally.retire(group, warp_cycles, warp_instructions)
                        return []
                    transferred = True
                else:
                    subgroups = []
                    for count in np.unique(pops):
                        picks = np.nonzero(pops == count)[0]
                        sub = group.subset(picks)
                        if count:
                            del sub.stack[len(sub.stack) - int(count):]
                        if not sub.stack:
                            tally.retire(sub, warp_cycles, warp_instructions)
                        else:
                            subgroups.append(sub)
                    return subgroups


def _diverge(stack, top, step, taken, not_taken):
    reconvergence = step.reconvergence
    if reconvergence is None:
        top.pc = (step.false_target, 0)
        top.mask = not_taken
        stack.append(_Entry((step.true_target, 0), taken, None))
    else:
        top.pc = (reconvergence, 0)
        stack.append(_Entry((step.false_target, 0), not_taken, reconvergence))
        stack.append(_Entry((step.true_target, 0), taken, reconvergence))


def _run_warp(program: _BatchedProgram, base_registers, columns, identity,
              arch: GpuArch, tally: _WarpTally, budget: int,
              profile_enabled: bool) -> Tuple[np.ndarray, np.ndarray]:
    total = tally.total_rows
    warp_cycles = np.zeros(total, dtype=np.float64)
    warp_instructions = np.zeros(total, dtype=np.int64)
    valid = identity["__valid__"]
    if not valid.any():
        return warp_cycles, warp_instructions
    group = _Group.initial(np.arange(total), dict(base_registers), columns,
                           identity, arch, program.entry_label)
    group.stack = [_Entry((program.entry_label, 0),
                          np.broadcast_to(valid, (total, program.lanes)),
                          None)]
    pending = [group]
    while pending:
        pending.extend(_advance(program, pending.pop(), tally, warp_cycles,
                                warp_instructions, budget, profile_enabled))
    return warp_cycles, warp_instructions


# --------------------------------------------------------------------------- launch assembly
def _data_range(array: np.ndarray) -> Tuple[int, int]:
    interface = array.__array_interface__
    start = interface["data"][0]
    return start, start + array.nbytes


def _check_aliasing(row_buffers: List[Dict[str, np.ndarray]],
                    unified_arena: bool) -> None:
    """Abort when host buffers overlap in a way the stack cannot model.

    Rows sharing memory breaks solo-sequential semantics (row r+1 would
    see row r's writes through the shared array) in either mode.  In
    direct-binding mode (no unified arena) the solo path also makes
    *within-row* aliasing observable -- two parameters bound to one
    array see each other's writes immediately -- which per-parameter
    stacked copies cannot reproduce, so any overlap aborts there.
    """
    spans = []  # (start, end, row)
    for row, buffers in enumerate(row_buffers):
        for array in buffers.values():
            start, end = _data_range(array)
            spans.append((start, end, row))
    spans.sort()
    for (start_a, end_a, row_a), (start_b, end_b, row_b) in zip(spans, spans[1:]):
        if start_b < end_a and (row_a != row_b or not unified_arena):
            raise BatchAbort("aliased host buffers in the batch")


def stack_launch_rows(
    functions: Sequence[Function],
    per_row_args: Sequence[Dict[str, object]],
    arch: GpuArch,
    *,
    unified_arena: bool,
    guard_elements: int,
) -> Tuple[Dict[str, object], Dict[Tuple[int, int], np.ndarray], list]:
    """Build the stacked memory, scalar bindings and constant columns.

    Returns ``(base_registers, columns, writebacks)`` where *writebacks*
    is a list of ``(host_view, stacked, row, offset, size)`` records the
    caller replays (in binding order) after a fully successful run.
    """
    total = len(functions)
    template = functions[0]
    lanes = arch.warp_size
    registers: Dict[str, object] = {}
    row_buffers: List[Dict[str, np.ndarray]] = [{} for _ in range(total)]
    buffer_params = [p.name for p in template.params if p.kind == "buffer"]
    scalar_params = [p.name for p in template.params if p.kind != "buffer"]

    for name in buffer_params:
        for row, args in enumerate(per_row_args):
            array = args.get(name)
            if not isinstance(array, np.ndarray):
                raise BatchAbort(f"buffer argument {name!r} is not an array")
            row_buffers[row][name] = (array if array.ndim == 1
                                      else array.reshape(-1))
    sizes = {name: row_buffers[0][name].shape[0] for name in buffer_params}
    for buffers in row_buffers[1:]:
        for name in buffer_params:
            if buffers[name].shape[0] != sizes[name]:
                raise BatchAbort(f"buffer {name!r} sizes differ across rows")
    _check_aliasing(row_buffers, unified_arena)

    writebacks: list = []
    if unified_arena:
        # Replicate the arena layout: a guard region before every buffer
        # (in parameter order) and one after the last, all zero-filled.
        offsets: Dict[str, int] = {}
        cursor = 0
        for name in buffer_params:
            offsets[name] = cursor + guard_elements
            cursor = offsets[name] + sizes[name]
        arena_len = cursor + guard_elements
        stacked = np.zeros((total, arena_len), dtype=np.float64)
        flat = stacked.reshape(-1)
        for name in buffer_params:
            offset = offsets[name]
            size = sizes[name]
            for row in range(total):
                stacked[row, offset:offset + size] = \
                    row_buffers[row][name].astype(np.float64)
            registers[name] = StackedBuffer(name, flat, arena_len, offset,
                                            size, arena_len)
            writebacks.append((name, [row_buffers[row][name]
                                      for row in range(total)],
                               stacked, offset, size))
    else:
        for name in buffer_params:
            size = sizes[name]
            dtype = row_buffers[0][name].dtype
            for buffers in row_buffers[1:]:
                if buffers[name].dtype != dtype:
                    raise BatchAbort(f"buffer {name!r} dtypes differ across rows")
            stacked = np.stack([row_buffers[row][name]
                                for row in range(total)])
            registers[name] = StackedBuffer(name, stacked.reshape(-1), size,
                                            0, size, size)
            writebacks.append((name, [row_buffers[row][name]
                                      for row in range(total)],
                               stacked, 0, size))

    for name in scalar_params:
        try:
            values = [float(per_row_args[row][name]) for row in range(total)]
        except (KeyError, TypeError, ValueError):
            raise BatchAbort(f"scalar argument {name!r} missing or non-numeric")
        integral = [value == int(value) for value in values]
        if any(integral) and not all(integral):
            raise BatchAbort(f"scalar {name!r} mixes integral and fractional rows")
        dtype = np.int64 if integral[0] else np.float64
        first = values[0]
        if all(value == first for value in values):
            shared = np.full(lanes, first, dtype=dtype)
            shared.flags.writeable = False
            registers[name] = shared
        else:
            column = np.array(values, dtype=dtype)[:, None]
            column.flags.writeable = False
            registers[name] = column

    columns = _const_columns(functions)
    return registers, columns, writebacks


def _const_columns(functions: Sequence[Function]) -> Dict[Tuple[int, int], np.ndarray]:
    """Per-row constant columns for operands that differ across clones."""
    columns: Dict[Tuple[int, int], np.ndarray] = {}
    total = len(functions)
    if total < 2:
        return columns
    template = functions[0]
    template_blocks = template.block_order()
    per_row_blocks = []
    for function in functions[1:]:
        if function.block_order() != template_blocks:
            raise BatchAbort("clone block structure differs")
        per_row_blocks.append(function.blocks)
    for label in template_blocks:
        instructions = template.blocks[label].instructions
        clones = [blocks[label].instructions for blocks in per_row_blocks]
        for clone in clones:
            if len(clone) != len(instructions):
                raise BatchAbort("clone instruction count differs")
        for position, instruction in enumerate(instructions):
            for operand_index, operand in enumerate(instruction.operands):
                if not isinstance(operand, Const):
                    continue
                values = [operand.value]
                for clone in clones:
                    other = clone[position].operands[operand_index]
                    if not isinstance(other, Const):
                        raise BatchAbort("clone operand kind differs")
                    values.append(other.value)
                first = values[0]
                if all(value == first and type(value) is type(first)
                       for value in values[1:]):
                    continue
                if isinstance(first, bool):
                    dtype = np.dtype(bool)
                elif isinstance(first, int):
                    dtype = np.dtype(np.int64)
                else:
                    dtype = np.dtype(np.float64)
                for value in values[1:]:
                    if isinstance(first, bool) != isinstance(value, bool):
                        raise BatchAbort("clone constant dtype class differs")
                    if (isinstance(first, int) and not isinstance(first, bool)) \
                            != (isinstance(value, int) and not isinstance(value, bool)):
                        raise BatchAbort("clone constant dtype class differs")
                column = np.array(values, dtype=dtype)[:, None]
                column.flags.writeable = False
                columns[(instruction.uid, operand_index)] = column
    return columns


def execute_batched(
    functions: Sequence[Function],
    per_row_args: Sequence[Dict[str, object]],
    grid_dim: Tuple[int, int],
    block_dim: Tuple[int, int],
    arch: GpuArch,
    *,
    unified_arena: bool,
    guard_elements: int,
    budget: int,
    profile_enabled: bool,
    identity_of,
) -> Dict[str, object]:
    """Run N structurally identical launches in one stacked pass.

    ``identity_of(warp_index, block_coords)`` supplies the (shared)
    thread identity for one warp of one block.  Raises
    :class:`BatchAbort` -- with no host state modified -- whenever the
    batched model cannot reproduce the solo tiers bit-for-bit; on
    success the stacked buffers are written back to the per-row host
    arrays (in binding order, like ``GlobalMemory.sync_back``) and the
    per-row cycle/counter/profile data is returned.
    """
    template = functions[0]
    program = batched_program(template, arch)
    if program is None:
        raise BatchAbort(f"kernel {template.name!r} is not batchable")
    total = len(functions)
    base_registers, columns, writebacks = stack_launch_rows(
        functions, per_row_args, arch,
        unified_arena=unified_arena, guard_elements=guard_elements)

    tally = _WarpTally(total)
    lanes = arch.warp_size
    threads = block_dim[0] * block_dim[1]
    num_warps = max(1, -(-threads // lanes))
    block_cycle_rows: List[np.ndarray] = []
    total_instructions = np.zeros(total, dtype=np.int64)
    for by in range(grid_dim[1]):
        for bx in range(grid_dim[0]):
            block_cycles = np.zeros(total, dtype=np.float64)
            for warp_index in range(num_warps):
                identity = identity_of(warp_index, (bx, by))
                identity_map = dict(identity.register_values())
                identity_map["__valid__"] = identity.valid
                warp_cycles, warp_instructions = _run_warp(
                    program, base_registers, columns, identity_map, arch,
                    tally, budget, profile_enabled)
                block_cycles = np.maximum(block_cycles, warp_cycles)
                total_instructions += warp_instructions
            block_cycle_rows.append(block_cycles)

    concurrent = max(1, arch.concurrent_blocks)
    kernel_cycles = np.zeros(total, dtype=np.float64)
    for start in range(0, len(block_cycle_rows), concurrent):
        wave = block_cycle_rows[start:start + concurrent]
        kernel_cycles += np.maximum.reduce(wave)

    # Fully successful: write the stacked buffers back to the host rows.
    for name, hosts, stacked, offset, size in writebacks:
        for row, host in enumerate(hosts):
            host[...] = stacked[row, offset:offset + size].astype(host.dtype)

    instruction_of = {inst.uid: inst for inst in template.instructions()}
    counters, counter_touched, profiles = tally.materialize(instruction_of)
    return {
        "cycles": kernel_cycles,
        "instructions": total_instructions,
        "counters": counters,
        "counter_touched": counter_touched,
        "profiles": profiles,
        "blocks_executed": grid_dim[0] * grid_dim[1],
        "warps_per_block": num_warps,
    }
