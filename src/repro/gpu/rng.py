"""Counter-based deterministic RNG shared by the GPU intrinsic and host code.

SIMCoV's behaviour is stochastic (T-cell extravasation and movement).  The
paper controls this by fixing the random seed so that runs are comparable
(Section III-C).  Our GPU kernels use the ``rand.uniform`` intrinsic, which
hashes ``(seed, step, salt)`` with a splitmix64-style mixer; the CPU
reference model calls the same function, so -- absent true race conditions
-- the reference and the simulated GPU produce identical random draws.
"""

from __future__ import annotations

import numpy as np

_RNG_MULT1 = np.uint64(0xBF58476D1CE4E5B9)
_RNG_MULT2 = np.uint64(0x94D049BB133111EB)
_RNG_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def counter_uniform(seed, step, salt) -> np.ndarray:
    """Deterministic uniform numbers in [0, 1) from integer counters.

    All three arguments broadcast; the result has the broadcast shape and
    dtype float64.  The same (seed, step, salt) triple always produces the
    same value, on any platform.
    """
    seed = np.asarray(seed, dtype=np.int64).astype(np.uint64)
    step = np.asarray(step, dtype=np.int64).astype(np.uint64)
    salt = np.asarray(salt, dtype=np.int64).astype(np.uint64)
    with np.errstate(over="ignore"):
        x = seed * _RNG_GAMMA + step * _RNG_MULT1 + salt * _RNG_MULT2
        x ^= x >> np.uint64(30)
        x *= _RNG_MULT1
        x ^= x >> np.uint64(27)
        x *= _RNG_MULT2
        x ^= x >> np.uint64(31)
    return (x >> np.uint64(11)).astype(np.float64) / float(1 << 53)
