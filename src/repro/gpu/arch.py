"""GPU architecture descriptions (Table I of the paper).

Each :class:`GpuArch` bundles the static characteristics of one device --
SM count, clock, warp size, occupancy limit -- together with the latency
parameters used by the cost model.  Three presets mirror the paper's
evaluation hardware: the Pascal-class P100 and GTX 1080Ti, and the
Volta-class V100.

The single behavioural difference that matters for the paper's Section
VI-B finding (removing ``ballot_sync`` helps only on Volta) is captured by
``independent_thread_scheduling``: on Volta, warp-level query/sync
primitives force a re-synchronisation of independently scheduled
sub-warps, which the cost model charges for; on Pascal they are nearly
free.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple, Union

#: The three interpreter tiers a simulated device can execute through,
#: slowest (and most readable) first.  All three are bit-for-bit
#: equivalent -- same cycles, counters, profiler statistics, RNG streams
#: and trap messages -- pinned by ``tests/gpu/test_fast_path_equivalence.py``.
INTERPRETER_TIERS: Tuple[str, ...] = ("oracle", "dispatch", "jit")

#: The tier selected by ``fast_path=True`` (the default): the segment-JIT
#: interpreter, which exec-compiles straight-line segments into single
#: Python functions on top of the decoded dispatch tables.
DEFAULT_FAST_TIER = "jit"


def normalize_interpreter_tier(value: Union[bool, str, None]) -> str:
    """Canonical tier name for a ``fast_path`` / tier selector value.

    Accepts the historical booleans (``True`` -> the default fast tier,
    ``False`` -> the tree-walking oracle), ``None`` (the default fast
    tier) and tier names with their aliases (``reference`` -> ``oracle``,
    ``decoded``/``fast`` -> ``dispatch``).
    """
    if value is None or value is True:
        return DEFAULT_FAST_TIER
    if value is False:
        return "oracle"
    tier = str(value).lower()
    tier = {"reference": "oracle", "decoded": "dispatch", "fast": "dispatch"}.get(tier, tier)
    if tier not in INTERPRETER_TIERS:
        raise ValueError(
            f"unknown interpreter tier {value!r}; expected one of "
            f"{INTERPRETER_TIERS} (or a fast_path boolean)")
    return tier


@dataclass(frozen=True)
class GpuArch:
    """Static description of a simulated GPU."""

    name: str
    family: str
    cuda_cores: int
    sm_count: int
    clock_mhz: float
    memory_size_gb: float
    memory_type: str
    warp_size: int = 32
    max_blocks_per_sm: int = 8
    max_threads_per_block: int = 1024
    shared_memory_per_block: int = 48 * 1024
    #: Volta and later schedule sub-warps independently; warp-wide sync
    #: primitives (ballot_sync / syncwarp) then carry a real cost.
    independent_thread_scheduling: bool = False

    #: Which interpreter tier kernels execute through.  ``True`` (the
    #: default) selects the fastest tier (segment JIT); a tier name from
    #: :data:`INTERPRETER_TIERS` (``"oracle"`` / ``"dispatch"`` /
    #: ``"jit"``) pins a specific tier; ``False`` falls back to the
    #: tree-walking reference oracle (also reachable per device via
    #: ``GpuDevice(..., fast_path=...)`` or the CLI
    #: ``--interpreter-tier`` / ``--reference-interpreter`` flags).  All
    #: tiers are bit-for-bit equivalent; the slower ones exist for
    #: debugging the simulator itself.
    fast_path: Union[bool, str] = True

    # --- memory geometry, in elements / banks --------------------------------
    #: Width of one global-memory transaction segment: lanes whose element
    #: indices fall into the same ``memory_segment_size``-wide window
    #: coalesce into a single transaction.  The cost model reads this from
    #: the arch -- never a hard-coded 32 -- so non-32-lane memory models
    #: (e.g. half-warp transactions on G80-class parts) price correctly.
    memory_segment_size: int = 32
    #: Number of shared-memory banks; lanes hitting the same bank
    #: serialise.  Read by the cost model alongside ``memory_segment_size``.
    shared_banks: int = 32

    # --- cost-model latencies, in cycles -------------------------------------
    alu_latency: int = 4
    special_latency: int = 16
    global_latency: int = 70
    global_store_latency: int = 40
    global_per_transaction: int = 16
    shared_latency: int = 24
    shared_store_latency: int = 4
    shared_conflict_penalty: int = 2
    atomic_latency: int = 48
    atomic_serialization: int = 8
    shuffle_latency: int = 10
    barrier_latency: int = 18
    branch_latency: int = 6
    warp_sync_latency: int = 4
    rng_latency: int = 16

    #: Per-opcode overrides applied on top of the category defaults.
    cost_overrides: Dict[str, int] = field(default_factory=dict)

    @property
    def concurrent_blocks(self) -> int:
        """How many thread blocks the whole device can run simultaneously."""
        return self.sm_count * self.max_blocks_per_sm

    def with_overrides(self, **changes) -> "GpuArch":
        """Return a copy of the architecture with some fields replaced."""
        return replace(self, **changes)

    def cost_signature(self) -> Tuple:
        """Hashable signature of every cost parameter the decode step bakes in.

        Two architectures with equal signatures (and warp size) produce
        identical decoded programs, so this keys the per-function decode
        cache.  The memory latencies and geometry are included because the
        JIT tier inlines them into generated segment source as literals;
        only the *addresses* a warp touches stay dynamic.
        """
        return (
            self.alu_latency, self.special_latency, self.rng_latency,
            self.branch_latency, self.barrier_latency, self.warp_sync_latency,
            self.shuffle_latency, self.independent_thread_scheduling,
            self.memory_segment_size, self.shared_banks,
            self.global_latency, self.global_store_latency,
            self.global_per_transaction, self.shared_latency,
            self.shared_store_latency, self.shared_conflict_penalty,
            self.atomic_latency, self.atomic_serialization,
            tuple(sorted(self.cost_overrides.items())),
        )

    def table_row(self) -> Dict[str, object]:
        """Row of Table I for this GPU."""
        return {
            "GPU": self.name,
            "Architecture Family": self.family,
            "CUDA cores": self.cuda_cores,
            "Core Frequency": f"{self.clock_mhz:.0f} Mhz",
            "Memory Size": f"{self.memory_size_gb:.0f}GB {self.memory_type}",
        }


P100 = GpuArch(
    name="P100",
    family="Pascal",
    cuda_cores=3584,
    sm_count=56,
    clock_mhz=1386.0,
    memory_size_gb=16,
    memory_type="HBM",
    global_latency=75,
    shared_latency=24,
    shuffle_latency=10,
    independent_thread_scheduling=False,
)

GTX1080TI = GpuArch(
    name="1080Ti",
    family="Pascal",
    cuda_cores=3584,
    sm_count=28,
    clock_mhz=1999.0,
    memory_size_gb=11,
    memory_type="GDDR5X",
    global_latency=85,
    shared_latency=26,
    shuffle_latency=10,
    independent_thread_scheduling=False,
)

V100 = GpuArch(
    name="V100",
    family="Volta",
    cuda_cores=5120,
    sm_count=80,
    clock_mhz=1530.0,
    memory_size_gb=16,
    memory_type="HBM2",
    global_latency=65,
    shared_latency=20,
    shuffle_latency=8,
    barrier_latency=16,
    independent_thread_scheduling=True,
    # Sub-warp resynchronisation cost charged for ballot_sync / syncwarp.
    warp_sync_latency=12,
)

G80 = GpuArch(
    name="G80",
    family="Tesla",
    cuda_cores=128,
    sm_count=16,
    clock_mhz=1350.0,
    memory_size_gb=0.75,
    memory_type="GDDR3",
    shared_memory_per_block=16 * 1024,
    # Pre-Fermi memory system: global transactions are issued per
    # half-warp (16-element segments) and shared memory has 16 banks.
    # This is the registry-visible non-32 geometry that pins the
    # arch-aware pricing seam.
    memory_segment_size=16,
    shared_banks=16,
    global_latency=140,
    global_store_latency=60,
    global_per_transaction=24,
    shared_latency=28,
    shared_conflict_penalty=4,
    independent_thread_scheduling=False,
)

#: All known architectures, keyed by name.  The three paper presets are
#: pre-registered (plus the G80 geometry probe); :func:`register_arch`
#: adds custom ones (new latency models, hypothetical devices) so sweeps
#: and the CLI can reach them by name without code changes elsewhere.
ARCHITECTURES: Dict[str, GpuArch] = {
    arch.name: arch for arch in (P100, GTX1080TI, V100, G80)
}

#: Evaluation order used throughout the paper's figures.
EVALUATION_ORDER: Tuple[str, ...] = ("P100", "1080Ti", "V100")


def register_arch(arch: GpuArch, *, overwrite: bool = False) -> GpuArch:
    """Add *arch* to the registry so :func:`get_arch` can find it by name.

    Registration is idempotent for an identical architecture; replacing an
    existing name with a *different* description requires
    ``overwrite=True`` (silently changing what "P100" means would poison
    fitness-cache keys, which embed the arch name).
    """
    existing = ARCHITECTURES.get(arch.name)
    if existing is not None and existing != arch and not overwrite:
        raise ValueError(
            f"architecture {arch.name!r} is already registered with a different "
            "description; pass overwrite=True to replace it")
    ARCHITECTURES[arch.name] = arch
    return arch


def available_archs() -> Tuple[str, ...]:
    """Registered architecture names, paper evaluation order first."""
    extras = tuple(name for name in ARCHITECTURES if name not in EVALUATION_ORDER)
    return tuple(name for name in EVALUATION_ORDER if name in ARCHITECTURES) + extras


def get_arch(name: str) -> GpuArch:
    """Look up an architecture preset by name (case insensitive)."""
    for key, arch in ARCHITECTURES.items():
        if key.lower() == name.lower():
            return arch
    raise KeyError(
        f"unknown GPU architecture {name!r}; available: {sorted(ARCHITECTURES)}"
    )


def parse_arch_list(spec: str) -> Tuple[str, ...]:
    """Resolve a comma-separated architecture list to canonical names.

    ``"p100,V100"`` -> ``("P100", "V100")``.  Unknown names raise
    :class:`KeyError` (with the available names); duplicates collapse,
    preserving first-seen order.
    """
    names = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        canonical = get_arch(part).name
        if canonical not in names:
            names.append(canonical)
    if not names:
        raise KeyError(f"no architectures in {spec!r}; available: {sorted(ARCHITECTURES)}")
    return tuple(names)


def architecture_table() -> Tuple[Dict[str, object], ...]:
    """Return Table I as a tuple of row dictionaries."""
    return tuple(ARCHITECTURES[name].table_row() for name in EVALUATION_ORDER)
