"""Segment JIT: exec-compiled straight-line kernels for the decoded interpreter.

The dispatch tier (:mod:`repro.gpu.decoded`) already removes per-step
opcode dispatch, but a straight-line segment still pays, per executed
instruction, one handler-closure call, one operand-getter call per
operand, a register-dictionary round-trip per read and write, and a
profiler-dictionary probe.  This module removes those too by *compiling*
each exact straight-line :class:`~repro.gpu.decoded.Segment` into **one**
Python function per activation shape (fully active warp / partial mask):

* operand getters become local-variable loads -- registers read once per
  segment are cached in locals ("shadows"), constants are baked in as
  shared read-only arrays;
* handler closures are inlined into straight-line NumPy expressions
  (``add`` becomes ``a + b``; the runtime dtype dispatch of
  ``div``/``and``/``shl``/... is inlined with the same branches the
  shared arithmetic table takes);
* register writes stay in the shadow locals and flush to the register
  file once at segment end.  The full-mask variant replays the exact
  dtype promotion of :meth:`~repro.gpu.warp.WarpState.write_register_full`;
  the masked variant defers the per-write ``np.where`` merge of
  :meth:`~repro.gpu.warp.WarpState.write_register` to the flush.  The
  deferral is sound because the mask is constant inside a segment and
  every inlined operation is element-wise, so unmerged inactive lanes
  can never leak into active lanes (``shfl``, the one cross-lane reader,
  explicitly merges its value operand first, and anything executed
  through a fallback closure sees a fully flushed register file);
* when the segment is directly followed by its block's
  ``br``/``condbr``/``ret`` terminator, the control transfer -- including
  the divergence stack discipline -- is folded into the compiled function
  (the ROADMAP's "segment mega-closures"), eliminating one interpreter
  round-trip per executed block; control steps are *also* compiled on
  their own (an empty segment + folded terminator), so single-control
  blocks -- loop latches, header tests, bare returns -- execute through
  the same scheme instead of the dispatch loop;
* the segment's pre-aggregated static cycles and cost-model counters are
  charged in one step, and per-instruction profiler bumps run over
  profile objects bound once per launch instead of probing the profiler
  dictionary on every execution;
* load/store memory pricing is inlined: the bounds check returns the
  index extrema it already computes (``check_bounds_stats``), the
  coalescing/bank-conflict counts take their exact fast paths from those
  extrema, the arch's geometry and latencies
  (``GpuArch.memory_segment_size`` / ``shared_banks`` / the memory
  latency fields -- never literals) are baked into the source, and the
  counter bumps aggregate into one flush per segment (sound because
  every latency is an integer, so float64 sums reorder exactly).

Compilation is content-addressed twice over.  Generated functions take
every clone-varying value (instruction objects, uids, constants, branch
targets) through one bound tuple, so a *structural key* of the segment
-- opcodes, operand shapes, register names, baked costs -- maps to a
cached ``(factory, plan)`` pair: re-JITting the structurally identical
variants a GEVO population is full of costs a key probe plus one factory
call per segment, with no source generation, ``compile`` or ``exec``.
The compiled segments live on the decoded program, which is cached per
function through :meth:`repro.ir.function.Function.cached_decoding`; a
GEVO mutation invalidates exactly the touched function's decoding and
therefore its compiled segments.

A compiled segment runs only in the case the dispatch tier's batch
branch recognises -- entry at the segment start, exact aggregated costs,
instruction budget not straddled -- everything else falls back to the
dispatch loop, instruction by instruction, so traps, barrier resumes
and budget exhaustion behave identically.  Equivalence with the dispatch
tier and the tree-walking oracle -- cycles, counters, profiler
statistics, output buffers, RNG streams and trap messages -- is pinned
by the three-way battery in ``tests/gpu/test_fast_path_equivalence.py``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir.function import Function
from ..ir.values import Const, Reg
from .arch import GpuArch
from .decoded import (
    _IDENTITY_OPCODES,
    ControlStep,
    DecodedFunction,
    Segment,
    _const_array,
    decode_function,
)
from .interpreter import (
    _ARITHMETIC,
    _int_like,
    STEP_BR,
    STEP_CONDBR,
    STEP_RET,
    STEP_SEGMENT,
)
from .memory import BufferHandle, conflicts_from_stats, transactions_from_stats
from .profiler import InstructionProfile
from .rng import counter_uniform
from .timing import MemoryAccessInfo
from .warp import StackEntry

_INT = np.int64
_FLOAT = np.float64

#: Process-wide keys for the per-launch bound-profile cache
#: (:attr:`ProfileCollector.jit_bindings`); every compiled segment gets one.
_SEGMENT_KEYS = itertools.count()

#: Structural-key cache: segment shape -> (full factory, full plan,
#: masked factory, masked plan).  See the module docstring.
_SEGMENT_CACHE: Dict[tuple, tuple] = {}
_SEGMENT_CACHE_LIMIT = 8192

#: One constant filename keeps compiled sources recognisable in tracebacks.
_SOURCE_FILENAME = "<repro-jit-segment>"


# --------------------------------------------------------------------------- runtime helpers
def _numeric_fallback(ex, name, instruction, value):
    """Trap for a register numeric read that is not a plain array."""
    if value is None:
        ex._trap(f"read of undefined register %{name}", instruction)
    if isinstance(value, BufferHandle):
        ex._trap(
            f"operand %{name} is a buffer handle "
            f"where a numeric value is required", instruction)
    return value  # an ndarray subclass: the reference path returns it as-is


def _buffer_fallback(ex, name, instruction, value):
    """Trap for a register buffer read that is not a buffer handle."""
    if value is None:
        ex._trap(f"read of undefined register %{name}", instruction)
    if not isinstance(value, BufferHandle):
        ex._trap("memory access base operand is not a buffer", instruction)
    return value


def _buffer_as_numeric(ex, name, instruction):
    ex._trap(
        f"operand %{name} is a buffer handle "
        f"where a numeric value is required", instruction)


def _not_a_buffer(ex, instruction):
    ex._trap("memory access base operand is not a buffer", instruction)


def _unsupported_operand(ex, operand, instruction):
    ex._trap(f"unsupported operand {operand!r}", instruction)


def _promote(existing, value):
    """The dtype promotion :meth:`WarpState.write_register_full` applies."""
    common = np.result_type(existing.dtype, value.dtype)
    if value.dtype != common:
        return value.astype(common)
    return value


def _bind_static_profiles(profiles, items):
    """Resolve (and create, exactly like ``ProfileCollector.record``) the
    profile objects for a segment's static-cost instructions, returning
    ``(profile, cost)`` pairs the compiled segment bumps directly."""
    bound = []
    for uid, opcode, location, cost in items:
        profile = profiles.get(uid)
        if profile is None:
            profile = InstructionProfile(uid, opcode, location)
            profiles[uid] = profile
        bound.append((profile, cost))
    return tuple(bound)


#: Fixed globals of every compiled segment (per-segment values travel in
#: the factory's bound tuple instead, which is what makes the factories
#: shareable across clones).
_BASE_ENV: Dict[str, object] = {
    "_nd": np.ndarray,
    "_BH": BufferHandle,
    "_MI": MemoryAccessInfo,
    "_IP": InstructionProfile,
    "_SE": StackEntry,
    "_INT": _INT,
    "_FLOAT": _FLOAT,
    "_np_minimum": np.minimum,
    "_np_maximum": np.maximum,
    "_np_abs": np.abs,
    "_np_where": np.where,
    "_np_full": np.full,
    "_np_zeros": np.zeros,
    "_np_packbits": np.packbits,
    "_np_result_type": np.result_type,
    "_np_cnz": np.count_nonzero,
    "_np_floor_divide": np.floor_divide,
    "_np_remainder": np.remainder,
    "_np_land": np.logical_and,
    "_np_lor": np.logical_or,
    "_np_lxor": np.logical_xor,
    "_np_lnot": np.logical_not,
    "_np_band": np.bitwise_and,
    "_np_bor": np.bitwise_or,
    "_np_bxor": np.bitwise_xor,
    "_np_bnot": np.bitwise_not,
    "_np_shl": np.left_shift,
    "_np_shr": np.right_shift,
    "_txs": transactions_from_stats,
    "_bks": conflicts_from_stats,
    "_il": _int_like,
    "_cu": counter_uniform,
    "_pr": _promote,
    "_bsp": _bind_static_profiles,
    "_nf": _numeric_fallback,
    "_bf": _buffer_fallback,
    "_ban": _buffer_as_numeric,
    "_nab": _not_a_buffer,
    "_uns": _unsupported_operand,
}


# --------------------------------------------------------------------------- plans
def _static_profile_items(segment: Segment,
                          terminator: Optional[ControlStep]) -> tuple:
    items = [
        (d.uid, d.instruction.opcode,
         str(d.instruction.loc) if d.instruction.loc is not None else None,
         d.static_cost)
        for d in segment.body if d.static_cost is not None]
    if terminator is not None:
        instruction = terminator.instruction
        items.append(
            (instruction.uid, instruction.opcode,
             str(instruction.loc) if instruction.loc is not None else None,
             terminator.static_cost))
    return tuple(items)


def _resolve_plan(plan: tuple, segment: Segment,
                  terminator: Optional[ControlStep], label: str,
                  warp_size: int, seg_key: int) -> tuple:
    """Evaluate a binding plan against a (possibly cloned) segment.

    Each plan item names where one bound value comes from; index ``-1``
    refers to the folded terminator's instruction.
    """
    body = segment.body
    values = []
    for item in plan:
        kind = item[0]
        if kind == "inst":
            index = item[1]
            values.append(terminator.instruction if index < 0
                          else body[index].instruction)
        elif kind == "const":
            _, index, operand_index = item
            instruction = (terminator.instruction if index < 0
                           else body[index].instruction)
            values.append(_const_array(instruction.operands[operand_index].value,
                                       warp_size))
        elif kind == "uid":
            values.append(body[item[1]].uid)
        elif kind == "execute":
            values.append(body[item[1]].execute)
        elif kind == "handler":
            values.append(_ARITHMETIC[item[1]])
        elif kind == "operand":
            _, index, operand_index = item
            instruction = (terminator.instruction if index < 0
                           else body[index].instruction)
            values.append(instruction.operands[operand_index])
        elif kind == "static_prof":
            values.append(_static_profile_items(segment, terminator))
        elif kind == "seg_key":
            values.append(seg_key)
        elif kind == "pc_target":
            values.append((terminator.target, 0))
        elif kind == "pc_true":
            values.append((terminator.true_target, 0))
        elif kind == "pc_false":
            values.append((terminator.false_target, 0))
        elif kind == "pc_rc":
            values.append((terminator.reconvergence, 0))
        elif kind == "pc_after":
            values.append((label, segment.start + len(body)))
        elif kind == "lanes":
            lanes = np.arange(warp_size)
            lanes.flags.writeable = False
            values.append(lanes)
        else:  # pragma: no cover - plans only contain the kinds above
            raise AssertionError(f"unknown plan item {item!r}")
    return tuple(values)


def _pricing_signature(arch: GpuArch) -> tuple:
    """The memory-pricing constants the generated source bakes as literals.

    Part of the structural cache key: segments from two architectures may
    share a compiled factory only when every baked pricing constant --
    geometry *and* latencies -- matches (a P100 and a G80 segment of the
    same shape must not share wrong baked costs).
    """
    return (arch.memory_segment_size, arch.shared_banks,
            arch.global_latency, arch.global_store_latency,
            arch.global_per_transaction, arch.shared_latency,
            arch.shared_store_latency, arch.shared_conflict_penalty,
            arch.alu_latency)


def _segment_signature(segment: Segment, terminator: Optional[ControlStep],
                       warp_size: int, pricing: tuple) -> tuple:
    """Structural identity of a segment's generated source.

    Two segments with equal signatures generate character-identical
    source for both variants, so they share one compiled factory; the
    signature covers exactly what the source bakes in as literals --
    opcodes, destination/operand register names, costs, counter keys,
    source locations, the folded terminator's shape, the arch's memory
    pricing -- while constants, uids and branch targets travel through
    the bound tuple.
    """
    def operand_shape(instruction):
        return tuple(
            ("r", op.name) if isinstance(op, Reg)
            else ("c",) if isinstance(op, Const) else ("o",)
            for op in instruction.operands)

    body_sig = tuple(
        (d.instruction.opcode, d.instruction.dest,
         operand_shape(d.instruction), d.static_cost, d.counter_key,
         str(d.instruction.loc) if d.instruction.loc is not None else None)
        for d in segment.body)
    term_sig = None
    if terminator is not None:
        instruction = terminator.instruction
        term_sig = (terminator.kind, terminator.static_cost,
                    terminator.counter_key, terminator.reconvergence,
                    operand_shape(instruction),
                    str(instruction.loc) if instruction.loc is not None else None)
    return (warp_size, pricing, segment.static_cycles,
            tuple(sorted(segment.counter_totals)), body_sig, term_sig)


# --------------------------------------------------------------------------- the compiler
class _Shadow:
    """Compile-time state of one register cached in segment locals."""

    __slots__ = ("var", "kind", "base")

    def __init__(self, var: str, kind: str, base: Optional[str] = None):
        self.var = var          # local holding the (possibly unmerged) value
        self.kind = kind        # "array" | "buffer"
        self.base = base        # masked mode: local holding the pre-segment
        #                         register value a dirty write merges against
        #                         at flush time; None when the shadow is clean


class _SegmentCompiler:
    """Generates the source + binding plan of one compiled segment.

    ``full`` selects the activation shape: the fully active warp (plain
    register rebinding, constant ballot bits) or the partial mask
    (deferred ``np.where`` merges against the pre-segment register
    values).
    """

    def __init__(self, segment: Segment, warp_size: int, full: bool,
                 arch: GpuArch, terminator: Optional[ControlStep] = None):
        self.segment = segment
        self.warp_size = warp_size
        self.full = full
        self.arch = arch
        self.terminator = terminator
        self.lines: List[str] = []
        self.plan: List[tuple] = []
        self.shadows: Dict[str, _Shadow] = {}
        self._counter = itertools.count()
        self._needs_memory_cost = False
        self._needs_mem_accumulators = False
        self._needs_bounds_cache = False
        self._active_var: Optional[str] = None

    # -- small utilities ---------------------------------------------------
    def temp(self, prefix: str = "_t") -> str:
        return f"{prefix}{next(self._counter)}"

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def bind(self, prefix: str, provenance: tuple) -> str:
        """Reserve one slot of the factory's bound tuple."""
        name = f"{prefix}{next(self._counter)}"
        self.plan.append((name, provenance))
        return name

    def active_lanes(self) -> str:
        """Expression for the active lane count (memory pricing)."""
        if self.full:
            return str(self.warp_size)
        if self._active_var is None:
            self._active_var = "_act"
            self.emit("_act = int(_np_cnz(mask))")
        return self._active_var

    # -- operand resolution ------------------------------------------------
    def numeric(self, operand, inst_var: str, source_index: int,
                operand_index: int, merged: bool = False) -> str:
        """Emit code resolving *operand* as a numeric array; return the
        expression.  ``merged`` asks for the true register value even if
        the shadow holds a deferred-merge value (cross-lane consumers)."""
        if isinstance(operand, Const):
            return self.bind("_C", ("const", source_index, operand_index))
        if isinstance(operand, Reg):
            name = operand.name
            shadow = self.shadows.get(name)
            if shadow is not None:
                if shadow.kind == "array":
                    if merged and not self.full and shadow.base is not None:
                        out = self.temp("_mv")
                        self.emit(f"{out} = _np_where(mask, {shadow.var}, "
                                  f"{shadow.base})")
                        return out
                    return shadow.var
                # A buffer handle where a numeric value is required: trap.
                out = self.temp()
                self.emit(f"{out} = _ban(ex, {name!r}, {inst_var})")
                return out
            var = self.temp("_s")
            self.emit(f"{var} = R.get({name!r})")
            self.emit(f"if {var}.__class__ is not _nd:")
            self.emit(f"    {var} = _nf(ex, {name!r}, {inst_var}, {var})")
            self.shadows[name] = _Shadow(var, "array")
            return var
        op_var = self.bind("_O", ("operand", source_index, operand_index))
        out = self.temp()
        self.emit(f"{out} = _uns(ex, {op_var}, {inst_var})")
        return out

    def buffer(self, operand, inst_var: str, source_index: int,
               operand_index: int) -> str:
        """Emit code resolving *operand* as a buffer handle."""
        if isinstance(operand, Reg):
            name = operand.name
            shadow = self.shadows.get(name)
            if shadow is not None:
                if shadow.kind == "buffer":
                    return shadow.var
                out = self.temp()
                self.emit(f"{out} = _nab(ex, {inst_var})")
                return out
            var = self.temp("_s")
            self.emit(f"{var} = R.get({name!r})")
            self.emit(f"if {var}.__class__ is not _BH:")
            self.emit(f"    {var} = _bf(ex, {name!r}, {inst_var}, {var})")
            self.shadows[name] = _Shadow(var, "buffer")
            return var
        if isinstance(operand, Const):
            out = self.temp()
            self.emit(f"{out} = _nab(ex, {inst_var})")
            return out
        op_var = self.bind("_O", ("operand", source_index, operand_index))
        out = self.temp()
        self.emit(f"{out} = _uns(ex, {op_var}, {inst_var})")
        return out

    # -- register writes ---------------------------------------------------
    def write(self, dest: str, value_var: str) -> None:
        if self.full:
            self._write_full(dest, value_var)
        else:
            self._write_masked(dest, value_var)

    def _write_full(self, dest: str, value_var: str) -> None:
        """Shadowed equivalent of ``write_register_full(dest, value)``."""
        shadow = self.shadows.get(dest)
        if shadow is not None:
            if shadow.kind == "array":
                self.emit(f"if {shadow.var}.dtype != {value_var}.dtype:")
                self.emit(f"    {value_var} = _pr({shadow.var}, {value_var})")
            # A buffer-handle shadow is simply rebound (no promotion),
            # exactly like write_register_full with a handle existing.
            self.emit(f"{shadow.var} = {value_var}")
            shadow.kind = "array"
            shadow.base = "dirty"
            return
        existing = self.temp("_e")
        self.emit(f"{existing} = R.get({dest!r})")
        self.emit(f"if ({existing} is not None and {existing}.__class__ is not _BH"
                  f" and {existing}.dtype != {value_var}.dtype):")
        self.emit(f"    {value_var} = _pr({existing}, {value_var})")
        var = self.temp("_s")
        self.emit(f"{var} = {value_var}")
        self.shadows[dest] = _Shadow(var, "array", base="dirty")

    def _write_masked(self, dest: str, value_var: str) -> None:
        """Deferred-merge equivalent of ``write_register(dest, value, mask)``:
        the shadow keeps the unmerged value; the pre-segment register value
        is captured (and dtype-promoted in lockstep, so the promotion chain
        matches the per-write merges exactly) for the flush-time merge."""
        shadow = self.shadows.get(dest)
        if shadow is not None and shadow.kind == "array":
            base = shadow.base
            if base is None:
                # Clean shadow: the current register value becomes the base.
                base = self.temp("_b")
                self.emit(f"{base} = {shadow.var}")
            self.emit(f"if {shadow.var}.dtype != {value_var}.dtype:")
            self.emit(f"    _ct = _np_result_type({shadow.var}.dtype, "
                      f"{value_var}.dtype)")
            self.emit(f"    {base} = {base}.astype(_ct)")
            self.emit(f"    if {value_var}.dtype != _ct:")
            self.emit(f"        {value_var} = {value_var}.astype(_ct)")
            self.emit(f"{shadow.var} = {value_var}")
            shadow.base = base
            return
        if shadow is not None:  # buffer-handle shadow: base is zeros
            base = self.temp("_b")
            self.emit(f"{base} = _np_zeros({self.warp_size}, "
                      f"dtype={value_var}.dtype)")
            self.emit(f"{shadow.var} = {value_var}")
            shadow.kind = "array"
            shadow.base = base
            return
        existing = self.temp("_e")
        base = self.temp("_b")
        self.emit(f"{existing} = R.get({dest!r})")
        self.emit(f"if {existing} is None or {existing}.__class__ is _BH:")
        self.emit(f"    {base} = _np_zeros({self.warp_size}, "
                  f"dtype={value_var}.dtype)")
        self.emit("else:")
        self.emit(f"    {base} = {existing}")
        self.emit(f"    if {base}.dtype != {value_var}.dtype:")
        self.emit(f"        _ct = _np_result_type({base}.dtype, "
                  f"{value_var}.dtype)")
        self.emit(f"        {base} = {base}.astype(_ct)")
        self.emit(f"        if {value_var}.dtype != _ct:")
        self.emit(f"            {value_var} = {value_var}.astype(_ct)")
        var = self.temp("_s")
        self.emit(f"{var} = {value_var}")
        self.shadows[dest] = _Shadow(var, "array", base=base)

    def flush_dirty(self) -> None:
        """Write every dirty shadow back to the register file (and, in
        masked mode, perform its deferred merge); shadows stay usable."""
        for name, shadow in self.shadows.items():
            if shadow.kind != "array" or shadow.base is None:
                continue
            if self.full:
                self.emit(f"R[{name!r}] = {shadow.var}")
            else:
                merged = self.temp("_m")
                self.emit(f"{merged} = _np_where(mask, {shadow.var}, "
                          f"{shadow.base})")
                self.emit(f"R[{name!r}] = {merged}")
                self.emit(f"{shadow.var} = {merged}")
            shadow.base = None

    def drop_shadow(self, name: Optional[str]) -> None:
        if name is not None:
            self.shadows.pop(name, None)

    # -- dynamic (memory) pricing ------------------------------------------
    def memory_cost(self, inst_var: str, info_expr: str, decoded,
                    source_index: int) -> None:
        """Price through the live cost model (fallback instructions only:
        atomics and unknown opcodes, whose access the closure performed)."""
        self._needs_memory_cost = True
        cost = self.temp("_c")
        self.emit(f"{cost} = _mc({inst_var}, {self.active_lanes()}, {info_expr})")
        self.emit(f"warp.cycles += {cost}")
        self._emit_dynamic_profile(cost, decoded, source_index)

    def bounds_stats(self, handle: str, index: str, inst_var: str,
                     active: str, lo: str, hi: str) -> Optional[str]:
        """Emit the bounds check + extrema for one access.

        In full-mask mode the check goes through the executor's
        identity-keyed memo: the same index-array object checked against
        the same handle object must produce the same ``(converted, lo,
        hi)`` -- index arrays are never mutated in place once registered,
        and a trapping access never reaches the memo -- so loop-invariant
        addressing (the steady state of every hot kernel loop) collapses
        to a dict probe.  Returns the entry variable so the pricing can
        memoize its transaction/conflict count in slot 5, or ``None`` in
        masked mode where the freshly sliced ``index[mask]`` can never
        hit an identity cache.
        """
        if not self.full:
            self.emit(f"{active}, {lo}, {hi} = "
                      f"{handle}.check_bounds_stats({index}[mask], "
                      f"{inst_var})")
            return None
        self._needs_bounds_cache = True
        key = self.temp("_k")
        entry = self.temp("_e")
        self.emit(f"{key} = (id({index}), id({handle}))")
        self.emit(f"{entry} = _bc.get({key})")
        self.emit(f"if {entry} is not None and {entry}[0] is {index} "
                  f"and {entry}[1] is {handle}:")
        self.emit(f"    {active} = {entry}[2]; {lo} = {entry}[3]; "
                  f"{hi} = {entry}[4]")
        self.emit("else:")
        self.emit(f"    {active}, {lo}, {hi} = "
                  f"{handle}.check_bounds_stats({index}, {inst_var})")
        self.emit(f"    {entry} = [{index}, {handle}, {active}, {lo}, "
                  f"{hi}, None]")
        self.emit("    if len(_bc) < 512:")
        self.emit(f"        _bc[{key}] = {entry}")
        return entry

    def inline_memory_price(self, handle: str, active: str, lo: str, hi: str,
                            decoded, source_index: int, is_store: bool,
                            entry: Optional[str] = None) -> None:
        """Inline the pricing of one bounds-checked load/store access.

        Emits the exact arithmetic of :meth:`CostModel.price_access` with
        the arch's geometry and latencies baked as literals (the structural
        cache key covers them via :func:`_pricing_signature`), accumulating
        cycles and counter evidence into per-segment locals that
        :meth:`_emit_counter_flush` folds into the cost-model counters in
        one aggregated bump per counter.  Exact: every latency is an
        integer, so the reordered float64 sums match the reference's
        per-access bumps bit for bit.  With a memo *entry* (full mode),
        the transaction/conflict count is cached in slot 5 -- valid
        because the entry is keyed by (index object, handle object) and
        the count depends only on the index values and the baked geometry.
        """
        arch = self.arch
        self._needs_mem_accumulators = True
        cost = self.temp("_c")
        tx = self.temp("_tx")
        cf = self.temp("_cf")
        gbase = float(arch.global_store_latency if is_store
                      else arch.global_latency)
        sbase = float(arch.shared_store_latency if is_store
                      else arch.shared_latency)
        self.emit(f"if {handle}.space == 'global':")
        if entry is not None:
            self.emit(f"    {tx} = {entry}[5]")
            self.emit(f"    if {tx} is None:")
            self.emit(f"        {tx} = _txs({active}, {lo}, {hi}, "
                      f"{arch.memory_segment_size})")
            self.emit(f"        {entry}[5] = {tx}")
        else:
            self.emit(f"    {tx} = _txs({active}, {lo}, {hi}, "
                      f"{arch.memory_segment_size})")
        self.emit(f"    {cost} = {gbase!r} if {tx} <= 1 else "
                  f"{gbase!r} + {arch.global_per_transaction} * ({tx} - 1)")
        self.emit(f"    _gn += 1; _gc += {cost}; _gt += {tx}")
        self.emit(f"elif {handle}.space == 'shared':")
        if entry is not None:
            self.emit(f"    {cf} = {entry}[5]")
            self.emit(f"    if {cf} is None:")
            self.emit(f"        {cf} = _bks({active}, {lo}, {hi}, "
                      f"{arch.shared_banks})")
            self.emit(f"        {entry}[5] = {cf}")
        else:
            self.emit(f"    {cf} = _bks({active}, {lo}, {hi}, "
                      f"{arch.shared_banks})")
        self.emit(f"    {cost} = {sbase!r} if {cf} <= 1 else "
                  f"{sbase!r} + {arch.shared_conflict_penalty} * ({cf} - 1)")
        self.emit(f"    _sn += 1; _sc += {cost}; _sf += {cf}")
        self.emit("else:")
        self.emit(f"    {cost} = {float(arch.alu_latency)!r}")
        self.emit(f"    _an += 1; _ac += {cost}")
        self.emit(f"_dyn += {cost}")
        self._emit_dynamic_profile(cost, decoded, source_index)

    def _emit_dynamic_profile(self, cost: str, decoded,
                              source_index: int) -> None:
        instruction = decoded.instruction
        location = (str(instruction.loc) if instruction.loc is not None else None)
        uid = self.bind("_u", ("uid", source_index))
        profile = self.temp("_p")
        self.emit("if profiles is not None:")
        self.emit(f"    {profile} = profiles.get({uid})")
        self.emit(f"    if {profile} is None:")
        self.emit(f"        {profile} = _IP({uid}, {instruction.opcode!r}, "
                  f"{location!r})")
        self.emit(f"        profiles[{uid}] = {profile}")
        self.emit(f"    {profile}.executions += 1")
        self.emit(f"    {profile}.cycles += {cost}")

    def _emit_counter_flush(self) -> None:
        """One aggregated bump per touched counter at segment end.

        Gated on the access *counts*, not the accumulated values: a priced
        access always creates its counter keys in the reference (``_bump``
        with amount 0 still inserts the key), so a zero-valued accumulator
        with at least one access must still create them here.
        """
        self.emit("if _gn:")
        self.emit("    counters['global_cycles'] = "
                  "counters.get('global_cycles', 0.0) + _gc")
        self.emit("    counters['global_transactions'] = "
                  "counters.get('global_transactions', 0.0) + _gt")
        self.emit("if _sn:")
        self.emit("    counters['shared_cycles'] = "
                  "counters.get('shared_cycles', 0.0) + _sc")
        self.emit("    counters['shared_conflicts'] = "
                  "counters.get('shared_conflicts', 0.0) + _sf")
        self.emit("if _an:")
        self.emit("    counters['alu_cycles'] = "
                  "counters.get('alu_cycles', 0.0) + _ac")
        self.emit("warp.cycles += _dyn")

    # -- per-instruction bodies --------------------------------------------
    def closure_fallback(self, decoded, inst_var: str, source_index: int) -> None:
        """Run the instruction through its decoded handler closure (the
        uncommon opcodes); shadows are flushed so the closure sees a
        coherent register file, and its destination shadow is dropped."""
        self.flush_dirty()
        execute = self.bind("_EX", ("execute", source_index))
        full = "True" if self.full else "False"
        if decoded.static_cost is None:
            info = self.temp("_mi")
            self.emit(f"{info} = {execute}(ex, mask, {full})")
            self.drop_shadow(decoded.instruction.dest)
            self.memory_cost(inst_var, info, decoded, source_index)
        else:
            self.emit(f"{execute}(ex, mask, {full})")
            self.drop_shadow(decoded.instruction.dest)

    def compile_instruction(self, decoded, source_index: int) -> None:
        instruction = decoded.instruction
        opcode = instruction.opcode
        inst_var = self.bind("_I", ("inst", source_index))
        ws = self.warp_size

        def numeric(operand_index, merged=False):
            return self.numeric(instruction.operands[operand_index], inst_var,
                                source_index, operand_index, merged=merged)

        if opcode in _ARITHMETIC:
            operands = [numeric(i) for i in range(len(instruction.operands))]
            value = self.temp("_v")
            if opcode == "add":
                self.emit(f"{value} = {operands[0]} + {operands[1]}")
            elif opcode == "sub":
                self.emit(f"{value} = {operands[0]} - {operands[1]}")
            elif opcode == "mul":
                self.emit(f"{value} = {operands[0]} * {operands[1]}")
            elif opcode == "cmp.eq":
                self.emit(f"{value} = {operands[0]} == {operands[1]}")
            elif opcode == "cmp.ne":
                self.emit(f"{value} = {operands[0]} != {operands[1]}")
            elif opcode == "cmp.lt":
                self.emit(f"{value} = {operands[0]} < {operands[1]}")
            elif opcode == "cmp.le":
                self.emit(f"{value} = {operands[0]} <= {operands[1]}")
            elif opcode == "cmp.gt":
                self.emit(f"{value} = {operands[0]} > {operands[1]}")
            elif opcode == "cmp.ge":
                self.emit(f"{value} = {operands[0]} >= {operands[1]}")
            elif opcode == "min":
                self.emit(f"{value} = _np_minimum({operands[0]}, {operands[1]})")
            elif opcode == "max":
                self.emit(f"{value} = _np_maximum({operands[0]}, {operands[1]})")
            elif opcode == "neg":
                self.emit(f"{value} = -{operands[0]}")
            elif opcode == "abs":
                self.emit(f"{value} = _np_abs({operands[0]})")
            elif opcode == "mov":
                self.emit(f"{value} = {operands[0]}.copy()")
            elif opcode == "ftoi":
                self.emit(f"{value} = {operands[0]}.astype(_INT)")
            elif opcode == "itof":
                self.emit(f"{value} = {operands[0]}.astype(_FLOAT)")
            elif opcode == "select":
                self.emit(f"{value} = _np_where({operands[0]}.astype(bool), "
                          f"{operands[1]}, {operands[2]})")
            elif opcode == "fma":
                self.emit(f"{value} = {operands[0]} * {operands[1]} + {operands[2]}")
            elif opcode in ("div", "rem"):
                self._emit_division(opcode, operands, value, inst_var)
            elif opcode in ("and", "or", "xor"):
                logical, bitwise = {
                    "and": ("_np_land", "_np_band"),
                    "or": ("_np_lor", "_np_bor"),
                    "xor": ("_np_lxor", "_np_bxor"),
                }[opcode]
                a, b = operands
                self.emit(f"if {a}.dtype == bool and {b}.dtype == bool:")
                self.emit(f"    {value} = {logical}({a}, {b})")
                self.emit("else:")
                self.emit(f"    {value} = {bitwise}(_il({a}), _il({b}))")
            elif opcode == "not":
                a, = operands
                self.emit(f"if {a}.dtype == bool:")
                self.emit(f"    {value} = _np_lnot({a})")
                self.emit("else:")
                self.emit(f"    {value} = _np_bnot(_il({a}))")
            elif opcode == "shl":
                self.emit(f"{value} = _np_shl(_il({operands[0]}), "
                          f"_il({operands[1]}))")
            elif opcode == "shr":
                self.emit(f"{value} = _np_shr(_il({operands[0]}), "
                          f"_il({operands[1]}))")
            else:
                # A future arithmetic opcode this compiler does not know
                # yet: call the shared handler so tiers cannot drift.
                handler = self.bind("_H", ("handler", opcode))
                args = ", ".join(operands) + ("," if len(operands) == 1 else "")
                self.emit(f"{value} = {handler}(ex, {inst_var}, ({args}))")
            self.write(instruction.dest, value)
            return

        if opcode in _IDENTITY_OPCODES:
            value = self.temp("_v")
            if self.full:
                self.emit(f"{value} = _idn[{opcode!r}].copy()")
            else:
                # The masked write merges into a fresh array, so the
                # defensive copy the direct-store path needs is dropped.
                self.emit(f"{value} = _idn[{opcode!r}]")
            self.write(instruction.dest, value)
            return

        if opcode == "load":
            handle = self.buffer(instruction.operands[0], inst_var,
                                 source_index, 0)
            index = numeric(1)
            active = self.temp("_ai")
            lo = self.temp("_lo")
            hi = self.temp("_hi")
            value = self.temp("_v")
            entry = self.bounds_stats(handle, index, inst_var, active, lo, hi)
            if self.full:
                self.emit(f"{value} = {handle}.array[{active}]")
            else:
                self.emit(f"{value} = _np_zeros({ws}, dtype={handle}.array.dtype)")
                self.emit(f"{value}[mask] = {handle}.array[{active}]")
            self.write(instruction.dest, value)
            if decoded.static_cost is None:
                self.inline_memory_price(handle, active, lo, hi, decoded,
                                         source_index, is_store=False,
                                         entry=entry)
            return

        if opcode in ("store", "memset"):
            handle = self.buffer(instruction.operands[0], inst_var,
                                 source_index, 0)
            index = numeric(1)
            value = numeric(2)
            active = self.temp("_ai")
            lo = self.temp("_lo")
            hi = self.temp("_hi")
            entry = self.bounds_stats(handle, index, inst_var, active, lo, hi)
            if self.full:
                self.emit(f"{handle}.array[{active}] = "
                          f"{value}.astype({handle}.array.dtype)")
            else:
                self.emit(f"{handle}.array[{active}] = "
                          f"{value}[mask].astype({handle}.array.dtype)")
            if decoded.static_cost is None:
                self.inline_memory_price(handle, active, lo, hi, decoded,
                                         source_index, is_store=True,
                                         entry=entry)
            return

        if opcode == "activemask":
            value = self.temp("_v")
            if ws != 32:
                self.emit(f"{value} = _np_full({ws}, 0, dtype=_INT)")
            elif self.full:
                # All 32 lanes active: the ballot bits are a constant.
                self.emit(f"{value} = _np_full({ws}, 4294967295, dtype=_INT)")
            else:
                self.emit(f"{value} = _np_full({ws}, int(_np_packbits("
                          f"mask[::-1]).view(\">u4\")[0]), dtype=_INT)")
            self.write(instruction.dest, value)
            return

        if opcode == "ballot.sync":
            predicate = numeric(1)
            value = self.temp("_v")
            if ws == 32:
                voters = self.temp("_vt")
                self.emit(f"{voters} = mask & {predicate}.astype(bool)")
                self.emit(f"{value} = _np_full({ws}, int(_np_packbits("
                          f"{voters}[::-1]).view(\">u4\")[0]), dtype=_INT)")
            else:
                self.emit(f"{value} = _np_full({ws}, 0, dtype=_INT)")
            self.write(instruction.dest, value)
            return

        if opcode in ("shfl.sync", "shfl.up.sync", "shfl.down.sync"):
            # Both operands must see the merged register values: the value
            # is gathered across lanes, and the lane/delta operand shapes
            # the gather's indices at *every* position -- an unmerged
            # inactive-lane delta could index out of range where the
            # dispatch tier's merged register stays in bounds.
            value = numeric(1, merged=True)
            lane = numeric(2, merged=True)
            lanes = self.temp("_ln")
            if opcode == "shfl.sync":
                # minimum(maximum(x, 0), ws-1) == clip(x, 0, ws-1) on the
                # int64 lane indices, without np.clip's getlimits overhead.
                self.emit(f"{lanes} = _np_minimum(_np_maximum("
                          f"{lane}.astype(_INT), 0), {ws - 1})")
            elif opcode == "shfl.up.sync":
                self.emit(f"{lanes} = {self.lanes_var()} - {lane}.astype(_INT)")
                self.emit(f"{lanes} = _np_where({lanes} < 0, "
                          f"{self.lanes_var()}, {lanes})")
            else:
                self.emit(f"{lanes} = {self.lanes_var()} + {lane}.astype(_INT)")
                self.emit(f"{lanes} = _np_where({lanes} >= {ws}, "
                          f"{self.lanes_var()}, {lanes})")
            result = self.temp("_v")
            self.emit(f"{result} = {value}[{lanes}]")
            self.write(instruction.dest, result)
            return

        if opcode == "syncwarp":
            # Resolving the mask operand is the only observable effect
            # (it traps on undefined/buffer operands).
            numeric(0)
            return

        if opcode == "rand.uniform":
            seed = numeric(0)
            step = numeric(1)
            salt = numeric(2)
            value = self.temp("_v")
            self.emit(f"{value} = _cu({seed}.astype(_INT), {step}.astype(_INT), "
                      f"{salt}.astype(_INT))")
            self.write(instruction.dest, value)
            return

        if opcode == "nop":
            return

        # Atomics and anything else (including unimplemented opcodes,
        # which trap with the interpreter's exact message).
        self.closure_fallback(decoded, inst_var, source_index)

    def lanes_var(self) -> str:
        if "_lanes" not in (name for name, _ in self.plan):
            self.plan.append(("_lanes", ("lanes",)))
        return "_lanes"

    def _emit_division(self, opcode: str, operands: List[str], value: str,
                       inst_var: str) -> None:
        """Inline the ``div``/``rem`` handler: active-lane zero trap, then
        the runtime dtype dispatch (operands of the segment's executor are
        always plain arrays, so the handler's ``np.asarray`` is a no-op;
        its ``active_mask`` is exactly this segment's ``mask``)."""
        numerator, denominator = operands
        active = self.temp("_da")
        if self.full:
            self.emit(f"if ({denominator} == 0).any():")
        else:
            self.emit(f"{active} = {denominator}[mask]")
            self.emit(f"if {active}.size and ({active} == 0).any():")
        self.emit(f"    ex._trap(\"division by zero\", {inst_var})")
        safe = self.temp("_sf")
        self.emit(f"{safe} = _np_where({denominator} == 0, 1, {denominator})")
        if opcode == "div":
            self.emit(f"if {numerator}.dtype.kind == \"f\" "
                      f"or {denominator}.dtype.kind == \"f\":")
            self.emit(f"    {value} = {numerator} / {safe}")
            self.emit("else:")
            self.emit(f"    {value} = _np_floor_divide({numerator}, {safe})")
        else:
            self.emit(f"{value} = _np_remainder(_il({numerator}), _il({safe}))")

    # -- the folded terminator ----------------------------------------------
    def compile_terminator(self) -> None:
        """Emit the block terminator inline (after the register flush):
        the same transfer/divergence discipline as the dispatch loop's
        control-step branch, minus one loop round-trip per block."""
        step = self.terminator
        kind = step.kind
        if kind == STEP_BR:
            target = self.bind("_pc", ("pc_target",))
            self.emit(f"top.pc = {target}")
            return
        if kind == STEP_RET:
            after = self.bind("_pc", ("pc_after",))
            self.emit(f"top.pc = {after}")
            self.emit("warp.retire_lanes(mask.copy())")
            return
        # condbr
        inst_var = self.bind("_I", ("inst", -1))
        cond_expr = self.numeric(step.instruction.operands[0], inst_var, -1, 0)
        cond = self.temp("_cond")
        self.emit(f"{cond} = {cond_expr}.astype(bool)")
        pc_true = self.bind("_pc", ("pc_true",))
        pc_false = self.bind("_pc", ("pc_false",))
        taken = self.temp("_tk")
        not_taken = self.temp("_nt")
        if self.full:
            # mask is all-true: taken == cond, not_taken == ~cond, and the
            # two uniform outcomes resolve from cond alone.
            self.emit(f"if {cond}.all():")
            self.emit(f"    top.pc = {pc_true}")
            self.emit(f"elif not {cond}.any():")
            self.emit(f"    top.pc = {pc_false}")
            self.emit("else:")
            self.emit(f"    {taken} = {cond}")
            self.emit(f"    {not_taken} = ~{cond}")
            self._emit_divergence(pc_true, pc_false, taken, not_taken,
                                  step.reconvergence, indent="    ")
        else:
            self.emit(f"{taken} = mask & {cond}")
            self.emit(f"{not_taken} = mask & ~{cond}")
            self.emit(f"if not {not_taken}.any():")
            self.emit(f"    top.pc = {pc_true}")
            self.emit(f"elif not {taken}.any():")
            self.emit(f"    top.pc = {pc_false}")
            self.emit("else:")
            self._emit_divergence(pc_true, pc_false, taken, not_taken,
                                  step.reconvergence, indent="    ")

    def _emit_divergence(self, pc_true: str, pc_false: str, taken: str,
                         not_taken: str, reconvergence: Optional[str],
                         indent: str) -> None:
        if reconvergence is None:
            # No common post-dominator: run each side to completion under
            # its own mask.
            self.emit(f"{indent}top.pc = {pc_false}")
            self.emit(f"{indent}top.mask = {not_taken}")
            self.emit(f"{indent}warp.stack.append(_SE({pc_true}, {taken}, None))")
            return
        pc_rc = self.bind("_pc", ("pc_rc",))
        self.emit(f"{indent}top.pc = {pc_rc}")
        self.emit(f"{indent}_stk = warp.stack")
        self.emit(f"{indent}_stk.append(_SE({pc_false}, {not_taken}, "
                  f"{reconvergence!r}))")
        self.emit(f"{indent}_stk.append(_SE({pc_true}, {taken}, "
                  f"{reconvergence!r}))")

    # -- whole segment ------------------------------------------------------
    def generate(self) -> Tuple[str, tuple]:
        """Produce the factory source and its binding plan."""
        segment = self.segment
        body = segment.body
        terminator = self.terminator
        static_cycles = segment.static_cycles
        counter_totals = dict(segment.counter_totals)
        count = len(body)
        has_static_prof = any(d.static_cost is not None for d in body)
        if terminator is not None:
            # Fold the terminator's launch-invariant charges into the
            # aggregates (integer cycle costs, so the reordering is exact).
            count += 1
            has_static_prof = True
            static_cycles += terminator.static_cost
            if terminator.counter_key is not None:
                counter_totals[terminator.counter_key] = (
                    counter_totals.get(terminator.counter_key, 0.0)
                    + terminator.static_cost)

        prelude = ["R = warp.registers",
                   f"warp.instructions_executed += {count}"]
        if static_cycles:
            prelude.append(f"warp.cycles += {static_cycles!r}")
        for key, total in sorted(counter_totals.items()):
            prelude.append(f"counters[{key!r}] = "
                           f"counters.get({key!r}, 0.0) + {total!r}")
        if has_static_prof:
            self.plan.append(("_static_prof", ("static_prof",)))
            self.plan.append(("_sk", ("seg_key",)))
            prelude += [
                "if profiles is not None:",
                "    _pl = ex._jit_profiles.get(_sk)",
                "    if _pl is None:",
                "        _pl = _bsp(profiles, _static_prof)",
                "        ex._jit_profiles[_sk] = _pl",
                "    for _pp, _pc in _pl:",
                "        _pp.executions += 1",
                "        _pp.cycles += _pc",
            ]

        for source_index, decoded in enumerate(body):
            self.compile_instruction(decoded, source_index)
        if self._needs_mem_accumulators:
            self._emit_counter_flush()
        self.flush_dirty()
        if terminator is not None:
            self.compile_terminator()

        if any(inst.opcode in _IDENTITY_OPCODES
               for inst in (d.instruction for d in body)):
            prelude.insert(1, "_idn = ex._identity_values")
        if self._needs_memory_cost:
            prelude.insert(1, "_mc = ex.cost_model._memory_cost")
        if self._needs_bounds_cache:
            prelude.insert(1, "_bc = ex._bounds_cache")
        if self._needs_mem_accumulators:
            prelude.append("_gn = _gt = _sn = _sf = _an = 0")
            prelude.append("_gc = _sc = _ac = _dyn = 0.0")

        names = [name for name, _ in self.plan]
        unpack = []
        if names:
            unpack = ["(" + ", ".join(names) + ("," if len(names) == 1 else "")
                      + ") = _bound"]
        source = "\n".join(
            ["def _factory(_bound):"]
            + ["    " + line for line in unpack]
            + ["    def _segment_kernel(ex, warp, top, mask, counters, "
               "profiles):"]
            + ["        " + line for line in prelude + self.lines]
            + ["        return None",
               "    return _segment_kernel"])
        return source, tuple(item for _, item in self.plan)


def _build_factory(source: str):
    namespace = dict(_BASE_ENV)
    code = compile(source, _SOURCE_FILENAME, "exec")
    exec(code, namespace)  # noqa: S102 - the source is generated above
    return namespace["_factory"]


def compile_segment(segment: Segment, warp_size: int, label: str,
                    arch: GpuArch,
                    terminator: Optional[ControlStep] = None) -> Tuple:
    """Compile one exact segment into its JIT record:
    ``(full-mask kernel, masked kernel, instruction count, combined)``,
    where *combined* records whether the block terminator was folded in
    (the interpreter then treats the call as the control transfer)."""
    signature = _segment_signature(segment, terminator, warp_size,
                                   _pricing_signature(arch))
    cached = _SEGMENT_CACHE.get(signature)
    if cached is None:
        if len(_SEGMENT_CACHE) >= _SEGMENT_CACHE_LIMIT:
            _SEGMENT_CACHE.clear()
        full_source, full_plan = _SegmentCompiler(
            segment, warp_size, True, arch, terminator).generate()
        masked_source, masked_plan = _SegmentCompiler(
            segment, warp_size, False, arch, terminator).generate()
        cached = (_build_factory(full_source), full_plan,
                  _build_factory(masked_source), masked_plan)
        _SEGMENT_CACHE[signature] = cached
    full_factory, full_plan, masked_factory, masked_plan = cached
    seg_key = next(_SEGMENT_KEYS)
    return (
        full_factory(_resolve_plan(full_plan, segment, terminator, label,
                                   warp_size, seg_key)),
        masked_factory(_resolve_plan(masked_plan, segment, terminator, label,
                                     warp_size, seg_key)),
        len(segment.body) + (1 if terminator is not None else 0),
        terminator is not None,
    )


def attach_jit(decoded: DecodedFunction, arch: GpuArch) -> None:
    """Compile every exact segment of *decoded* in place (idempotent).

    A segment directly followed by its block's ``br``/``condbr``/``ret``
    terminator is compiled together with it (the mega-closure form), and
    every such control step additionally gets a *single-instruction*
    compilation of its own -- an empty segment with the terminator folded
    in -- so blocks with no preceding straight-line segment (loop latches,
    header tests, bare returns) and mid-block resumes landing on the
    terminator execute compiled too; barriers keep going through the
    dispatch loop.  *arch* supplies the memory pricing the generated
    source bakes in (covered by the structural cache key).
    """
    warp_size = decoded.warp_size
    for label, block in decoded.blocks.items():
        steps = block.steps
        index = 0
        for position, step in enumerate(steps):
            if step.kind == STEP_SEGMENT:
                if step.exact and step.jit_fns is None:
                    terminator = None
                    following = (steps[position + 1]
                                 if position + 1 < len(steps) else None)
                    if (following is not None
                            and following.kind in (STEP_BR, STEP_CONDBR, STEP_RET)
                            and float(following.static_cost).is_integer()):
                        terminator = following
                    step.jit_fns = compile_segment(step, warp_size, label,
                                                   arch, terminator)
                index += len(step.body)
                continue
            if (step.kind in (STEP_BR, STEP_CONDBR, STEP_RET)
                    and step.jit_fns is None
                    and float(step.static_cost).is_integer()):
                # An empty segment starting at the control step makes the
                # folded terminator's pc_after equal the step's own index,
                # so the compiled RET leaves top.pc exactly where the
                # dispatch loop's plain path does.
                step.jit_fns = compile_segment(Segment(index), warp_size,
                                               label, arch, step)
            index += 1
    decoded.jit_ready = True


def jit_function(function: Function, arch: GpuArch) -> DecodedFunction:
    """Decode *function* and compile its segments, memoised with the same
    fingerprint scheme as :func:`~repro.gpu.decoded.decode_function` --
    a GEVO mutation invalidates exactly the touched function's decoding,
    and the compiled segments die with it."""
    decoded = decode_function(function, arch)
    if not decoded.jit_ready:
        attach_jit(decoded, arch)
    return decoded


# --------------------------------------------------------------------------- structural keys
def _const_class(value) -> str:
    """The dtype class a constant operand decodes to (see ``_const_array``)."""
    if isinstance(value, bool):
        return "b"
    return "i" if isinstance(value, int) else "f"


def structural_function_key(function: Function, arch: GpuArch) -> tuple:
    """Whole-function extension of the segment structural key.

    Two functions with equal keys decode to programs of identical shape
    -- same blocks, opcodes, destinations, register operand names,
    branch targets, uids, source locations and baked costs -- and differ
    at most in the *values* of constant operands (within the same dtype
    class).  That is exactly the co-batchable relation: such clones can
    execute one batched launch with per-row constant columns
    (:mod:`repro.gpu.batched`), just as they already share one compiled
    segment factory here.  The key includes the arch's warp size and
    cost/pricing signature for the same reason the segment key does.
    """
    blocks = []
    for label in function.block_order():
        instructions = []
        for inst in function.blocks[label].instructions:
            operands = tuple(
                ("r", op.name) if isinstance(op, Reg)
                else ("c", _const_class(op.value)) if isinstance(op, Const)
                else ("o", repr(op))
                for op in inst.operands)
            instructions.append((
                inst.uid, inst.opcode, inst.dest, operands,
                tuple(sorted((k, v) for k, v in inst.attrs.items()
                             if isinstance(v, (str, int, float, bool)))),
                str(inst.loc) if inst.loc is not None else None,
            ))
        blocks.append((label, tuple(instructions)))
    return (
        function.name,
        tuple((p.name, p.kind) for p in function.params),
        tuple((s.name, s.dtype, s.size) for s in function.shared),
        tuple(blocks),
        arch.warp_size,
        arch.cost_signature(),
        _pricing_signature(arch),
    )


def structural_module_key(module, arch: GpuArch) -> tuple:
    """Structural co-batching key of a whole module (all functions)."""
    return tuple(structural_function_key(module.get_function(name), arch)
                 for name in module.function_order())
