"""Execution profiler for the simulated GPU.

Plays the role ``nvprof`` plays in the paper's analysis: it attributes
executed cycles and execution counts to individual IR instructions (by
uid) and aggregates them by source location, which is what the
weak-edit-removal step (Algorithm 1, Section V-A) and the boundary-check
analysis (Section VI-D) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import Instruction


@dataclass
class InstructionProfile:
    """Aggregate statistics for one static instruction."""

    uid: int
    opcode: str
    location: Optional[str]
    executions: int = 0
    cycles: float = 0.0

    def record(self, cycles: float) -> None:
        self.executions += 1
        self.cycles += cycles


@dataclass
class ProfileCollector:
    """Collects per-instruction execution statistics during a launch."""

    enabled: bool = True
    instructions: Dict[int, InstructionProfile] = field(default_factory=dict)
    #: JIT-tier cache of per-segment ``(InstructionProfile, cost)`` bindings
    #: (see :mod:`repro.gpu.jitted`), shared by every warp of the launch so
    #: compiled segments bump profile objects directly.
    jit_bindings: Dict[int, tuple] = field(default_factory=dict, repr=False,
                                           compare=False)

    def record(self, instruction: Instruction, cycles: float) -> None:
        # The decoded fast path (WarpExecutor._run_decoded) inlines this
        # get-or-create-then-bump body for speed; keep the two in sync.
        if not self.enabled:
            return
        profile = self.instructions.get(instruction.uid)
        if profile is None:
            location = str(instruction.loc) if instruction.loc is not None else None
            profile = InstructionProfile(instruction.uid, instruction.opcode, location)
            self.instructions[instruction.uid] = profile
        profile.record(cycles)

    # -- report helpers ----------------------------------------------------------
    def total_cycles(self) -> float:
        return sum(p.cycles for p in self.instructions.values())

    def total_executions(self) -> int:
        return sum(p.executions for p in self.instructions.values())

    def hottest(self, top: int = 10) -> Tuple[InstructionProfile, ...]:
        """The *top* instructions by attributed cycles."""
        ranked = sorted(self.instructions.values(), key=lambda p: p.cycles, reverse=True)
        return tuple(ranked[:top])

    def by_source_line(self) -> Dict[str, float]:
        """Cycles aggregated per source location string (``file:line``)."""
        lines: Dict[str, float] = {}
        for profile in self.instructions.values():
            key = profile.location or "<unknown>"
            lines[key] = lines.get(key, 0.0) + profile.cycles
        return lines

    def by_opcode_category(self, function: Function) -> Dict[str, float]:
        """Cycles aggregated per opcode category for instructions of *function*.

        Used to reproduce observations such as "31% of the kernel
        instructions were performing boundary-comparison logic".
        """
        categories: Dict[str, float] = {}
        uid_to_category = {inst.uid: inst.info.category for inst in function.instructions()}
        for uid, profile in self.instructions.items():
            category = uid_to_category.get(uid, "other")
            categories[category] = categories.get(category, 0.0) + profile.cycles
        return categories

    def fraction_of_cycles(self, uids) -> float:
        """Fraction of all attributed cycles spent in the given instruction uids."""
        total = self.total_cycles()
        if total <= 0:
            return 0.0
        subset = sum(self.instructions[uid].cycles for uid in uids if uid in self.instructions)
        return subset / total

    def merge(self, other: "ProfileCollector") -> None:
        """Fold another collector's statistics into this one."""
        for uid, profile in other.instructions.items():
            mine = self.instructions.get(uid)
            if mine is None:
                self.instructions[uid] = InstructionProfile(
                    profile.uid, profile.opcode, profile.location,
                    profile.executions, profile.cycles,
                )
            else:
                mine.executions += profile.executions
                mine.cycles += profile.cycles
