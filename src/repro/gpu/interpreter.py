"""Lock-step SIMT execution of one warp.

:class:`WarpExecutor` interprets mini-IR instructions for a single warp,
vectorised over the 32 lanes with numpy.  Branch divergence is handled
with the classic reconvergence-stack algorithm: a divergent conditional
branch turns the current stack entry into a "wait at the immediate
post-dominator" entry and pushes one entry per side, so both sides execute
serially under partial masks -- the behaviour responsible for the paper's
Section VI-A finding.

Runtime faults (out-of-bounds accesses, undefined registers, division by
zero, runaway loops) raise :class:`~repro.errors.KernelTrap`; GEVO treats
trapped variants as failed test cases.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import KernelTrap
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.values import Const, Reg
from .memory import BufferHandle, SharedMemoryBlock
from .profiler import InstructionProfile, ProfileCollector
from .rng import counter_uniform
from .timing import CostModel, MemoryAccessInfo
from .warp import StackEntry, WarpState, WarpStatus, broadcast_scalar_arrays

_INT = np.int64
_FLOAT = np.float64

#: Step kinds of a decoded block (see :mod:`repro.gpu.decoded`): a
#: straight-line segment of simple instructions, the three control
#: terminators, and the block-wide barrier.
STEP_SEGMENT, STEP_BR, STEP_CONDBR, STEP_RET, STEP_BARRIER = range(5)


class WarpExecutor:
    """Executes one warp of a thread block until it blocks or finishes.

    Three execution tiers exist.  The *reference* path walks the IR tree,
    re-dispatching on string opcodes for every executed instruction.  When
    a decoded program (:class:`repro.gpu.decoded.DecodedFunction`) is
    supplied, :meth:`run` instead executes pre-bound handler closures in
    block-local straight-line batches (the *dispatch* tier); with ``jit``
    set as well, segments carrying compiled kernels
    (:mod:`repro.gpu.jitted`) execute as single calls.  All tiers are
    bit-for-bit equivalent; each step up is several times faster.
    """

    def __init__(
        self,
        function: Function,
        warp: WarpState,
        shared: SharedMemoryBlock,
        global_bindings: Dict[str, BufferHandle],
        scalar_bindings: Dict[str, float],
        postdominators: Dict[str, Optional[str]],
        cost_model: CostModel,
        profiler: ProfileCollector,
        max_instructions: int = 1_000_000,
        decoded=None,
        jit: bool = False,
        scalar_arrays: Optional[Dict[str, np.ndarray]] = None,
    ):
        self._decoded = decoded
        #: Execute compiled segment kernels (:mod:`repro.gpu.jitted`) when
        #: the decoded program carries them; the dispatch tier leaves this
        #: off so it measures (and exercises) the pure dispatch loop.
        self._jit = bool(jit) and decoded is not None
        #: Launch-level cache of (InstructionProfile, cost) bindings, keyed
        #: by compiled-segment id and shared by every warp of the launch --
        #: lets a compiled segment bump profile objects directly instead of
        #: probing the profiler dict per instruction per execution.
        self._jit_profiles: Dict[int, tuple] = profiler.jit_bindings
        #: Identity-keyed memo of bounds-checked accesses, probed by the
        #: compiled full-mask path: ``(id(index), id(handle)) -> [index,
        #: handle, converted, lo, hi, priced_count]``.  Sound because
        #: registered index arrays are never mutated in place (registers
        #: are rebound, not written through) and entries hold strong
        #: references, so an id can never be reused while its entry lives.
        #: Capped at 512 entries; loop-invariant addressing -- the steady
        #: state of hot kernel loops -- hits for the executor's lifetime.
        self._bounds_cache: Dict[tuple, list] = {}
        self.function = function
        self.warp = warp
        self.shared = shared
        self.cost_model = cost_model
        self.profiler = profiler
        self.postdominators = postdominators
        self.max_instructions = max_instructions
        self.warp_size = warp.warp_size
        # Pre-bind parameters and shared arrays into the register file.
        # Scalar parameters broadcast to read-only per-lane arrays; the
        # launch builds (and caches) them once per (params, warp size)
        # instead of once per warp (`scalar_arrays`); direct constructions
        # without one fall back to the same shared rule.
        if scalar_arrays is None:
            scalar_arrays = broadcast_scalar_arrays(scalar_bindings,
                                                    self.warp_size)
        for param in function.params:
            if param.kind == "buffer":
                self.warp.registers[param.name] = global_bindings[param.name]
            else:
                self.warp.registers[param.name] = scalar_arrays[param.name]
        for name, handle in shared.handles().items():
            self.warp.registers[name] = handle
        self._identity_values = warp.identity.register_values()

    # ------------------------------------------------------------------ operands
    def _trap(self, message: str, instruction: Optional[Instruction] = None) -> None:
        raise KernelTrap(message, warp=self.warp.warp_index, instruction=instruction)

    def _resolve(self, operand, instruction: Instruction):
        """Resolve an operand to a per-lane array or a buffer handle."""
        if isinstance(operand, Const):
            value = operand.value
            if isinstance(value, bool):
                return np.full(self.warp_size, value, dtype=bool)
            dtype = _INT if isinstance(value, int) else _FLOAT
            return np.full(self.warp_size, value, dtype=dtype)
        if isinstance(operand, Reg):
            try:
                return self.warp.registers[operand.name]
            except KeyError:
                self._trap(f"read of undefined register %{operand.name}", instruction)
        self._trap(f"unsupported operand {operand!r}", instruction)

    def _numeric(self, operand, instruction: Instruction) -> np.ndarray:
        value = self._resolve(operand, instruction)
        if isinstance(value, BufferHandle):
            self._trap(
                f"operand %{getattr(operand, 'name', operand)} is a buffer handle "
                f"where a numeric value is required", instruction)
        return value

    def _buffer(self, operand, instruction: Instruction) -> BufferHandle:
        value = self._resolve(operand, instruction)
        if not isinstance(value, BufferHandle):
            self._trap("memory access base operand is not a buffer", instruction)
        return value

    # ------------------------------------------------------------------ execution
    def run(self) -> WarpStatus:
        """Execute until the warp finishes, traps, or reaches a barrier."""
        if self._decoded is not None:
            return self._run_decoded()
        return self._run_reference()

    def _run_reference(self) -> WarpStatus:
        """The tree-walking reference interpreter (the equivalence oracle)."""
        warp = self.warp
        if warp.status is WarpStatus.DONE:
            return warp.status
        warp.status = WarpStatus.RUNNING
        blocks = self.function.blocks
        while True:
            warp.pop_reconverged()
            if warp.status is WarpStatus.DONE or not warp.stack:
                warp.status = WarpStatus.DONE
                return warp.status
            top = warp.stack[-1]
            label, index = top.pc
            block = blocks.get(label)
            if block is None:
                self._trap(f"branch to unknown block {label!r}")
            if index >= len(block.instructions):
                self._trap(f"execution fell off the end of block {label!r}")
            instruction = block.instructions[index]
            warp.instructions_executed += 1
            if warp.instructions_executed > self.max_instructions:
                self._trap(
                    f"dynamic instruction budget exceeded "
                    f"({self.max_instructions}); probable runaway loop", instruction)
            at_barrier = self._execute(instruction, top)
            if at_barrier:
                warp.status = WarpStatus.AT_BARRIER
                return warp.status
            if warp.status is WarpStatus.DONE:
                return warp.status

    def _run_decoded(self) -> WarpStatus:
        """Dispatch-table execution of the decoded program.

        Mirrors :meth:`_run_reference` effect for effect -- same dynamic
        instruction sequence, cycle arithmetic, counter bumps, profiler
        records and trap messages -- but pays the block lookup and
        reconvergence check once per control transfer instead of once per
        instruction, and runs straight-line segments in one tight loop
        over pre-bound handlers.
        """
        warp = self.warp
        if warp.status is WarpStatus.DONE:
            return warp.status
        warp.status = WarpStatus.RUNNING
        decoded_blocks = self._decoded.blocks
        cost_model = self.cost_model
        counters = cost_model.counters
        profiler = self.profiler
        profile_enabled = profiler.enabled
        record = profiler.record
        max_instructions = self.max_instructions
        stack = warp.stack
        jit = self._jit
        price = cost_model.price_access
        profiles = profiler.instructions if profile_enabled else None
        while True:
            # Inlined warp.pop_reconverged() (hot: once per control
            # transfer); keep in sync with the method.
            while stack:
                top = stack[-1]
                reconvergence = top.reconvergence
                if reconvergence is not None:
                    pc = top.pc
                    if pc[1] == 0 and pc[0] == reconvergence:
                        stack.pop()
                        continue
                break
            if warp.status is WarpStatus.DONE or not stack:
                warp.status = WarpStatus.DONE
                return warp.status
            top = stack[-1]
            label, index = top.pc
            dblock = decoded_blocks.get(label)
            if dblock is None:
                self._trap(f"branch to unknown block {label!r}")
            length = dblock.length
            steps = dblock.steps
            step_of_index = dblock.step_of_index
            transferred = False
            while not transferred:
                if index >= length:
                    self._trap(f"execution fell off the end of block {label!r}")
                step = steps[step_of_index[index]]
                kind = step.kind
                if kind == STEP_SEGMENT:
                    body = step.body
                    mask = top.mask
                    if jit:
                        jit_fns = step.jit_fns
                        if (jit_fns is not None and index == step.start
                                and warp.instructions_executed + jit_fns[2]
                                <= max_instructions):
                            # JIT tier, common case: one call executes the
                            # whole segment (charging its aggregated
                            # statics and pricing its memory accesses
                            # itself) and, in the combined form, the
                            # block terminator too.  Masks are immutable
                            # and rebound on every change, so fullness is
                            # cached on the stack entry by object identity.
                            if mask is not top.mask_obj:
                                top.mask_obj = mask
                                top.mask_full = bool(mask.all())
                            (jit_fns[0] if top.mask_full else jit_fns[1])(
                                self, warp, top, mask, counters, profiles)
                            if jit_fns[3]:
                                transferred = True
                                continue
                            index = step.start + jit_fns[2]
                            top.pc = (label, index)
                            continue
                    full = bool(mask.all())
                    if (index == step.start and step.exact
                            and warp.instructions_executed + len(body) <= max_instructions):
                        # Whole-segment batch: charge the pre-aggregated
                        # static cycles/counters in one step (exact integer
                        # arithmetic, so order does not change the sums) and
                        # run the pre-bound handlers back to back.
                        warp.instructions_executed += len(body)
                        warp.cycles += step.static_cycles
                        for key, total in step.counter_totals:
                            counters[key] = counters.get(key, 0.0) + total
                        if profile_enabled:
                            profiles = profiler.instructions
                            for d in body:
                                memory = d.execute(self, mask, full)
                                cost = d.static_cost
                                if cost is None:
                                    active = (self.warp_size if full
                                              else int(np.count_nonzero(mask)))
                                    cost = (price(memory, active, d.is_store,
                                                  d.is_atomic)
                                            if memory is not None else
                                            cost_model._memory_cost(
                                                d.instruction, active, None))
                                    warp.cycles += cost
                                profile = profiles.get(d.uid)
                                if profile is None:
                                    instruction = d.instruction
                                    location = (str(instruction.loc)
                                                if instruction.loc is not None else None)
                                    profile = InstructionProfile(
                                        d.uid, instruction.opcode, location)
                                    profiles[d.uid] = profile
                                profile.executions += 1
                                profile.cycles += cost
                        else:
                            for d in body:
                                memory = d.execute(self, mask, full)
                                if d.static_cost is None:
                                    active = (self.warp_size if full
                                              else int(np.count_nonzero(mask)))
                                    warp.cycles += (
                                        price(memory, active, d.is_store,
                                              d.is_atomic)
                                        if memory is not None else
                                        cost_model._memory_cost(
                                            d.instruction, active, None))
                    else:
                        # Mid-block entry (barrier resume), a segment that
                        # straddles the instruction budget, or non-integer
                        # baked costs: charge instruction by instruction.
                        if index != step.start:
                            body = body[index - step.start:]
                        for d in body:
                            warp.instructions_executed += 1
                            if warp.instructions_executed > max_instructions:
                                self._trap(
                                    f"dynamic instruction budget exceeded "
                                    f"({max_instructions}); probable runaway loop",
                                    d.instruction)
                            memory = d.execute(self, mask, full)
                            cost = d.static_cost
                            if cost is None:
                                active = (self.warp_size if full
                                          else int(np.count_nonzero(mask)))
                                cost = (price(memory, active, d.is_store,
                                              d.is_atomic)
                                        if memory is not None else
                                        cost_model._memory_cost(
                                            d.instruction, active, None))
                            else:
                                key = d.counter_key
                                if key is not None:
                                    counters[key] = counters.get(key, 0.0) + cost
                            warp.cycles += cost
                            if profile_enabled:
                                record(d.instruction, cost)
                    index = step.start + len(step.body)
                    top.pc = (label, index)
                    continue
                # A control or barrier step: one instruction on its own.
                if jit:
                    jit_fns = step.jit_fns
                    if (jit_fns is not None
                            and warp.instructions_executed < max_instructions):
                        # JIT tier: a single-control block (or a mid-block
                        # resume landing on the terminator) executes through
                        # the same exec-compiled scheme as segments; the
                        # closure charges the instruction and performs the
                        # transfer.  Budget guard mirrors the plain path's
                        # increment-then-trap for one instruction.
                        mask = top.mask
                        if mask is not top.mask_obj:
                            top.mask_obj = mask
                            top.mask_full = bool(mask.all())
                        (jit_fns[0] if top.mask_full else jit_fns[1])(
                            self, warp, top, mask, counters, profiles)
                        transferred = True
                        continue
                warp.instructions_executed += 1
                if warp.instructions_executed > max_instructions:
                    self._trap(
                        f"dynamic instruction budget exceeded "
                        f"({max_instructions}); probable runaway loop",
                        step.instruction)
                mask = top.mask
                cost = step.static_cost
                key = step.counter_key
                if key is not None:
                    counters[key] = counters.get(key, 0.0) + cost
                warp.cycles += cost
                if profile_enabled:
                    # Once per control transfer: the plain collector call
                    # is fine here (only the segment loop inlines it).
                    record(step.instruction, cost)
                if kind == STEP_BR:
                    top.pc = (step.target, 0)
                    transferred = True
                elif kind == STEP_CONDBR:
                    cond = step.condition(self).astype(bool)
                    if mask.all():
                        # mask is all-true, so taken == cond and
                        # not_taken == ~cond.
                        if cond.all():
                            top.pc = (step.true_target, 0)
                            transferred = True
                            continue
                        if not cond.any():
                            top.pc = (step.false_target, 0)
                            transferred = True
                            continue
                        taken = cond
                        not_taken = ~cond
                    else:
                        taken = mask & cond
                        not_taken = mask & ~cond
                    if not not_taken.any():
                        top.pc = (step.true_target, 0)
                    elif not taken.any():
                        top.pc = (step.false_target, 0)
                    else:
                        reconvergence = step.reconvergence
                        if reconvergence is None:
                            # No common post-dominator: run each side to
                            # completion under its own mask.
                            top.pc = (step.false_target, 0)
                            top.mask = not_taken
                            stack.append(StackEntry(pc=(step.true_target, 0),
                                                    mask=taken, reconvergence=None))
                        else:
                            top.pc = (reconvergence, 0)
                            stack.append(StackEntry(pc=(step.false_target, 0),
                                                    mask=not_taken,
                                                    reconvergence=reconvergence))
                            stack.append(StackEntry(pc=(step.true_target, 0),
                                                    mask=taken,
                                                    reconvergence=reconvergence))
                    transferred = True
                elif kind == STEP_RET:
                    warp.retire_lanes(mask.copy())
                    transferred = True
                else:  # STEP_BARRIER
                    top.pc = (label, index + 1)
                    warp.status = WarpStatus.AT_BARRIER
                    return warp.status

    # -- single instruction -------------------------------------------------------
    def _charge(self, instruction: Instruction, mask: np.ndarray,
                memory: Optional[MemoryAccessInfo] = None) -> None:
        active = int(np.count_nonzero(mask))
        cost = self.cost_model.instruction_cost(instruction, active, memory)
        self.warp.cycles += cost
        self.profiler.record(instruction, cost)

    def _advance(self, entry: StackEntry) -> None:
        label, index = entry.pc
        entry.pc = (label, index + 1)

    def _execute(self, instruction: Instruction, entry: StackEntry) -> bool:
        """Execute one instruction; returns True if the warp hit a barrier."""
        opcode = instruction.opcode
        mask = entry.mask
        warp = self.warp

        # --- control flow ----------------------------------------------------
        if opcode == "br":
            self._charge(instruction, mask)
            entry.pc = (instruction.attrs["target"], 0)
            return False
        if opcode == "condbr":
            self._charge(instruction, mask)
            self._branch(instruction, entry)
            return False
        if opcode == "ret":
            self._charge(instruction, mask)
            warp.retire_lanes(mask.copy())
            return False

        # --- barrier ----------------------------------------------------------
        if opcode == "syncthreads":
            self._charge(instruction, mask)
            self._advance(entry)
            return True

        # --- everything else -------------------------------------------------
        memory_info = self._execute_straightline(instruction, mask)
        self._charge(instruction, mask, memory_info)
        self._advance(entry)
        return False

    def _branch(self, instruction: Instruction, entry: StackEntry) -> None:
        cond = self._numeric(instruction.operands[0], instruction)
        cond = cond.astype(bool)
        mask = entry.mask
        taken = mask & cond
        not_taken = mask & ~cond
        true_target = instruction.attrs["true_target"]
        false_target = instruction.attrs["false_target"]
        if not np.any(not_taken):
            entry.pc = (true_target, 0)
            return
        if not np.any(taken):
            entry.pc = (false_target, 0)
            return
        # Divergence: wait at the immediate post-dominator of the branching block.
        branching_block = entry.pc[0]
        reconvergence = self.postdominators.get(branching_block)
        if reconvergence is None:
            # No common post-dominator (e.g. one side returns): fall back to
            # executing each side to completion under its own mask.
            entry.pc = (false_target, 0)
            entry.mask = not_taken
            self.warp.stack.append(StackEntry(pc=(true_target, 0), mask=taken,
                                              reconvergence=None))
            return
        entry.pc = (reconvergence, 0)
        self.warp.stack.append(
            StackEntry(pc=(false_target, 0), mask=not_taken, reconvergence=reconvergence))
        self.warp.stack.append(
            StackEntry(pc=(true_target, 0), mask=taken, reconvergence=reconvergence))

    # -- straight-line opcodes -----------------------------------------------------
    def _execute_straightline(
        self, instruction: Instruction, mask: np.ndarray
    ) -> Optional[MemoryAccessInfo]:
        opcode = instruction.opcode
        handler = _ARITHMETIC.get(opcode)
        if handler is not None:
            operands = [self._numeric(op, instruction) for op in instruction.operands]
            result = handler(self, instruction, operands)
            self.warp.write_register(instruction.dest, result, mask)
            return None
        if opcode in self._identity_values:
            self.warp.write_register(instruction.dest,
                                     self._identity_values[opcode].copy(), mask)
            return None
        if opcode in ("load",):
            return self._load(instruction, mask)
        if opcode in ("store", "memset"):
            return self._store(instruction, mask)
        if opcode.startswith("atomic."):
            return self._atomic(instruction, mask)
        if opcode == "activemask":
            bits = int(np.packbits(mask[::-1]).view(">u4")[0]) if self.warp_size == 32 else 0
            self.warp.write_register(instruction.dest,
                                     np.full(self.warp_size, bits, dtype=_INT), mask)
            return None
        if opcode == "ballot.sync":
            predicate = self._numeric(instruction.operands[1], instruction).astype(bool)
            voters = mask & predicate
            bits = int(np.packbits(voters[::-1]).view(">u4")[0]) if self.warp_size == 32 else 0
            self.warp.write_register(instruction.dest,
                                     np.full(self.warp_size, bits, dtype=_INT), mask)
            return None
        if opcode == "shfl.sync":
            value = self._numeric(instruction.operands[1], instruction)
            source = self._numeric(instruction.operands[2], instruction).astype(_INT)
            lanes = np.clip(source, 0, self.warp_size - 1)
            self.warp.write_register(instruction.dest, value[lanes], mask)
            return None
        if opcode == "shfl.up.sync":
            value = self._numeric(instruction.operands[1], instruction)
            delta = self._numeric(instruction.operands[2], instruction).astype(_INT)
            lanes = np.arange(self.warp_size) - delta
            lanes = np.where(lanes < 0, np.arange(self.warp_size), lanes)
            self.warp.write_register(instruction.dest, value[lanes], mask)
            return None
        if opcode == "shfl.down.sync":
            value = self._numeric(instruction.operands[1], instruction)
            delta = self._numeric(instruction.operands[2], instruction).astype(_INT)
            lanes = np.arange(self.warp_size) + delta
            lanes = np.where(lanes >= self.warp_size, np.arange(self.warp_size), lanes)
            self.warp.write_register(instruction.dest, value[lanes], mask)
            return None
        if opcode == "syncwarp":
            self._numeric(instruction.operands[0], instruction)
            return None
        if opcode == "rand.uniform":
            seed = self._numeric(instruction.operands[0], instruction).astype(_INT)
            step = self._numeric(instruction.operands[1], instruction).astype(_INT)
            salt = self._numeric(instruction.operands[2], instruction).astype(_INT)
            self.warp.write_register(instruction.dest, counter_uniform(seed, step, salt), mask)
            return None
        if opcode == "nop":
            return None
        self._trap(f"opcode {opcode!r} is not implemented by the interpreter", instruction)
        return None

    # -- memory ---------------------------------------------------------------------
    def _load(self, instruction: Instruction, mask: np.ndarray) -> MemoryAccessInfo:
        handle = self._buffer(instruction.operands[0], instruction)
        index = self._numeric(instruction.operands[1], instruction)
        active_idx = handle.check_bounds(index[mask], instruction)
        result_dtype = handle.array.dtype
        result = np.zeros(self.warp_size, dtype=result_dtype)
        result[mask] = handle.array[active_idx]
        self.warp.write_register(instruction.dest, result, mask)
        return MemoryAccessInfo(handle=handle, indices=active_idx)

    def _store(self, instruction: Instruction, mask: np.ndarray) -> MemoryAccessInfo:
        handle = self._buffer(instruction.operands[0], instruction)
        index = self._numeric(instruction.operands[1], instruction)
        value = self._numeric(instruction.operands[2], instruction)
        active_idx = handle.check_bounds(index[mask], instruction)
        handle.array[active_idx] = value[mask].astype(handle.array.dtype)
        return MemoryAccessInfo(handle=handle, indices=active_idx)

    def _atomic(self, instruction: Instruction, mask: np.ndarray) -> MemoryAccessInfo:
        handle = self._buffer(instruction.operands[0], instruction)
        index = self._numeric(instruction.operands[1], instruction)
        active_idx = handle.check_bounds(index[mask], instruction)
        lanes = np.nonzero(mask)[0]
        old_values = np.zeros(self.warp_size, dtype=handle.array.dtype)
        opcode = instruction.opcode
        if opcode == "atomic.cas":
            compare = self._numeric(instruction.operands[2], instruction)
            value = self._numeric(instruction.operands[3], instruction)
        else:
            compare = None
            value = self._numeric(instruction.operands[2], instruction)
        array = handle.array
        for position, lane in enumerate(lanes):
            address = int(active_idx[position])
            old = array[address]
            old_values[lane] = old
            new = value[lane]
            if opcode == "atomic.add":
                array[address] = old + new
            elif opcode == "atomic.max":
                array[address] = max(old, new)
            elif opcode == "atomic.exch":
                array[address] = new
            elif opcode == "atomic.cas":
                if old == compare[lane]:
                    array[address] = new
            else:  # pragma: no cover - registry guarantees opcode set
                self._trap(f"unknown atomic opcode {opcode}", instruction)
        if instruction.dest is not None:
            self.warp.write_register(instruction.dest, old_values, mask)
        return MemoryAccessInfo(handle=handle, indices=active_idx)


# --------------------------------------------------------------------------- arithmetic table
def _int_like(array: np.ndarray) -> np.ndarray:
    if array.dtype == bool:
        return array.astype(_INT)
    if array.dtype.kind == "f":
        return array.astype(_INT)
    return array


def _binary(op):
    def handler(executor, instruction, operands):
        return op(operands[0], operands[1])
    return handler


def _division(mode):
    def handler(executor: WarpExecutor, instruction: Instruction, operands):
        numerator, denominator = operands
        mask = executor.warp.active_mask
        denom_active = np.asarray(denominator)[mask]
        if denom_active.size and np.any(denom_active == 0):
            executor._trap("division by zero", instruction)
        safe = np.where(np.asarray(denominator) == 0, 1, denominator)
        if mode == "div":
            if numerator.dtype.kind == "f" or np.asarray(denominator).dtype.kind == "f":
                return numerator / safe
            return np.floor_divide(numerator, safe)
        return np.remainder(_int_like(numerator), _int_like(safe))
    return handler


def _bitwise(op, logical):
    def handler(executor, instruction, operands):
        a, b = operands
        if a.dtype == bool and b.dtype == bool:
            return logical(a, b)
        return op(_int_like(a), _int_like(b))
    return handler


_ARITHMETIC = {
    "add": _binary(np.add),
    "sub": _binary(np.subtract),
    "mul": _binary(np.multiply),
    "div": _division("div"),
    "rem": _division("rem"),
    "min": _binary(np.minimum),
    "max": _binary(np.maximum),
    "and": _bitwise(np.bitwise_and, np.logical_and),
    "or": _bitwise(np.bitwise_or, np.logical_or),
    "xor": _bitwise(np.bitwise_xor, np.logical_xor),
    "shl": lambda ex, inst, ops: np.left_shift(_int_like(ops[0]), _int_like(ops[1])),
    "shr": lambda ex, inst, ops: np.right_shift(_int_like(ops[0]), _int_like(ops[1])),
    "neg": lambda ex, inst, ops: -ops[0],
    "not": lambda ex, inst, ops: (np.logical_not(ops[0]) if ops[0].dtype == bool
                                  else np.bitwise_not(_int_like(ops[0]))),
    "abs": lambda ex, inst, ops: np.abs(ops[0]),
    "mov": lambda ex, inst, ops: ops[0].copy(),
    "ftoi": lambda ex, inst, ops: ops[0].astype(_INT),
    "itof": lambda ex, inst, ops: ops[0].astype(_FLOAT),
    "select": lambda ex, inst, ops: np.where(ops[0].astype(bool), ops[1], ops[2]),
    "fma": lambda ex, inst, ops: ops[0] * ops[1] + ops[2],
    "cmp.eq": _binary(np.equal),
    "cmp.ne": _binary(np.not_equal),
    "cmp.lt": _binary(np.less),
    "cmp.le": _binary(np.less_equal),
    "cmp.gt": _binary(np.greater),
    "cmp.ge": _binary(np.greater_equal),
}
