"""Kernel launch and block/warp scheduling for the simulated GPU.

:class:`GpuDevice` is the host-facing entry point: it binds host numpy
arrays as global buffers, runs every thread block of the launch through
the SIMT interpreter, applies the block-level scheduling model (warps of a
block round-robin between ``__syncthreads`` barriers; blocks fill the
device in waves limited by the architecture's concurrent-block capacity),
and converts the resulting cycle counts into milliseconds.

This module is the stand-in for the paper's physical P100 / 1080Ti / V100
machines; see DESIGN.md section 2 for the substitution rationale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import KernelTrap, LaunchError
from ..ir.analysis import immediate_postdominators
from ..ir.function import Function, Module
from .arch import GpuArch, P100, normalize_interpreter_tier
from .batched import BatchAbort, batchable_function, execute_batched
from .decoded import decode_function
from .interpreter import WarpExecutor
from .jitted import jit_function, structural_function_key
from .memory import GlobalMemory, SharedMemoryBlock
from .profiler import InstructionProfile, ProfileCollector
from .timing import CostModel, cycles_to_milliseconds
from .warp import WarpState, WarpStatus, broadcast_scalar_arrays, build_thread_identity

#: Fixed host-side overhead charged per kernel launch, in cycles.
LAUNCH_OVERHEAD_CYCLES = 400.0

#: Bound on the per-device cache of shared scalar-parameter broadcast
#: arrays (one entry per distinct scalar-argument tuple seen).
_SCALAR_CACHE_LIMIT = 128

Dim = Union[int, Tuple[int, int]]


def _as_dim(value: Dim) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, 1)
    x, y = value
    return (int(x), int(y))


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    kernel: str
    arch: GpuArch
    grid: Tuple[int, int]
    block: Tuple[int, int]
    cycles: float
    time_ms: float
    blocks_executed: int
    warps_executed: int
    instructions_executed: int
    profile: ProfileCollector
    counters: Dict[str, float] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (f"<LaunchResult {self.kernel} on {self.arch.name}: "
                f"{self.time_ms:.3f} ms ({self.cycles:.0f} cycles)>")


@dataclass
class BlockResult:
    """Execution summary of one thread block."""

    block_coords: Tuple[int, int]
    cycles: float
    warps: int
    instructions: int


class GpuDevice:
    """A simulated GPU able to launch mini-IR kernels."""

    def __init__(
        self,
        arch: GpuArch = P100,
        *,
        zero_init_shared: bool = False,
        max_instructions_per_warp: int = 1_000_000,
        profile: bool = True,
        unified_memory_arena: bool = False,
        arena_guard_elements: int = 24,
        fast_path: Union[bool, str, None] = None,
    ):
        self.arch = arch
        self.zero_init_shared = zero_init_shared
        self.max_instructions_per_warp = max_instructions_per_warp
        self.profile_enabled = profile
        #: Which of the three bit-for-bit-equivalent interpreter tiers this
        #: device executes through: the tree-walking ``"oracle"``, the
        #: decode-once ``"dispatch"`` tables, or the segment-``"jit"``
        #: (the default).  ``fast_path`` accepts a tier name or the
        #: historical booleans (``True`` -> jit, ``False`` -> oracle) and
        #: defaults to the architecture's ``fast_path`` selector.
        selector = arch.fast_path if fast_path is None else fast_path
        try:
            self.interpreter_tier = normalize_interpreter_tier(selector)
        except ValueError as error:
            raise LaunchError(str(error)) from None
        #: Backwards-compatible view of the tier: ``False`` only for the
        #: reference oracle.
        self.fast_path = self.interpreter_tier != "oracle"
        #: Shared read-only scalar-parameter broadcast arrays, built once
        #: per distinct scalar-argument tuple instead of once per warp per
        #: launch (drivers re-launch the same kernel with the same scalars
        #: once per test case / simulation step).
        self._scalar_array_cache: Dict[tuple, Dict[str, np.ndarray]] = {}
        #: Shared per-warp thread identities, keyed by launch geometry --
        #: identities are immutable, so repeated launches of the same grid
        #: skip rebuilding ~10 numpy arrays per warp per launch.
        self._identity_cache: Dict[tuple, "ThreadIdentity"] = {}
        #: When set, all global buffers of a launch live in one float64
        #: arena (CUDA-like single address space); slightly out-of-bounds
        #: accesses read neighbouring allocations instead of trapping.
        self.unified_memory_arena = unified_memory_arena
        self.arena_guard_elements = arena_guard_elements

    # -- public API ---------------------------------------------------------------
    def launch(
        self,
        kernel: Union[Function, Module],
        grid: Dim,
        block: Dim,
        args: Dict[str, object],
        *,
        kernel_name: Optional[str] = None,
        max_instructions_per_warp: Optional[int] = None,
    ) -> LaunchResult:
        """Launch *kernel* over ``grid`` x ``block`` threads.

        ``args`` maps parameter names to numpy arrays (buffer parameters,
        modified in place) or Python numbers (scalar parameters).  Traps
        inside the kernel propagate as :class:`KernelTrap`.
        """
        function = self._select_kernel(kernel, kernel_name)
        grid_dim = _as_dim(grid)
        block_dim = _as_dim(block)
        self._validate_launch(function, grid_dim, block_dim, args)

        global_memory = GlobalMemory(unified_arena=self.unified_memory_arena,
                                     guard_elements=self.arena_guard_elements)
        scalar_bindings: Dict[str, float] = {}
        for param in function.params:
            if param.kind == "buffer":
                global_memory.bind(param.name, args[param.name])
            else:
                scalar_bindings[param.name] = float(args[param.name])
        global_memory.finalize_arena()
        global_bindings = {name: global_memory.get(name)
                           for name in function.param_names()
                           if name in set(global_memory.names())}

        tier = self.interpreter_tier
        if tier == "oracle":
            decoded = None
            postdominators = immediate_postdominators(function)
        elif tier == "jit":
            decoded = jit_function(function, self.arch)
            postdominators = decoded.postdominators
        else:
            decoded = decode_function(function, self.arch)
            postdominators = decoded.postdominators
        scalar_arrays = self._shared_scalar_arrays(scalar_bindings)
        profiler = ProfileCollector(enabled=self.profile_enabled)
        #: Most recent launch's profile; read back by the runtime's
        #: observability helpers (hotspot emission) without threading the
        #: collector through every fitness result.
        self.last_profile = profiler
        cost_model = CostModel(self.arch)
        budget = max_instructions_per_warp or self.max_instructions_per_warp

        block_results: List[BlockResult] = []
        total_instructions = 0
        total_warps = 0
        for by in range(grid_dim[1]):
            for bx in range(grid_dim[0]):
                result = self._run_block(
                    function, (bx, by), block_dim, grid_dim,
                    global_bindings, scalar_bindings,
                    postdominators, cost_model, profiler, budget, decoded,
                    jit=(tier == "jit"), scalar_arrays=scalar_arrays,
                )
                block_results.append(result)
                total_instructions += result.instructions
                total_warps += result.warps

        global_memory.sync_back()
        kernel_cycles = self._schedule_blocks(block_results)
        cycles = kernel_cycles + LAUNCH_OVERHEAD_CYCLES
        return LaunchResult(
            kernel=function.name,
            arch=self.arch,
            grid=grid_dim,
            block=block_dim,
            cycles=cycles,
            time_ms=cycles_to_milliseconds(cycles, self.arch),
            blocks_executed=len(block_results),
            warps_executed=total_warps,
            instructions_executed=total_instructions,
            profile=profiler,
            counters=dict(cost_model.counters),
        )

    def launch_batched(
        self,
        rows: Sequence[Tuple[Union[Function, Module], Dict[str, object]]],
        grid: Dim,
        block: Dim,
        *,
        kernel_name: Optional[str] = None,
        max_instructions_per_warp: Optional[int] = None,
    ) -> List[Union[LaunchResult, Exception]]:
        """Launch N structurally identical rows in one stacked pass.

        Each row is a ``(kernel, args)`` pair with the shared ``grid`` x
        ``block`` geometry: the SimCov fitness grid passes one module
        with per-row scalar parameters, the engine's clone batching
        passes per-row mutated modules that share a structural key.  The
        return value is one entry per row, in order: a
        :class:`LaunchResult`, or the :class:`KernelTrap` /
        :class:`LaunchError` that row's solo launch raised.

        Bit-for-bit equivalence with per-row :meth:`launch` calls is the
        contract (cycles, counters, profiles, RNG streams, buffers,
        traps).  Whenever the batched model cannot honour it -- a
        non-batchable kernel, mismatched structural keys, any would-trap
        condition, cross-row buffer aliasing -- the affected launch
        falls back to per-row solo execution before any host array is
        touched, so the fallback is trivially equivalent.
        """
        rows = list(rows)
        if len(rows) < 2 or self.interpreter_tier == "oracle":
            return self._solo_rows(rows, grid, block, kernel_name,
                                   max_instructions_per_warp)
        grid_dim = _as_dim(grid)
        block_dim = _as_dim(block)
        try:
            functions = [self._select_kernel(kernel, kernel_name)
                         for kernel, _ in rows]
            for function, (_, args) in zip(functions, rows):
                self._validate_launch(function, grid_dim, block_dim, args)
        except LaunchError:
            return self._solo_rows(rows, grid, block, kernel_name,
                                   max_instructions_per_warp)
        template = functions[0]
        if not batchable_function(template, self.arch):
            return self._solo_rows(rows, grid, block, kernel_name,
                                   max_instructions_per_warp)
        if any(function is not template for function in functions):
            key = structural_function_key(template, self.arch)
            for function in functions[1:]:
                if (function is not template
                        and structural_function_key(function, self.arch) != key):
                    return self._solo_rows(rows, grid, block, kernel_name,
                                           max_instructions_per_warp)

        warp_size = self.arch.warp_size
        budget = max_instructions_per_warp or self.max_instructions_per_warp

        def identity_of(warp_index, block_coords):
            return self._thread_identity(warp_index, block_coords, block_dim,
                                         grid_dim, warp_size)

        try:
            outcome = execute_batched(
                functions, [args for _, args in rows], grid_dim, block_dim,
                self.arch,
                unified_arena=self.unified_memory_arena,
                guard_elements=self.arena_guard_elements,
                budget=budget,
                profile_enabled=self.profile_enabled,
                identity_of=identity_of,
            )
        except BatchAbort:
            return self._solo_rows(rows, grid, block, kernel_name,
                                   max_instructions_per_warp)

        counters = outcome["counters"]
        touched = outcome["counter_touched"]
        profiles = outcome["profiles"]
        blocks_executed = outcome["blocks_executed"]
        warps_executed = blocks_executed * outcome["warps_per_block"]
        results: List[Union[LaunchResult, Exception]] = []
        for row, function in enumerate(functions):
            collector = ProfileCollector(enabled=self.profile_enabled)
            for uid, (executions, cycles, opcode, location) in profiles.items():
                if executions[row]:
                    collector.instructions[uid] = InstructionProfile(
                        uid, opcode, location,
                        int(executions[row]), float(cycles[row]))
            row_counters = {key: float(values[row])
                            for key, values in counters.items()
                            if touched[key][row]}
            cycles = float(outcome["cycles"][row]) + LAUNCH_OVERHEAD_CYCLES
            results.append(LaunchResult(
                kernel=function.name,
                arch=self.arch,
                grid=grid_dim,
                block=block_dim,
                cycles=cycles,
                time_ms=cycles_to_milliseconds(cycles, self.arch),
                blocks_executed=blocks_executed,
                warps_executed=warps_executed,
                instructions_executed=int(outcome["instructions"][row]),
                profile=collector,
                counters=row_counters,
            ))
            # Sequential solo launches leave the last row's profile on the
            # device; mirror that.
            self.last_profile = collector
        return results

    def _solo_rows(self, rows, grid, block, kernel_name,
                   max_instructions_per_warp):
        """Per-row fallback: solo launches with per-row trap capture."""
        outcomes: List[Union[LaunchResult, Exception]] = []
        for kernel, args in rows:
            try:
                outcomes.append(self.launch(
                    kernel, grid, block, args, kernel_name=kernel_name,
                    max_instructions_per_warp=max_instructions_per_warp))
            except (KernelTrap, LaunchError) as error:
                outcomes.append(error)
        return outcomes

    # -- internals ------------------------------------------------------------------
    def _shared_scalar_arrays(self, scalar_bindings: Dict[str, float]) -> Dict[str, np.ndarray]:
        """Read-only per-lane broadcast arrays for the scalar parameters.

        Built once per distinct scalar-argument tuple and shared by every
        warp of every launch (the arrays are never mutated in place --
        register writes rebind), with the exact dtype rule the per-warp
        construction used.
        """
        if not scalar_bindings:
            return {}
        key = tuple(sorted(scalar_bindings.items()))
        arrays = self._scalar_array_cache.get(key)
        if arrays is None:
            if len(self._scalar_array_cache) >= _SCALAR_CACHE_LIMIT:
                self._scalar_array_cache.clear()
            arrays = broadcast_scalar_arrays(scalar_bindings,
                                             self.arch.warp_size)
            self._scalar_array_cache[key] = arrays
        return arrays

    def _thread_identity(self, warp_index, block_coords, block_dim, grid_dim,
                         warp_size):
        """Memoised :func:`build_thread_identity` (identities are immutable)."""
        key = (warp_index, block_coords, block_dim, grid_dim, warp_size)
        identity = self._identity_cache.get(key)
        if identity is None:
            if len(self._identity_cache) >= _SCALAR_CACHE_LIMIT * 32:
                self._identity_cache.clear()
            identity = build_thread_identity(warp_index, block_coords,
                                             block_dim, grid_dim, warp_size)
            self._identity_cache[key] = identity
        return identity

    @staticmethod
    def _select_kernel(kernel: Union[Function, Module], kernel_name: Optional[str]) -> Function:
        if isinstance(kernel, Function):
            return kernel
        if isinstance(kernel, Module):
            if kernel_name is None:
                names = kernel.function_order()
                if len(names) != 1:
                    raise LaunchError(
                        "module has multiple kernels; pass kernel_name to select one"
                    )
                kernel_name = names[0]
            return kernel.get_function(kernel_name)
        raise LaunchError(f"cannot launch object of type {type(kernel)!r}")

    def _validate_launch(self, function: Function, grid: Tuple[int, int],
                         block: Tuple[int, int], args: Dict[str, object]) -> None:
        if grid[0] <= 0 or grid[1] <= 0 or block[0] <= 0 or block[1] <= 0:
            raise LaunchError(f"grid {grid} and block {block} dimensions must be positive")
        threads = block[0] * block[1]
        if threads > self.arch.max_threads_per_block:
            raise LaunchError(
                f"block of {threads} threads exceeds the architecture limit "
                f"of {self.arch.max_threads_per_block}"
            )
        missing = [p.name for p in function.params if p.name not in args]
        if missing:
            raise LaunchError(f"missing kernel arguments: {missing}")
        for param in function.params:
            if param.kind == "buffer" and not isinstance(args[param.name], np.ndarray):
                raise LaunchError(f"argument {param.name!r} must be a numpy array")

    def _run_block(
        self,
        function: Function,
        block_coords: Tuple[int, int],
        block_dim: Tuple[int, int],
        grid_dim: Tuple[int, int],
        global_bindings,
        scalar_bindings,
        postdominators,
        cost_model: CostModel,
        profiler: ProfileCollector,
        budget: int,
        decoded=None,
        jit: bool = False,
        scalar_arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> BlockResult:
        warp_size = self.arch.warp_size
        threads = block_dim[0] * block_dim[1]
        num_warps = max(1, math.ceil(threads / warp_size))
        shared = SharedMemoryBlock(function, zero_fill=self.zero_init_shared)
        if shared.bytes_allocated > self.arch.shared_memory_per_block:
            raise LaunchError(
                f"kernel {function.name!r} requests {shared.bytes_allocated} bytes of shared "
                f"memory, above the {self.arch.shared_memory_per_block}-byte limit"
            )

        executors: List[WarpExecutor] = []
        for warp_index in range(num_warps):
            identity = self._thread_identity(warp_index, block_coords, block_dim,
                                             grid_dim, warp_size)
            warp = WarpState(warp_index=warp_index, identity=identity,
                             entry_label=function.entry_label, warp_size=warp_size)
            executors.append(WarpExecutor(
                function, warp, shared, global_bindings, scalar_bindings,
                postdominators, cost_model, profiler, max_instructions=budget,
                decoded=decoded, jit=jit, scalar_arrays=scalar_arrays,
            ))

        self._run_warps_to_completion(executors)
        warps = [executor.warp for executor in executors]
        block_cycles = max((w.cycles for w in warps), default=0.0)
        instructions = sum(w.instructions_executed for w in warps)
        return BlockResult(block_coords=block_coords, cycles=block_cycles,
                           warps=num_warps, instructions=instructions)

    def _run_warps_to_completion(self, executors: Sequence[WarpExecutor]) -> None:
        """Round-robin warps of one block between barriers until all finish."""
        barrier_cost = float(self.arch.barrier_latency)
        while True:
            statuses = [executor.warp.status for executor in executors]
            if all(status is WarpStatus.DONE for status in statuses):
                return
            ran_any = False
            for executor in executors:
                if executor.warp.status is WarpStatus.RUNNING:
                    executor.run()
                    ran_any = True
            waiting = [executor.warp for executor in executors
                       if executor.warp.status is WarpStatus.AT_BARRIER]
            if waiting:
                # Barrier release: every waiting warp resumes at the cycle count
                # of the slowest participant (this round-up is what makes the
                # redundant-init + __syncthreads pattern of ADEPT-V0 so costly).
                release_cycle = max(w.cycles for w in waiting) + barrier_cost
                for warp in waiting:
                    warp.cycles = release_cycle
                    warp.status = WarpStatus.RUNNING
                continue
            if not ran_any:
                # No warp could make progress and none is at a barrier: done.
                return

    def _schedule_blocks(self, block_results: Sequence[BlockResult]) -> float:
        """Fill the device in waves of ``concurrent_blocks`` blocks."""
        if not block_results:
            return 0.0
        concurrent = max(1, self.arch.concurrent_blocks)
        cycles = 0.0
        for start in range(0, len(block_results), concurrent):
            wave = block_results[start:start + concurrent]
            cycles += max(result.cycles for result in wave)
        return cycles
