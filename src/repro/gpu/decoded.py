"""Decode-once execution layer for the SIMT interpreter.

The reference interpreter (:class:`~repro.gpu.interpreter.WarpExecutor`)
re-inspects every instruction's string opcode through an if-chain and
re-resolves every operand on every executed instruction of every warp.
This module removes that per-step cost by *decoding* a kernel once per
module:

* each instruction is bound to a handler closure at decode time (a
  dispatch table instead of string comparisons), with **pre-computed
  operand slots** -- constants become shared read-only per-lane arrays
  built once, registers become direct name lookups;
* launch-invariant instruction costs (everything except memory/atomics,
  whose price depends on the addresses actually touched) are baked in
  together with the cost-model counter they bump;
* each basic block is split into *steps*: maximal straight-line
  **segments** of simple instructions, separated by control
  flow/barriers, so uniform (non-divergent) regions execute in one tight
  loop without re-checking for reconvergence or control transfers.

Decoded programs are cached per function via
:meth:`repro.ir.function.Function.cached_decoding`, so every launch of an
unchanged module (one fitness evaluation launches the same variant once
per test case or simulation step) reuses one decoding.  The decoded
execution is bit-for-bit equivalent to the reference path -- same cycle
counts, cost-model counters, profiler statistics, trap messages and RNG
streams -- which the differential battery in
``tests/gpu/test_fast_path_equivalence.py`` pins.

This is the middle of the simulator's three interpreter tiers: the
segment JIT (:mod:`repro.gpu.jitted`, the default) builds on these
decoded programs by exec-compiling each straight-line segment into one
Python function, and falls back to this dispatch loop for barrier
resumes, budget edges and partial compilation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..ir.analysis import immediate_postdominators
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.values import Const, Reg
from .arch import GpuArch
from .interpreter import (
    _ARITHMETIC,
    STEP_BARRIER,
    STEP_BR,
    STEP_CONDBR,
    STEP_RET,
    STEP_SEGMENT,
    WarpExecutor,
)
from .memory import BufferHandle
from .rng import counter_uniform
from .timing import MemoryAccessInfo, static_instruction_cost

_INT = np.int64
_FLOAT = np.float64

#: An execute closure: ``(executor, active mask, mask is fully active)`` ->
#: memory info for pricing.  The ``full`` flag lets handlers skip the masked
#: merge/select work when every lane of the warp participates (the uniform
#: straight-line case), which is where simulation time concentrates.
ExecuteFn = Callable[[WarpExecutor, np.ndarray, bool], Optional[MemoryAccessInfo]]

_IDENTITY_OPCODES = frozenset((
    "tid.x", "tid.y", "bid.x", "bid.y",
    "bdim.x", "bdim.y", "gdim.x", "gdim.y",
    "laneid", "warpid",
))

_CONTROL_KINDS = {
    "br": STEP_BR,
    "condbr": STEP_CONDBR,
    "ret": STEP_RET,
    "syncthreads": STEP_BARRIER,
}


class DecodedInstruction:
    """One simple (straight-line) instruction bound to its handler."""

    __slots__ = ("instruction", "uid", "execute", "static_cost", "counter_key",
                 "is_store", "is_atomic")

    def __init__(self, instruction: Instruction, execute: ExecuteFn,
                 static_cost: Optional[float], counter_key: Optional[str]):
        self.instruction = instruction
        self.uid = instruction.uid
        self.execute = execute
        #: Baked cycle cost, or ``None`` for memory/atomics (priced at runtime).
        self.static_cost = static_cost
        #: Cost-model counter the baked cost bumps (``None``: no counter).
        self.counter_key = counter_key
        #: Pricing flags baked at decode time so the dispatch loop can call
        #: ``CostModel.price_access`` without re-inspecting the opcode.
        self.is_store = instruction.opcode in ("store", "memset")
        self.is_atomic = instruction.info.category == "atomic"


class Segment:
    """A maximal run of simple instructions inside one block.

    ``static_cycles`` / ``counter_totals`` pre-aggregate the baked costs of
    the whole body so a full segment execution charges them in one step.
    Every latency in the cost model is an integer number of cycles, so the
    pre-aggregated sums are exact in float64 and charging them out of order
    is bit-for-bit identical to the reference's per-instruction adds;
    ``exact`` records that decode-time check (a hypothetical non-integer
    cost override drops the segment back to per-instruction charging).
    """

    __slots__ = ("kind", "start", "body", "static_cycles", "counter_totals",
                 "exact", "jit_fns")

    def __init__(self, start: int):
        self.kind = STEP_SEGMENT
        self.start = start
        self.body: List[DecodedInstruction] = []
        self.static_cycles = 0.0
        self.counter_totals: List[tuple] = []
        self.exact = True
        #: Exec-compiled ``(full-mask, masked)`` whole-segment function pair
        #: (see :mod:`repro.gpu.jitted`), attached lazily by the JIT tier
        #: and only for ``exact`` segments; the dispatch tier never calls it.
        self.jit_fns = None

    def finalize(self) -> None:
        totals: Dict[str, float] = {}
        for decoded in self.body:
            cost = decoded.static_cost
            if cost is None:
                continue
            if not float(cost).is_integer():
                self.exact = False
            self.static_cycles += cost
            if decoded.counter_key is not None:
                totals[decoded.counter_key] = totals.get(decoded.counter_key, 0.0) + cost
        self.counter_totals = list(totals.items())


class ControlStep:
    """A control-flow or barrier instruction (one step on its own)."""

    __slots__ = ("kind", "instruction", "static_cost", "counter_key",
                 "target", "true_target", "false_target", "reconvergence",
                 "condition", "jit_fns")

    def __init__(self, kind: int, instruction: Instruction,
                 static_cost: float, counter_key: Optional[str]):
        self.kind = kind
        self.instruction = instruction
        self.static_cost = static_cost
        self.counter_key = counter_key
        self.target: Optional[str] = None
        self.true_target: Optional[str] = None
        self.false_target: Optional[str] = None
        self.reconvergence: Optional[str] = None
        self.condition: Optional[Callable] = None
        #: Exec-compiled single-instruction function pair used when this
        #: BR/CONDBR/RET step is dispatched on its own -- a block with no
        #: preceding straight-line segment, or a mid-block resume landing
        #: on the terminator (see :func:`repro.gpu.jitted.attach_jit`);
        #: barrier steps and the dispatch tier leave it ``None``.
        self.jit_fns = None


class DecodedBlock:
    """The decoded body of one basic block."""

    __slots__ = ("label", "length", "steps", "step_of_index")

    def __init__(self, label: str, length: int, steps: List[object],
                 step_of_index: List[int]):
        self.label = label
        self.length = length
        self.steps = steps
        #: Instruction index -> position in ``steps`` (for mid-block resume
        #: after a barrier).
        self.step_of_index = step_of_index


class DecodedFunction:
    """A kernel pre-resolved for dispatch-table execution.

    Deliberately holds no reference back to the :class:`Function`: decoded
    programs live as *values* of a WeakKeyDictionary keyed by their
    function (see ``Function.cached_decoding``), and a back-reference
    would pin every decoded variant for the life of the process.
    """

    __slots__ = ("blocks", "postdominators", "warp_size", "jit_ready")

    def __init__(self, blocks: Dict[str, DecodedBlock],
                 postdominators: Dict[str, Optional[str]], warp_size: int):
        self.blocks = blocks
        self.postdominators = postdominators
        self.warp_size = warp_size
        #: Set once :func:`repro.gpu.jitted.attach_jit` has compiled the
        #: exact segments; lives (and dies) with the decoded program in
        #: ``Function.cached_decoding``, so a mutation that re-decodes the
        #: function also recompiles its segments.
        self.jit_ready = False


# --------------------------------------------------------------------------- operand slots
def _const_array(value, warp_size: int) -> np.ndarray:
    """The per-lane array for a constant operand (same dtype rules as the
    reference `_resolve`), shared across executions and frozen read-only."""
    if isinstance(value, bool):
        array = np.full(warp_size, value, dtype=bool)
    else:
        dtype = _INT if isinstance(value, int) else _FLOAT
        array = np.full(warp_size, value, dtype=dtype)
    array.flags.writeable = False
    return array


def _numeric_getter(operand, instruction: Instruction, warp_size: int):
    """Pre-resolved equivalent of the reference ``_numeric``."""
    if isinstance(operand, Const):
        array = _const_array(operand.value, warp_size)

        def get_const(executor):
            return array

        return get_const
    if isinstance(operand, Reg):
        name = operand.name

        def get_reg(executor):
            try:
                value = executor.warp.registers[name]
            except KeyError:
                executor._trap(f"read of undefined register %{name}", instruction)
            if isinstance(value, BufferHandle):
                executor._trap(
                    f"operand %{name} is a buffer handle "
                    f"where a numeric value is required", instruction)
            return value

        return get_reg

    def get_unsupported(executor):
        executor._trap(f"unsupported operand {operand!r}", instruction)

    return get_unsupported


def _buffer_getter(operand, instruction: Instruction):
    """Pre-resolved equivalent of the reference ``_buffer``."""
    if isinstance(operand, Reg):
        name = operand.name

        def get_handle(executor):
            try:
                value = executor.warp.registers[name]
            except KeyError:
                executor._trap(f"read of undefined register %{name}", instruction)
            if not isinstance(value, BufferHandle):
                executor._trap("memory access base operand is not a buffer", instruction)
            return value

        return get_handle
    if isinstance(operand, Const):
        def get_const(executor):
            executor._trap("memory access base operand is not a buffer", instruction)

        return get_const

    def get_unsupported(executor):
        executor._trap(f"unsupported operand {operand!r}", instruction)

    return get_unsupported


# --------------------------------------------------------------------------- handler builders
def _build_arith(instruction: Instruction, warp_size: int) -> ExecuteFn:
    handler = _ARITHMETIC[instruction.opcode]
    dest = instruction.dest
    getters = [_numeric_getter(op, instruction, warp_size)
               for op in instruction.operands]
    if len(getters) == 1:
        get0, = getters

        def execute(ex, mask, full):
            result = handler(ex, instruction, [get0(ex)])
            if full:
                ex.warp.write_register_full(dest, result)
            else:
                ex.warp.write_register(dest, result, mask)
            return None
    elif len(getters) == 2:
        get0, get1 = getters

        def execute(ex, mask, full):
            result = handler(ex, instruction, [get0(ex), get1(ex)])
            if full:
                ex.warp.write_register_full(dest, result)
            else:
                ex.warp.write_register(dest, result, mask)
            return None
    else:
        def execute(ex, mask, full):
            result = handler(ex, instruction, [g(ex) for g in getters])
            if full:
                ex.warp.write_register_full(dest, result)
            else:
                ex.warp.write_register(dest, result, mask)
            return None
    return execute


def _build_identity(instruction: Instruction, warp_size: int) -> ExecuteFn:
    opcode = instruction.opcode
    dest = instruction.dest

    def execute(ex, mask, full):
        value = ex._identity_values[opcode].copy()
        if full:
            ex.warp.write_register_full(dest, value)
        else:
            ex.warp.write_register(dest, value, mask)
        return None

    return execute


def _build_load(instruction: Instruction, warp_size: int) -> ExecuteFn:
    get_base = _buffer_getter(instruction.operands[0], instruction)
    get_index = _numeric_getter(instruction.operands[1], instruction, warp_size)
    dest = instruction.dest

    def execute(ex, mask, full):
        handle = get_base(ex)
        index = get_index(ex)
        if full:
            active_idx, lo, hi = handle.check_bounds_stats(index, instruction)
            ex.warp.write_register_full(dest, handle.array[active_idx])
        else:
            active_idx, lo, hi = handle.check_bounds_stats(index[mask], instruction)
            result = np.zeros(warp_size, dtype=handle.array.dtype)
            result[mask] = handle.array[active_idx]
            ex.warp.write_register(dest, result, mask)
        return MemoryAccessInfo(handle=handle, indices=active_idx, stats=(lo, hi))

    return execute


def _build_store(instruction: Instruction, warp_size: int) -> ExecuteFn:
    get_base = _buffer_getter(instruction.operands[0], instruction)
    get_index = _numeric_getter(instruction.operands[1], instruction, warp_size)
    get_value = _numeric_getter(instruction.operands[2], instruction, warp_size)

    def execute(ex, mask, full):
        handle = get_base(ex)
        index = get_index(ex)
        value = get_value(ex)
        if full:
            active_idx, lo, hi = handle.check_bounds_stats(index, instruction)
            handle.array[active_idx] = value.astype(handle.array.dtype)
        else:
            active_idx, lo, hi = handle.check_bounds_stats(index[mask], instruction)
            handle.array[active_idx] = value[mask].astype(handle.array.dtype)
        return MemoryAccessInfo(handle=handle, indices=active_idx, stats=(lo, hi))

    return execute


def _build_atomic(instruction: Instruction, warp_size: int) -> ExecuteFn:
    opcode = instruction.opcode
    get_base = _buffer_getter(instruction.operands[0], instruction)
    get_index = _numeric_getter(instruction.operands[1], instruction, warp_size)
    if opcode == "atomic.cas":
        get_compare = _numeric_getter(instruction.operands[2], instruction, warp_size)
        get_value = _numeric_getter(instruction.operands[3], instruction, warp_size)
    else:
        get_compare = None
        get_value = _numeric_getter(instruction.operands[2], instruction, warp_size)
    dest = instruction.dest
    all_lanes = np.arange(warp_size)
    all_lanes.flags.writeable = False

    def execute(ex, mask, full):
        handle = get_base(ex)
        index = get_index(ex)
        if full:
            active_idx, lo, hi = handle.check_bounds_stats(index, instruction)
            lanes = all_lanes
        else:
            active_idx, lo, hi = handle.check_bounds_stats(index[mask], instruction)
            lanes = np.nonzero(mask)[0]
        old_values = np.zeros(warp_size, dtype=handle.array.dtype)
        compare = get_compare(ex) if get_compare is not None else None
        value = get_value(ex)
        array = handle.array
        if active_idx.size > 1:
            # With no address collisions the lanes cannot observe each
            # other's updates, so the serial per-lane loop collapses to
            # element-wise reads/writes with identical results (add uses
            # the same IEEE scalar additions; exch just stores; max and
            # cas select per lane with the loop's exact comparison
            # direction, so NaN/Inf operands behave identically).
            sorted_idx = np.sort(active_idx)
            if (sorted_idx[1:] != sorted_idx[:-1]).all():
                old = array[active_idx]
                old_values[lanes] = old
                active_values = value[lanes]
                # Assignment casts to the array dtype exactly like the
                # reference's per-lane scalar stores.
                if opcode == "atomic.add":
                    array[active_idx] = old + active_values
                elif opcode == "atomic.max":
                    # The loop's max(old, new) keeps old unless new > old,
                    # so any NaN comparison preserves old -- np.where with
                    # the same predicate reproduces that bit-for-bit.
                    array[active_idx] = np.where(active_values > old,
                                                 active_values, old)
                elif opcode == "atomic.cas":
                    # The loop stores new only where old == compare; NaN
                    # never compares equal, so NaN slots keep old.
                    array[active_idx] = np.where(old == compare[lanes],
                                                 active_values, old)
                else:  # atomic.exch
                    array[active_idx] = active_values
                if dest is not None:
                    if full:
                        ex.warp.write_register_full(dest, old_values)
                    else:
                        ex.warp.write_register(dest, old_values, mask)
                return MemoryAccessInfo(handle=handle, indices=active_idx, stats=(lo, hi))
        for position, lane in enumerate(lanes):
            address = int(active_idx[position])
            old = array[address]
            old_values[lane] = old
            new = value[lane]
            if opcode == "atomic.add":
                array[address] = old + new
            elif opcode == "atomic.max":
                array[address] = max(old, new)
            elif opcode == "atomic.exch":
                array[address] = new
            elif opcode == "atomic.cas":
                if old == compare[lane]:
                    array[address] = new
        if dest is not None:
            if full:
                ex.warp.write_register_full(dest, old_values)
            else:
                ex.warp.write_register(dest, old_values, mask)
        return MemoryAccessInfo(handle=handle, indices=active_idx, stats=(lo, hi))

    return execute


def _build_activemask(instruction: Instruction, warp_size: int) -> ExecuteFn:
    dest = instruction.dest
    is_full_warp = warp_size == 32

    def execute(ex, mask, full):
        bits = int(np.packbits(mask[::-1]).view(">u4")[0]) if is_full_warp else 0
        value = np.full(warp_size, bits, dtype=_INT)
        if full:
            ex.warp.write_register_full(dest, value)
        else:
            ex.warp.write_register(dest, value, mask)
        return None

    return execute


def _build_ballot(instruction: Instruction, warp_size: int) -> ExecuteFn:
    # The membership-mask operand (index 0) is never resolved, exactly like
    # the reference path.
    get_predicate = _numeric_getter(instruction.operands[1], instruction, warp_size)
    dest = instruction.dest
    is_full_warp = warp_size == 32

    def execute(ex, mask, full):
        predicate = get_predicate(ex).astype(bool)
        voters = mask & predicate
        bits = int(np.packbits(voters[::-1]).view(">u4")[0]) if is_full_warp else 0
        value = np.full(warp_size, bits, dtype=_INT)
        if full:
            ex.warp.write_register_full(dest, value)
        else:
            ex.warp.write_register(dest, value, mask)
        return None

    return execute


def _build_shfl(instruction: Instruction, warp_size: int) -> ExecuteFn:
    get_value = _numeric_getter(instruction.operands[1], instruction, warp_size)
    get_lane = _numeric_getter(instruction.operands[2], instruction, warp_size)
    dest = instruction.dest
    opcode = instruction.opcode
    identity_lanes = np.arange(warp_size)
    identity_lanes.flags.writeable = False

    if opcode == "shfl.sync":
        def compute(ex):
            value = get_value(ex)
            source = get_lane(ex).astype(_INT)
            lanes = np.clip(source, 0, warp_size - 1)
            return value[lanes]
    elif opcode == "shfl.up.sync":
        def compute(ex):
            value = get_value(ex)
            delta = get_lane(ex).astype(_INT)
            lanes = identity_lanes - delta
            lanes = np.where(lanes < 0, identity_lanes, lanes)
            return value[lanes]
    else:  # shfl.down.sync
        def compute(ex):
            value = get_value(ex)
            delta = get_lane(ex).astype(_INT)
            lanes = identity_lanes + delta
            lanes = np.where(lanes >= warp_size, identity_lanes, lanes)
            return value[lanes]

    def execute(ex, mask, full):
        result = compute(ex)
        if full:
            ex.warp.write_register_full(dest, result)
        else:
            ex.warp.write_register(dest, result, mask)
        return None

    return execute


def _build_syncwarp(instruction: Instruction, warp_size: int) -> ExecuteFn:
    get_mask_operand = _numeric_getter(instruction.operands[0], instruction, warp_size)

    def execute(ex, mask, full):
        get_mask_operand(ex)
        return None

    return execute


def _build_rand(instruction: Instruction, warp_size: int) -> ExecuteFn:
    get_seed = _numeric_getter(instruction.operands[0], instruction, warp_size)
    get_step = _numeric_getter(instruction.operands[1], instruction, warp_size)
    get_salt = _numeric_getter(instruction.operands[2], instruction, warp_size)
    dest = instruction.dest

    def execute(ex, mask, full):
        seed = get_seed(ex).astype(_INT)
        step = get_step(ex).astype(_INT)
        salt = get_salt(ex).astype(_INT)
        value = counter_uniform(seed, step, salt)
        if full:
            ex.warp.write_register_full(dest, value)
        else:
            ex.warp.write_register(dest, value, mask)
        return None

    return execute


def _build_nop(instruction: Instruction, warp_size: int) -> ExecuteFn:
    def execute(ex, mask, full):
        return None

    return execute


def _build_unimplemented(instruction: Instruction, warp_size: int) -> ExecuteFn:
    opcode = instruction.opcode

    def execute(ex, mask, full):
        ex._trap(f"opcode {opcode!r} is not implemented by the interpreter", instruction)

    return execute


def _build_execute(instruction: Instruction, warp_size: int) -> ExecuteFn:
    opcode = instruction.opcode
    if opcode in _ARITHMETIC:
        return _build_arith(instruction, warp_size)
    if opcode in _IDENTITY_OPCODES:
        return _build_identity(instruction, warp_size)
    if opcode == "load":
        return _build_load(instruction, warp_size)
    if opcode in ("store", "memset"):
        return _build_store(instruction, warp_size)
    if opcode.startswith("atomic."):
        return _build_atomic(instruction, warp_size)
    if opcode == "activemask":
        return _build_activemask(instruction, warp_size)
    if opcode == "ballot.sync":
        return _build_ballot(instruction, warp_size)
    if opcode.startswith("shfl."):
        return _build_shfl(instruction, warp_size)
    if opcode == "syncwarp":
        return _build_syncwarp(instruction, warp_size)
    if opcode == "rand.uniform":
        return _build_rand(instruction, warp_size)
    if opcode == "nop":
        return _build_nop(instruction, warp_size)
    return _build_unimplemented(instruction, warp_size)


# --------------------------------------------------------------------------- decoding
def _decode_control(instruction: Instruction, kind: int, label: str,
                    arch: GpuArch, warp_size: int,
                    postdominators: Dict[str, Optional[str]]) -> ControlStep:
    cost, counter_key = static_instruction_cost(arch, instruction)
    step = ControlStep(kind, instruction, cost, counter_key)
    if kind == STEP_BR:
        step.target = instruction.attrs["target"]
    elif kind == STEP_CONDBR:
        step.condition = _numeric_getter(instruction.operands[0], instruction,
                                         warp_size)
        step.true_target = instruction.attrs["true_target"]
        step.false_target = instruction.attrs["false_target"]
        step.reconvergence = postdominators.get(label)
    return step


def _decode_block(label: str, instructions: List[Instruction], arch: GpuArch,
                  warp_size: int,
                  postdominators: Dict[str, Optional[str]]) -> DecodedBlock:
    steps: List[object] = []
    step_of_index: List[int] = []
    segment: Optional[Segment] = None
    for index, instruction in enumerate(instructions):
        kind = _CONTROL_KINDS.get(instruction.opcode)
        if kind is not None:
            segment = None
            steps.append(_decode_control(instruction, kind, label, arch,
                                         warp_size, postdominators))
        else:
            if segment is None:
                segment = Segment(index)
                steps.append(segment)
            static = static_instruction_cost(arch, instruction)
            cost, counter_key = static if static is not None else (None, None)
            segment.body.append(DecodedInstruction(
                instruction, _build_execute(instruction, warp_size),
                cost, counter_key))
        step_of_index.append(len(steps) - 1)
    for step in steps:
        if step.kind == STEP_SEGMENT:
            step.finalize()
    return DecodedBlock(label, len(instructions), steps, step_of_index)


def _decode(function: Function, arch: GpuArch) -> DecodedFunction:
    warp_size = arch.warp_size
    postdominators = immediate_postdominators(function)
    blocks = {
        label: _decode_block(label, function.blocks[label].instructions,
                             arch, warp_size, postdominators)
        for label in function.block_order()
    }
    return DecodedFunction(blocks, postdominators, warp_size)


def decode_function(function: Function, arch: GpuArch) -> DecodedFunction:
    """Decode *function* for *arch*, memoised until the function's IR changes.

    The cache key covers everything the decoding bakes in: warp size and
    the launch-invariant latencies (:meth:`GpuArch.cost_signature`).
    """
    key = ("decoded", arch.warp_size, arch.cost_signature())
    return function.cached_decoding(key, lambda fn: _decode(fn, arch))
