"""Structural verification of mini-IR modules.

The verifier distinguishes two severities:

* *structural errors* -- problems that make a module impossible to execute
  or mutate safely (missing terminators, unknown branch targets, duplicate
  uids).  :func:`verify_module` raises :class:`IRVerificationError` for
  these unless ``raise_on_error=False``.
* *warnings* -- constructs that are legal but likely wrong, such as reading
  a register that no instruction ever defines.  GEVO-generated variants
  routinely contain such patterns (the variant then traps at runtime and
  fails its test case), so warnings never block execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import IRVerificationError
from .function import Function, Module
from .values import Reg


@dataclass
class VerificationReport:
    """Outcome of verifying a module or function."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when there are no structural errors (warnings allowed)."""
        return not self.errors

    def extend(self, other: "VerificationReport") -> None:
        self.errors.extend(other.errors)
        self.warnings.extend(other.warnings)

    def summary(self) -> str:
        return f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"


def verify_function(func: Function) -> VerificationReport:
    """Verify a single function and return a report."""
    report = VerificationReport()
    labels = set(func.block_order())

    if not labels:
        report.errors.append(f"{func.name}: function has no basic blocks")
        return report

    seen_uids = set()
    defined = set(func.param_names()) | set(func.shared_names())
    for inst in func.instructions():
        if inst.dest is not None:
            defined.add(inst.dest)
        if inst.uid in seen_uids:
            report.errors.append(f"{func.name}: duplicate instruction uid {inst.uid}")
        seen_uids.add(inst.uid)

    for label in func.block_order():
        block = func.blocks[label]
        if not block.instructions:
            report.errors.append(f"{func.name}:{label}: empty basic block")
            continue
        terminator = block.instructions[-1]
        if not terminator.is_terminator:
            report.errors.append(
                f"{func.name}:{label}: block does not end with a terminator "
                f"(last instruction: {terminator.opcode})"
            )
        for position, inst in enumerate(block.instructions[:-1]):
            if inst.is_terminator:
                report.errors.append(
                    f"{func.name}:{label}: terminator {inst.opcode!r} at position {position} "
                    "is not the last instruction"
                )
        for target in block.successors():
            if target not in labels:
                report.errors.append(
                    f"{func.name}:{label}: branch to unknown block {target!r}"
                )

    for label in func.block_order():
        for inst in func.blocks[label]:
            for op in inst.operands:
                if isinstance(op, Reg) and op.name not in defined:
                    report.warnings.append(
                        f"{func.name}:{label}: instruction uid={inst.uid} reads register "
                        f"%{op.name} that is never defined"
                    )
    return report


def verify_module(module: Module, raise_on_error: bool = True) -> VerificationReport:
    """Verify every function in *module*.

    Raises :class:`IRVerificationError` when structural errors are found and
    ``raise_on_error`` is true; otherwise returns the report for inspection.
    """
    report = VerificationReport()
    for name in module.function_order():
        report.extend(verify_function(module.functions[name]))
    if report.errors and raise_on_error:
        raise IRVerificationError(
            f"module {module.name!r} failed verification: " + "; ".join(report.errors[:5])
        )
    return report
