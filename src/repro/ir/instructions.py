"""Instruction objects of the mini-IR.

An :class:`Instruction` is a single operation: an opcode, an optional
destination register, a list of operands, opcode-specific attributes
(branch targets, memory-space hints), a stable unique id (*uid*) used by
GEVO edits to address instructions across module clones, and an optional
source location for mapping IR-level edits back to "CUDA source" lines as
done in the paper's functional analysis (Section VI).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .opcodes import opcode_info
from .values import Const, Reg, Value, as_value, format_value

_uid_counter = itertools.count(1)


def next_uid() -> int:
    """Allocate a fresh, process-unique instruction uid."""
    return next(_uid_counter)


def reset_uid_namespace() -> None:
    """Restart uid allocation at 1, as a freshly-started process would.

    Checkpoints address instructions by uid, and uids are deterministic
    only because every *process* rebuilds its modules from the same
    counter start.  In-process crash simulation (see
    :mod:`repro.runtime.faultpoints`) must call this between the
    "killed" run and the "resumed" run so the resumed object graph gets
    the same uid numbering a genuine restart would -- otherwise the
    resumed modules drift and checkpointed edits address nothing.

    Never call this while modules from the old namespace are still in
    use: uid collisions between old and new instructions would corrupt
    edit addressing.
    """
    global _uid_counter
    _uid_counter = itertools.count(1)


_mutation_counter = itertools.count(1)


def next_mutation_stamp() -> int:
    """Allocate a monotonically increasing in-place-mutation stamp.

    Decoded-program caches (see :mod:`repro.gpu.decoded`) fingerprint a
    function as the sequence of ``(uid, mutation_stamp)`` pairs of its
    instructions: structural edits change the uid sequence, while in-place
    edits (operand replacement) advance the mutated instruction's stamp.
    """
    return next(_mutation_counter)


@dataclass(frozen=True)
class SourceLoc:
    """A source-code location (file and line) attached to an instruction.

    Mirrors the debug information the paper's instrumented Clang attaches to
    LLVM-IR so GEVO edits can be traced back to CUDA source lines.
    """

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


class Instruction:
    """One mini-IR instruction.

    Instances are mutable (operand replacement is a GEVO edit) but keep
    their *uid* for their lifetime.  Copies made by :meth:`clone` preserve
    the uid (used when cloning whole modules before applying an edit list);
    copies made by :meth:`duplicate` receive a fresh uid (used by the
    instruction-copy edit, which inserts a *new* instruction).
    """

    __slots__ = ("uid", "opcode", "dest", "operands", "attrs", "loc", "mutation_stamp")

    def __init__(
        self,
        opcode: str,
        dest: Optional[str] = None,
        operands: Optional[List[Value]] = None,
        attrs: Optional[Dict[str, object]] = None,
        loc: Optional[SourceLoc] = None,
        uid: Optional[int] = None,
    ):
        info = opcode_info(opcode)
        self.uid = next_uid() if uid is None else uid
        self.opcode = opcode
        self.dest = dest
        self.operands = [as_value(op) for op in (operands or [])]
        self.attrs = dict(attrs or {})
        self.loc = loc
        self.mutation_stamp = 0
        if info.has_dest and dest is None:
            raise ValueError(f"opcode {opcode!r} requires a destination register")
        if not info.has_dest and dest is not None:
            raise ValueError(f"opcode {opcode!r} does not produce a result")
        if info.arity is not None and len(self.operands) != info.arity:
            raise ValueError(
                f"opcode {opcode!r} expects {info.arity} operands, got {len(self.operands)}"
            )

    # -- classification helpers ------------------------------------------------
    @property
    def info(self):
        """The :class:`~repro.ir.opcodes.OpcodeInfo` for this instruction."""
        return opcode_info(self.opcode)

    @property
    def is_terminator(self) -> bool:
        return self.info.is_terminator

    @property
    def is_barrier(self) -> bool:
        return self.info.is_barrier

    @property
    def touches_memory(self) -> bool:
        return self.info.touches_memory

    # -- value/def-use helpers ---------------------------------------------------
    def used_registers(self) -> Tuple[str, ...]:
        """Names of registers read by this instruction."""
        return tuple(op.name for op in self.operands if isinstance(op, Reg))

    def defined_register(self) -> Optional[str]:
        """Name of the register written by this instruction, if any."""
        return self.dest

    def replace_operand(self, index: int, value: Value) -> None:
        """Replace operand *index* with *value* (a GEVO operand edit)."""
        if not 0 <= index < len(self.operands):
            raise IndexError(f"operand index {index} out of range for {self}")
        self.operands[index] = as_value(value)
        self.touch()

    def touch(self) -> None:
        """Record an in-place mutation so cached decodings are invalidated.

        :meth:`replace_operand` calls this automatically; code that mutates
        ``operands``/``attrs``/``dest`` of an instruction *already placed in
        a block* by other means must call it by hand (inserting a freshly
        constructed or :meth:`duplicate`-d instruction needs nothing -- the
        new uid already changes the function fingerprint).
        """
        self.mutation_stamp = next_mutation_stamp()

    # -- copying -----------------------------------------------------------------
    def clone(self) -> "Instruction":
        """Deep copy preserving the uid (used when cloning a module)."""
        return Instruction(
            self.opcode,
            dest=self.dest,
            operands=list(self.operands),
            attrs=dict(self.attrs),
            loc=self.loc,
            uid=self.uid,
        )

    def duplicate(self) -> "Instruction":
        """Deep copy with a *fresh* uid (used by the instruction-copy edit)."""
        return Instruction(
            self.opcode,
            dest=self.dest,
            operands=list(self.operands),
            attrs=dict(self.attrs),
            loc=self.loc,
            uid=None,
        )

    # -- rendering -----------------------------------------------------------------
    def branch_targets(self) -> Tuple[str, ...]:
        """Branch target labels, empty for non-branch instructions."""
        if self.opcode == "br":
            return (self.attrs["target"],)
        if self.opcode == "condbr":
            return (self.attrs["true_target"], self.attrs["false_target"])
        return ()

    def __str__(self) -> str:
        parts = []
        if self.dest is not None:
            parts.append(f"%{self.dest} =")
        parts.append(self.opcode)
        if self.operands:
            parts.append(", ".join(format_value(op) for op in self.operands))
        if self.opcode == "br":
            parts.append(self.attrs["target"])
        elif self.opcode == "condbr":
            parts.append(f"{self.attrs['true_target']}, {self.attrs['false_target']}")
        extra = {k: v for k, v in self.attrs.items()
                 if k not in ("target", "true_target", "false_target")}
        if extra:
            parts.append("!" + ",".join(f"{k}={v}" for k, v in sorted(extra.items())))
        if self.loc is not None:
            parts.append(f"!loc {self.loc}")
        return " ".join(str(p) for p in parts)

    def __repr__(self) -> str:
        return f"<Instruction uid={self.uid} {self}>"


def make_const(value) -> Const:
    """Convenience constructor for constant operands."""
    return Const(value)


def make_reg(name: str) -> Reg:
    """Convenience constructor for register operands."""
    return Reg(name)
