"""Opcode registry for the mini-IR.

Each opcode is described by an :class:`OpcodeInfo` record holding its
operand arity, whether it produces a result register, and classification
flags that the verifier, the mutation operators and the GPU cost model all
consult.  Keeping this metadata in one table ensures the three subsystems
never disagree about what an instruction *is*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode."""

    name: str
    #: Number of operands, or ``None`` for variable arity.
    arity: Optional[int]
    #: Whether the instruction writes a destination register.
    has_dest: bool
    #: Category string: ``arith``, ``cmp``, ``memory``, ``atomic``,
    #: ``control``, ``sync``, ``intrinsic``, ``misc``.
    category: str
    #: Terminators end a basic block (br / condbr / ret).
    is_terminator: bool = False
    #: True for loads/stores/atomics (anything touching a memory space).
    touches_memory: bool = False
    #: True for warp/block synchronisation points.
    is_barrier: bool = False
    #: True if GEVO may not delete / move this opcode (only terminators).
    pinned: bool = False
    #: Extra attribute keys the instruction is expected to carry.
    attr_keys: Tuple[str, ...] = field(default_factory=tuple)


_REGISTRY: Dict[str, OpcodeInfo] = {}


def _register(info: OpcodeInfo) -> None:
    if info.name in _REGISTRY:
        raise ValueError(f"duplicate opcode {info.name}")
    _REGISTRY[info.name] = info


def _arith(name: str, arity: int = 2) -> None:
    _register(OpcodeInfo(name, arity, True, "arith"))


def _cmp(name: str) -> None:
    _register(OpcodeInfo(name, 2, True, "cmp"))


def _intrinsic(name: str, arity: int = 0) -> None:
    _register(OpcodeInfo(name, arity, True, "intrinsic"))


# --- arithmetic / logic -----------------------------------------------------
for _op in ("add", "sub", "mul", "div", "rem", "min", "max",
            "and", "or", "xor", "shl", "shr"):
    _arith(_op)
_arith("neg", 1)
_arith("not", 1)
_arith("abs", 1)
_arith("mov", 1)
_arith("ftoi", 1)
_arith("itof", 1)
_register(OpcodeInfo("select", 3, True, "arith"))
_register(OpcodeInfo("fma", 3, True, "arith"))

# --- comparisons ------------------------------------------------------------
for _op in ("cmp.eq", "cmp.ne", "cmp.lt", "cmp.le", "cmp.gt", "cmp.ge"):
    _cmp(_op)

# --- memory -----------------------------------------------------------------
_register(OpcodeInfo("load", 2, True, "memory", touches_memory=True))
_register(OpcodeInfo("store", 3, False, "memory", touches_memory=True))
_register(OpcodeInfo("memset", 3, False, "memory", touches_memory=True))
_register(OpcodeInfo("atomic.add", 3, True, "atomic", touches_memory=True))
_register(OpcodeInfo("atomic.max", 3, True, "atomic", touches_memory=True))
_register(OpcodeInfo("atomic.exch", 3, True, "atomic", touches_memory=True))
_register(OpcodeInfo("atomic.cas", 4, True, "atomic", touches_memory=True))

# --- control flow -----------------------------------------------------------
_register(OpcodeInfo("br", 0, False, "control", is_terminator=True, pinned=True,
                     attr_keys=("target",)))
_register(OpcodeInfo("condbr", 1, False, "control", is_terminator=True, pinned=True,
                     attr_keys=("true_target", "false_target")))
_register(OpcodeInfo("ret", 0, False, "control", is_terminator=True, pinned=True))

# --- synchronisation / warp intrinsics --------------------------------------
_register(OpcodeInfo("syncthreads", 0, False, "sync", is_barrier=True))
_register(OpcodeInfo("syncwarp", 1, False, "sync"))
_register(OpcodeInfo("shfl.sync", 3, True, "sync"))
_register(OpcodeInfo("shfl.up.sync", 3, True, "sync"))
_register(OpcodeInfo("shfl.down.sync", 3, True, "sync"))
_register(OpcodeInfo("ballot.sync", 2, True, "sync"))
_register(OpcodeInfo("activemask", 0, True, "sync"))

# --- thread / block identity intrinsics -------------------------------------
for _op in ("tid.x", "tid.y", "bid.x", "bid.y",
            "bdim.x", "bdim.y", "gdim.x", "gdim.y",
            "laneid", "warpid"):
    _intrinsic(_op)

# --- misc -------------------------------------------------------------------
_register(OpcodeInfo("rand.uniform", 3, True, "intrinsic"))
_register(OpcodeInfo("nop", 0, False, "misc"))


def opcode_info(name: str) -> OpcodeInfo:
    """Look up the :class:`OpcodeInfo` for *name*.

    Raises ``KeyError`` with a helpful message for unknown opcodes.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown opcode {name!r}") from None


def is_known_opcode(name: str) -> bool:
    """Return ``True`` if *name* is a registered opcode."""
    return name in _REGISTRY


def all_opcodes() -> Tuple[str, ...]:
    """Return every registered opcode name, sorted."""
    return tuple(sorted(_REGISTRY))


TERMINATORS = frozenset(op for op, info in _REGISTRY.items() if info.is_terminator)
MEMORY_OPCODES = frozenset(op for op, info in _REGISTRY.items() if info.touches_memory)
BARRIER_OPCODES = frozenset(op for op, info in _REGISTRY.items() if info.is_barrier)
