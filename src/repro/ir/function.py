"""Containers of the mini-IR: basic blocks, functions (kernels), modules.

A :class:`Module` holds one or more :class:`Function` objects (GPU kernels).
Each function has an ordered collection of :class:`BasicBlock` objects, a
parameter list, and shared-memory array declarations.  The containers offer
the lookup and cloning operations GEVO needs: finding an instruction by
uid, inserting/removing instructions, and deep-copying a module so that an
edit list can be applied without disturbing the original.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import IRError
from .instructions import Instruction

#: Per-function decode caches (see :meth:`Function.cached_decoding`), held
#: outside the instances so pickling a Function/Module never drags the
#: unpicklable decoded artifacts (closures, numpy arrays) along and the
#: entries die with their function.
_DECODE_CACHES: "weakref.WeakKeyDictionary[Function, tuple]" = weakref.WeakKeyDictionary()


@dataclass(frozen=True)
class Param:
    """A kernel parameter.

    ``kind`` is ``"buffer"`` for pointers to global-memory arrays and
    ``"scalar"`` for plain numeric arguments.
    """

    name: str
    kind: str = "buffer"

    def __post_init__(self):
        if self.kind not in ("buffer", "scalar"):
            raise ValueError(f"parameter kind must be 'buffer' or 'scalar', got {self.kind!r}")


@dataclass(frozen=True)
class SharedDecl:
    """A per-block shared-memory array declaration."""

    name: str
    size: int
    dtype: str = "float"

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("shared array size must be positive")
        if self.dtype not in ("float", "int"):
            raise ValueError(f"shared array dtype must be 'float' or 'int', got {self.dtype!r}")


class BasicBlock:
    """A labelled sequence of instructions ending in a terminator."""

    def __init__(self, label: str, instructions: Optional[List[Instruction]] = None):
        if not label:
            raise IRError("basic block label must be non-empty")
        self.label = label
        self.instructions: List[Instruction] = list(instructions or [])

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final instruction if it is a terminator, else ``None``."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> Tuple[str, ...]:
        """Labels of successor blocks according to the terminator."""
        term = self.terminator
        return term.branch_targets() if term is not None else ()

    def append(self, instruction: Instruction) -> Instruction:
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        self.instructions.insert(index, instruction)
        return instruction

    def remove(self, instruction: Instruction) -> None:
        self.instructions.remove(instruction)

    def index_of_uid(self, uid: int) -> Optional[int]:
        for i, inst in enumerate(self.instructions):
            if inst.uid == uid:
                return i
        return None

    def clone(self) -> "BasicBlock":
        return BasicBlock(self.label, [inst.clone() for inst in self.instructions])

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.instructions)} instructions)>"


class Function:
    """A GPU kernel: parameters, shared-memory declarations and basic blocks."""

    def __init__(
        self,
        name: str,
        params: Optional[List[Param]] = None,
        shared: Optional[List[SharedDecl]] = None,
    ):
        if not name:
            raise IRError("function name must be non-empty")
        self.name = name
        self.params: List[Param] = list(params or [])
        self.shared: List[SharedDecl] = list(shared or [])
        self.blocks: Dict[str, BasicBlock] = {}
        self._block_order: List[str] = []
        seen = set()
        for p in self.params:
            if p.name in seen:
                raise IRError(f"duplicate parameter name {p.name!r} in function {name!r}")
            seen.add(p.name)
        for s in self.shared:
            if s.name in seen:
                raise IRError(f"shared array {s.name!r} collides with another name in {name!r}")
            seen.add(s.name)

    # -- block management --------------------------------------------------------
    @property
    def entry_label(self) -> str:
        if not self._block_order:
            raise IRError(f"function {self.name!r} has no blocks")
        return self._block_order[0]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_label]

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.blocks:
            raise IRError(f"duplicate block label {block.label!r} in function {self.name!r}")
        self.blocks[block.label] = block
        self._block_order.append(block.label)
        return block

    def block_order(self) -> Tuple[str, ...]:
        return tuple(self._block_order)

    def get_block(self, label: str) -> BasicBlock:
        try:
            return self.blocks[label]
        except KeyError:
            raise IRError(f"no block labelled {label!r} in function {self.name!r}") from None

    # -- instruction queries -------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        """Iterate all instructions in block order."""
        for label in self._block_order:
            yield from self.blocks[label].instructions

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks.values())

    def find_instruction(self, uid: int) -> Optional[Tuple[BasicBlock, int]]:
        """Locate an instruction by uid.

        Returns ``(block, index)`` or ``None`` if the uid is not present
        (for example because a prior edit deleted it).
        """
        for label in self._block_order:
            block = self.blocks[label]
            idx = block.index_of_uid(uid)
            if idx is not None:
                return block, idx
        return None

    def defined_registers(self) -> Tuple[str, ...]:
        """All register names written anywhere in the function, plus params and shared handles."""
        names = [p.name for p in self.params] + [s.name for s in self.shared]
        for inst in self.instructions():
            if inst.dest is not None and inst.dest not in names:
                names.append(inst.dest)
        return tuple(names)

    def shared_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.shared)

    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    # -- decode caching ----------------------------------------------------------
    def decode_fingerprint(self) -> Tuple:
        """Structural identity of this function's executable code.

        The fingerprint is the block-ordered sequence of per-instruction
        ``(uid, mutation_stamp)`` pairs: any insert/delete/move/swap/replace
        changes the uid sequence, and any in-place operand edit (which keeps
        the uid) advances the instruction's mutation stamp.  Two equal
        fingerprints therefore decode to the same program.
        """
        blocks = self.blocks
        return tuple(
            (label, tuple((inst.uid, inst.mutation_stamp)
                          for inst in blocks[label].instructions))
            for label in self._block_order
        )

    def cached_decoding(self, key, build: Callable[["Function"], object]):
        """Memoise ``build(self)`` until this function's IR changes.

        Used by the GPU fast path to decode a kernel once per module and
        reuse the decoded program across every launch of an evaluation
        (one fitness evaluation launches the same variant once per test
        case / simulation step).  ``key`` distinguishes decodings that bake
        in different execution parameters (warp size, cost tables).  The
        cache is validated against :meth:`decode_fingerprint`, so GEVO
        edits applied through the normal pathways invalidate it.
        """
        fingerprint = self.decode_fingerprint()
        cached = _DECODE_CACHES.get(self)
        if cached is None or cached[0] != fingerprint:
            store: Dict[object, object] = {}
            _DECODE_CACHES[self] = (fingerprint, store)
        else:
            store = cached[1]
            artifact = store.get(key)
            if artifact is not None:
                return artifact
        artifact = build(self)
        store[key] = artifact
        return artifact

    # -- copying -----------------------------------------------------------------
    def clone(self) -> "Function":
        new = Function(self.name, params=list(self.params), shared=list(self.shared))
        for label in self._block_order:
            new.add_block(self.blocks[label].clone())
        return new

    def __repr__(self) -> str:
        return (f"<Function {self.name} params={len(self.params)} "
                f"blocks={len(self.blocks)} instrs={self.instruction_count()}>")


class Module:
    """A collection of kernels forming one compilation unit."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self._function_order: List[str] = []

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function {function.name!r} in module {self.name!r}")
        self.functions[function.name] = function
        self._function_order.append(function.name)
        return function

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"module {self.name!r} has no function {name!r}") from None

    def function_order(self) -> Tuple[str, ...]:
        return tuple(self._function_order)

    def instructions(self) -> Iterator[Instruction]:
        for name in self._function_order:
            yield from self.functions[name].instructions()

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def find_instruction(self, uid: int) -> Optional[Tuple[Function, BasicBlock, int]]:
        """Locate an instruction by uid across all functions."""
        for name in self._function_order:
            func = self.functions[name]
            found = func.find_instruction(uid)
            if found is not None:
                block, idx = found
                return func, block, idx
        return None

    def clone(self) -> "Module":
        new = Module(self.name)
        for name in self._function_order:
            new.add_function(self.functions[name].clone())
        return new

    def __repr__(self) -> str:
        return f"<Module {self.name} functions={list(self._function_order)}>"
