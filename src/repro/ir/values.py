"""Value operands of the mini-IR.

The mini-IR is a register machine: instructions read *operands* and write a
*destination register*.  Operands are one of:

* :class:`Reg` -- a named virtual register (also used for kernel parameters
  and for the handles of declared shared-memory arrays, which are bound to
  registers of the same name when a kernel starts executing).
* :class:`Const` -- an immediate constant (int, float or bool).

The representation purposefully differs from LLVM's SSA form: GEVO's
mutation operators act at instruction granularity (copy / delete / move /
replace / swap and operand replacement), and a plain register machine
admits those operators without dominance-frontier repair.  See DESIGN.md
section 2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Number = Union[int, float, bool]


@dataclass(frozen=True)
class Reg:
    """A reference to a named virtual register."""

    name: str

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValueError("register name must be a non-empty string")

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Const:
    """An immediate constant operand."""

    value: Number

    def __post_init__(self):
        if isinstance(self.value, bool):
            return
        if not isinstance(self.value, (int, float)):
            raise ValueError(f"constant must be int, float or bool, got {type(self.value)!r}")

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value)


Value = Union[Reg, Const]


def is_value(obj) -> bool:
    """Return ``True`` if *obj* is a valid IR operand."""
    return isinstance(obj, (Reg, Const))


def as_value(obj) -> Value:
    """Coerce *obj* into an IR operand.

    Strings become registers, numbers become constants, and existing
    :class:`Reg`/:class:`Const` instances pass through unchanged.
    """
    if isinstance(obj, (Reg, Const)):
        return obj
    if isinstance(obj, str):
        return Reg(obj)
    if isinstance(obj, (bool, int, float)):
        return Const(obj)
    raise TypeError(f"cannot convert {obj!r} to an IR value")


def format_value(value: Value) -> str:
    """Render an operand in the textual IR syntax."""
    return str(as_value(value))
