"""Control-flow and data-flow analyses over mini-IR functions.

The GPU simulator needs immediate post-dominators to drive its SIMT
reconvergence stack (a divergent warp re-converges at the immediate
post-dominator of the branching block, the same policy GPGPU-class
hardware models use).  The GEVO mutation operators need to know which
values are available in a function so operand-replacement edits draw from
a sensible pool.  Both analyses live here, built on ``networkx``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..errors import IRError
from .function import Function
from .values import Const, Reg

#: Virtual exit node label used when computing post-dominators.
VIRTUAL_EXIT = "__exit__"


def build_cfg(func: Function) -> "nx.DiGraph":
    """Build the control-flow graph of *func* (nodes are block labels)."""
    graph = nx.DiGraph()
    for label in func.block_order():
        graph.add_node(label)
    for label in func.block_order():
        for successor in func.blocks[label].successors():
            graph.add_edge(label, successor)
    return graph


def reachable_blocks(func: Function) -> Set[str]:
    """Labels of blocks reachable from the entry block."""
    graph = build_cfg(func)
    return set(nx.descendants(graph, func.entry_label)) | {func.entry_label}


def exit_blocks(func: Function) -> Tuple[str, ...]:
    """Blocks that terminate the kernel (end in ``ret`` or have no successors)."""
    exits: List[str] = []
    for label in func.block_order():
        block = func.blocks[label]
        term = block.terminator
        if term is None or term.opcode == "ret" or not block.successors():
            exits.append(label)
    return tuple(exits)


def immediate_postdominators(func: Function) -> Dict[str, Optional[str]]:
    """Map each reachable block label to its immediate post-dominator.

    The analysis adds a virtual exit node fed by every exit block and runs
    the standard immediate-dominator algorithm on the reversed CFG.  Blocks
    whose only post-dominator is the virtual exit map to ``None`` (the warp
    re-converges only when the kernel finishes).
    """
    graph = build_cfg(func)
    exits = exit_blocks(func)
    if not exits:
        # A function that never returns (e.g. after a hostile mutation):
        # treat every block as post-dominated only by the virtual exit.
        return {label: None for label in func.block_order()}
    graph.add_node(VIRTUAL_EXIT)
    for label in exits:
        graph.add_edge(label, VIRTUAL_EXIT)
    reversed_graph = graph.reverse(copy=False)
    idom = nx.immediate_dominators(reversed_graph, VIRTUAL_EXIT)
    result: Dict[str, Optional[str]] = {}
    for label in func.block_order():
        if label not in idom:
            # Unreachable backwards from the exit (infinite loop region).
            result[label] = None
            continue
        parent = idom[label]
        result[label] = None if parent in (VIRTUAL_EXIT, label) else parent
    return result


def block_distance_from_entry(func: Function) -> Dict[str, int]:
    """Shortest CFG distance (in edges) from the entry block to each block."""
    graph = build_cfg(func)
    lengths = nx.single_source_shortest_path_length(graph, func.entry_label)
    return dict(lengths)


def collect_registers(func: Function) -> Tuple[str, ...]:
    """Every register name that appears (as dest or operand) in *func*."""
    names: List[str] = []
    seen: Set[str] = set()

    def _add(name: str) -> None:
        if name not in seen:
            seen.add(name)
            names.append(name)

    for param in func.param_names():
        _add(param)
    for shared in func.shared_names():
        _add(shared)
    for inst in func.instructions():
        if inst.dest is not None:
            _add(inst.dest)
        for op in inst.operands:
            if isinstance(op, Reg):
                _add(op.name)
    return tuple(names)


def collect_constants(func: Function) -> Tuple[Const, ...]:
    """Every constant operand that appears in *func* (deduplicated, ordered)."""
    constants: List[Const] = []
    seen: Set[object] = set()
    for inst in func.instructions():
        for op in inst.operands:
            if isinstance(op, Const):
                key = (type(op.value), op.value)
                if key not in seen:
                    seen.add(key)
                    constants.append(op)
    return tuple(constants)


def collect_operand_pool(func: Function) -> Tuple[object, ...]:
    """The pool of values operand-replacement edits may draw from.

    Mirrors GEVO's behaviour of replacing an operand with another value
    already present in the kernel: existing registers (including parameters
    and shared-array handles) plus existing constants.
    """
    pool: List[object] = [Reg(name) for name in collect_registers(func)]
    pool.extend(collect_constants(func))
    return tuple(pool)


def defining_instructions(func: Function) -> Dict[str, List[int]]:
    """Map register name -> uids of instructions that write it."""
    defs: Dict[str, List[int]] = {}
    for inst in func.instructions():
        if inst.dest is not None:
            defs.setdefault(inst.dest, []).append(inst.uid)
    return defs


def using_instructions(func: Function) -> Dict[str, List[int]]:
    """Map register name -> uids of instructions that read it."""
    uses: Dict[str, List[int]] = {}
    for inst in func.instructions():
        for op in inst.operands:
            if isinstance(op, Reg):
                uses.setdefault(op.name, []).append(inst.uid)
    return uses


def loop_back_edges(func: Function) -> Tuple[Tuple[str, str], ...]:
    """CFG back edges (tail, head) -- a cheap loop detector used in reports."""
    graph = build_cfg(func)
    back: List[Tuple[str, str]] = []
    try:
        order = {label: i for i, label in enumerate(nx.dfs_preorder_nodes(graph, func.entry_label))}
    except nx.NetworkXError as exc:
        raise IRError(f"cannot analyse CFG of {func.name}: {exc}") from exc
    for tail, head in graph.edges():
        if tail in order and head in order and order[head] <= order[tail]:
            if nx.has_path(graph, head, tail):
                back.append((tail, head))
    return tuple(back)


def static_instruction_mix(func: Function) -> Dict[str, int]:
    """Histogram of opcode categories -- used by the boundary-check analysis

    (the paper reports that 31% of the SIMCoV diffusion kernel's instructions
    are boundary-comparison logic)."""
    mix: Dict[str, int] = {}
    for inst in func.instructions():
        mix[inst.info.category] = mix.get(inst.info.category, 0) + 1
    return mix
