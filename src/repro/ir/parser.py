"""Parser for the textual mini-IR form produced by :mod:`repro.ir.printer`.

The grammar is intentionally small and line oriented:

* ``module "<name>"``
* ``func <name>(<param>: <kind>, ...) {`` ... ``}``
* ``shared <name>[<size>]: <dtype>``
* ``<label>:``
* instructions: ``[%dest =] <opcode> [operands] [!loc file:line]``

Operands are ``%reg``, integer/float literals, or ``true``/``false``.
Branches name their targets directly: ``br done`` and
``condbr %p, then, else``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import IRParseError
from .function import BasicBlock, Function, Module, Param, SharedDecl
from .instructions import Instruction, SourceLoc
from .opcodes import is_known_opcode
from .values import Const, Reg, Value

_MODULE_RE = re.compile(r'^module\s+"(?P<name>[^"]+)"$')
_FUNC_RE = re.compile(r"^func\s+(?P<name>[A-Za-z_][\w.]*)\s*\((?P<params>.*)\)\s*\{$")
_SHARED_RE = re.compile(
    r"^shared\s+(?P<name>[A-Za-z_][\w.]*)\[(?P<size>\d+)\]\s*:\s*(?P<dtype>float|int)$"
)
_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_][\w.]*):$")
_LOC_RE = re.compile(r"\s*!loc\s+(?P<file>\S+):(?P<line>\d+)\s*$")
_NUMBER_RE = re.compile(r"^[+-]?(\d+\.\d*([eE][+-]?\d+)?|\.?\d+([eE][+-]?\d+)?|\d+)$")


def _parse_operand(token: str) -> Value:
    token = token.strip()
    if not token:
        raise IRParseError("empty operand")
    if token.startswith("%"):
        return Reg(token[1:])
    if token == "true":
        return Const(True)
    if token == "false":
        return Const(False)
    if _NUMBER_RE.match(token):
        if any(ch in token for ch in ".eE") and not token.lstrip("+-").isdigit():
            return Const(float(token))
        return Const(int(token))
    raise IRParseError(f"cannot parse operand {token!r}")


def _split_operands(text: str) -> List[str]:
    text = text.strip()
    if not text:
        return []
    return [tok.strip() for tok in text.split(",")]


def parse_instruction(line: str) -> Instruction:
    """Parse a single instruction line (without indentation)."""
    original = line
    loc: Optional[SourceLoc] = None
    loc_match = _LOC_RE.search(line)
    if loc_match:
        loc = SourceLoc(loc_match.group("file"), int(loc_match.group("line")))
        line = line[: loc_match.start()].rstrip()

    dest: Optional[str] = None
    if line.startswith("%"):
        if "=" not in line:
            raise IRParseError(f"expected '=' in {original!r}")
        dest_text, line = line.split("=", 1)
        dest = dest_text.strip()[1:]
        line = line.strip()

    parts = line.split(None, 1)
    if not parts:
        raise IRParseError(f"empty instruction in {original!r}")
    opcode = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    if not is_known_opcode(opcode):
        raise IRParseError(f"unknown opcode {opcode!r} in {original!r}")

    attrs = {}
    if opcode == "br":
        target = rest.strip()
        if not target:
            raise IRParseError(f"br requires a target in {original!r}")
        attrs["target"] = target
        operands: List[Value] = []
    elif opcode == "condbr":
        tokens = _split_operands(rest)
        if len(tokens) != 3:
            raise IRParseError(f"condbr requires 'cond, true, false' in {original!r}")
        operands = [_parse_operand(tokens[0])]
        attrs["true_target"] = tokens[1]
        attrs["false_target"] = tokens[2]
    else:
        operands = [_parse_operand(tok) for tok in _split_operands(rest)]

    try:
        return Instruction(opcode, dest=dest, operands=operands, attrs=attrs, loc=loc)
    except ValueError as exc:
        raise IRParseError(f"{exc} (while parsing {original!r})") from exc


def _parse_params(text: str) -> List[Param]:
    text = text.strip()
    if not text:
        return []
    params = []
    for chunk in text.split(","):
        if ":" not in chunk:
            raise IRParseError(f"parameter {chunk!r} must be '<name>: <kind>'")
        name, kind = (part.strip() for part in chunk.split(":", 1))
        params.append(Param(name, kind))
    return params


def parse_module(text: str) -> Module:
    """Parse a complete module from its textual form."""
    lines = [ln.rstrip() for ln in text.splitlines()]
    module: Optional[Module] = None
    func: Optional[Function] = None
    block: Optional[BasicBlock] = None

    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith(";"):
            continue

        module_match = _MODULE_RE.match(line)
        if module_match:
            if module is not None:
                raise IRParseError(f"line {lineno}: duplicate module declaration")
            module = Module(module_match.group("name"))
            continue

        if module is None:
            raise IRParseError(f"line {lineno}: expected module declaration first")

        func_match = _FUNC_RE.match(line)
        if func_match:
            if func is not None:
                raise IRParseError(f"line {lineno}: nested function definition")
            func = Function(func_match.group("name"),
                            params=_parse_params(func_match.group("params")))
            block = None
            continue

        if line == "}":
            if func is None:
                raise IRParseError(f"line {lineno}: unexpected '}}'")
            module.add_function(func)
            func = None
            block = None
            continue

        if func is None:
            raise IRParseError(f"line {lineno}: statement outside function: {line!r}")

        shared_match = _SHARED_RE.match(line)
        if shared_match:
            func.shared.append(SharedDecl(shared_match.group("name"),
                                          int(shared_match.group("size")),
                                          shared_match.group("dtype")))
            continue

        label_match = _LABEL_RE.match(line)
        if label_match and not is_known_opcode(label_match.group("label")):
            block = func.add_block(BasicBlock(label_match.group("label")))
            continue

        if block is None:
            raise IRParseError(f"line {lineno}: instruction before any block label: {line!r}")
        try:
            block.append(parse_instruction(line))
        except IRParseError as exc:
            raise IRParseError(f"line {lineno}: {exc}") from exc

    if func is not None:
        raise IRParseError("unterminated function definition (missing '}')")
    if module is None:
        raise IRParseError("no module declaration found")
    return module


def parse_function(text: str, module_name: str = "parsed") -> Tuple[Module, Function]:
    """Parse text containing a single function, wrapping it in a module."""
    if not text.lstrip().startswith("module"):
        text = f'module "{module_name}"\n' + text
    module = parse_module(text)
    names = module.function_order()
    if len(names) != 1:
        raise IRParseError(f"expected exactly one function, found {len(names)}")
    return module, module.functions[names[0]]
