"""Mini-IR: a register-based GPU kernel intermediate representation.

This package plays the role LLVM-IR plays in the paper: the representation
GEVO's mutation and crossover operators act on.  See DESIGN.md for the
SSA-vs-register-machine substitution rationale.

Public surface:

* values: :class:`Reg`, :class:`Const`
* instructions: :class:`Instruction`, :class:`SourceLoc`
* containers: :class:`Module`, :class:`Function`, :class:`BasicBlock`,
  :class:`Param`, :class:`SharedDecl`
* authoring: :class:`KernelBuilder`, :func:`build_module`
* text form: :func:`format_module`, :func:`parse_module`
* checking: :func:`verify_module`, :class:`VerificationReport`
* analysis: :func:`build_cfg`, :func:`immediate_postdominators`,
  :func:`collect_operand_pool`
"""

from .analysis import (
    build_cfg,
    collect_constants,
    collect_operand_pool,
    collect_registers,
    immediate_postdominators,
    reachable_blocks,
    static_instruction_mix,
)
from .builder import KernelBuilder, build_module
from .function import BasicBlock, Function, Module, Param, SharedDecl
from .instructions import Instruction, SourceLoc, reset_uid_namespace
from .opcodes import all_opcodes, is_known_opcode, opcode_info
from .parser import parse_function, parse_module
from .printer import format_function, format_instruction, format_module
from .values import Const, Reg, as_value
from .verifier import VerificationReport, verify_function, verify_module

__all__ = [
    "BasicBlock",
    "Const",
    "Function",
    "Instruction",
    "KernelBuilder",
    "Module",
    "Param",
    "Reg",
    "SharedDecl",
    "SourceLoc",
    "VerificationReport",
    "all_opcodes",
    "as_value",
    "build_cfg",
    "build_module",
    "collect_constants",
    "collect_operand_pool",
    "collect_registers",
    "format_function",
    "format_instruction",
    "format_module",
    "immediate_postdominators",
    "is_known_opcode",
    "opcode_info",
    "parse_function",
    "parse_module",
    "reachable_blocks",
    "reset_uid_namespace",
    "static_instruction_mix",
    "verify_function",
    "verify_module",
]
