"""Fluent builder for authoring mini-IR kernels in Python.

The builder keeps a *current block* into which emitted instructions are
appended, allocates fresh virtual-register names, tracks an optional
current source line (so every emitted instruction carries a
:class:`~repro.ir.instructions.SourceLoc`, mirroring the debug-info
instrumentation the paper adds to Clang), and offers structured-control
helpers (``for_range``, ``if_then``, ``if_then_else``) that lower to
explicit basic blocks and branches.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence

from ..errors import IRError
from .function import BasicBlock, Function, Module, Param, SharedDecl
from .instructions import Instruction, SourceLoc
from .values import Const, Reg, Value, as_value


class KernelBuilder:
    """Build one :class:`~repro.ir.function.Function` incrementally."""

    def __init__(
        self,
        name: str,
        params: Sequence[Param] = (),
        shared: Sequence[SharedDecl] = (),
        source_file: Optional[str] = None,
    ):
        self.function = Function(name, params=list(params), shared=list(shared))
        self.source_file = source_file or f"{name}.cu"
        self._current: Optional[BasicBlock] = None
        self._line: Optional[int] = None
        self._tmp_counter = 0
        self._label_counter = 0
        self._last_emitted: Optional[Instruction] = None

    # -- low-level plumbing ------------------------------------------------------
    def block(self, label: str) -> BasicBlock:
        """Create a new block and make it current."""
        blk = self.function.add_block(BasicBlock(label))
        self._current = blk
        return blk

    def switch_to(self, label: str) -> BasicBlock:
        """Make an existing block current."""
        self._current = self.function.get_block(label)
        return self._current

    @property
    def current_block(self) -> BasicBlock:
        if self._current is None:
            raise IRError("no current block; call block() first")
        return self._current

    def fresh_label(self, hint: str = "bb") -> str:
        self._label_counter += 1
        return f"{hint}.{self._label_counter}"

    def fresh_reg(self, hint: str = "t") -> str:
        self._tmp_counter += 1
        return f"{hint}{self._tmp_counter}"

    def loc(self, line: int) -> None:
        """Set the source line attached to subsequently emitted instructions."""
        self._line = line

    def _source_loc(self) -> Optional[SourceLoc]:
        if self._line is None:
            return None
        return SourceLoc(self.source_file, self._line)

    def const(self, value) -> Const:
        return Const(value)

    def reg(self, name: str) -> Reg:
        return Reg(name)

    # -- generic emission -----------------------------------------------------------
    def emit(self, opcode: str, *operands, dest: Optional[str] = None, **attrs) -> Optional[Reg]:
        """Emit an instruction into the current block.

        Returns the destination :class:`Reg` when the opcode produces one.
        When ``dest`` is omitted a fresh temporary name is allocated.
        """
        from .opcodes import opcode_info

        info = opcode_info(opcode)
        if info.has_dest and dest is None:
            dest = self.fresh_reg()
        inst = Instruction(
            opcode,
            dest=dest,
            operands=[as_value(op) for op in operands],
            attrs=attrs,
            loc=self._source_loc(),
        )
        self.current_block.append(inst)
        self._last_emitted = inst
        return Reg(dest) if dest is not None else None

    @property
    def last_emitted(self) -> Optional[Instruction]:
        """The most recently emitted instruction (useful for recording edit targets)."""
        return self._last_emitted

    # -- arithmetic -------------------------------------------------------------------
    def add(self, a, b, dest=None) -> Reg:
        return self.emit("add", a, b, dest=dest)

    def sub(self, a, b, dest=None) -> Reg:
        return self.emit("sub", a, b, dest=dest)

    def mul(self, a, b, dest=None) -> Reg:
        return self.emit("mul", a, b, dest=dest)

    def div(self, a, b, dest=None) -> Reg:
        return self.emit("div", a, b, dest=dest)

    def rem(self, a, b, dest=None) -> Reg:
        return self.emit("rem", a, b, dest=dest)

    def min(self, a, b, dest=None) -> Reg:
        return self.emit("min", a, b, dest=dest)

    def max(self, a, b, dest=None) -> Reg:
        return self.emit("max", a, b, dest=dest)

    def and_(self, a, b, dest=None) -> Reg:
        return self.emit("and", a, b, dest=dest)

    def or_(self, a, b, dest=None) -> Reg:
        return self.emit("or", a, b, dest=dest)

    def xor(self, a, b, dest=None) -> Reg:
        return self.emit("xor", a, b, dest=dest)

    def shl(self, a, b, dest=None) -> Reg:
        return self.emit("shl", a, b, dest=dest)

    def shr(self, a, b, dest=None) -> Reg:
        return self.emit("shr", a, b, dest=dest)

    def neg(self, a, dest=None) -> Reg:
        return self.emit("neg", a, dest=dest)

    def not_(self, a, dest=None) -> Reg:
        return self.emit("not", a, dest=dest)

    def abs(self, a, dest=None) -> Reg:
        return self.emit("abs", a, dest=dest)

    def mov(self, a, dest=None) -> Reg:
        return self.emit("mov", a, dest=dest)

    def select(self, cond, a, b, dest=None) -> Reg:
        return self.emit("select", cond, a, b, dest=dest)

    def fma(self, a, b, c, dest=None) -> Reg:
        return self.emit("fma", a, b, c, dest=dest)

    # -- comparisons ----------------------------------------------------------------
    def eq(self, a, b, dest=None) -> Reg:
        return self.emit("cmp.eq", a, b, dest=dest)

    def ne(self, a, b, dest=None) -> Reg:
        return self.emit("cmp.ne", a, b, dest=dest)

    def lt(self, a, b, dest=None) -> Reg:
        return self.emit("cmp.lt", a, b, dest=dest)

    def le(self, a, b, dest=None) -> Reg:
        return self.emit("cmp.le", a, b, dest=dest)

    def gt(self, a, b, dest=None) -> Reg:
        return self.emit("cmp.gt", a, b, dest=dest)

    def ge(self, a, b, dest=None) -> Reg:
        return self.emit("cmp.ge", a, b, dest=dest)

    # -- memory ---------------------------------------------------------------------
    def load(self, base, index, dest=None) -> Reg:
        return self.emit("load", base, index, dest=dest)

    def store(self, base, index, value) -> None:
        self.emit("store", base, index, value)

    def memset(self, base, index, value) -> None:
        self.emit("memset", base, index, value)

    def atomic_add(self, base, index, value, dest=None) -> Reg:
        return self.emit("atomic.add", base, index, value, dest=dest)

    def atomic_max(self, base, index, value, dest=None) -> Reg:
        return self.emit("atomic.max", base, index, value, dest=dest)

    def atomic_exch(self, base, index, value, dest=None) -> Reg:
        return self.emit("atomic.exch", base, index, value, dest=dest)

    def atomic_cas(self, base, index, compare, value, dest=None) -> Reg:
        return self.emit("atomic.cas", base, index, compare, value, dest=dest)

    # -- thread identity / warp intrinsics --------------------------------------------
    def tid_x(self, dest=None) -> Reg:
        return self.emit("tid.x", dest=dest)

    def tid_y(self, dest=None) -> Reg:
        return self.emit("tid.y", dest=dest)

    def bid_x(self, dest=None) -> Reg:
        return self.emit("bid.x", dest=dest)

    def bid_y(self, dest=None) -> Reg:
        return self.emit("bid.y", dest=dest)

    def bdim_x(self, dest=None) -> Reg:
        return self.emit("bdim.x", dest=dest)

    def bdim_y(self, dest=None) -> Reg:
        return self.emit("bdim.y", dest=dest)

    def gdim_x(self, dest=None) -> Reg:
        return self.emit("gdim.x", dest=dest)

    def gdim_y(self, dest=None) -> Reg:
        return self.emit("gdim.y", dest=dest)

    def laneid(self, dest=None) -> Reg:
        return self.emit("laneid", dest=dest)

    def warpid(self, dest=None) -> Reg:
        return self.emit("warpid", dest=dest)

    def syncthreads(self) -> None:
        self.emit("syncthreads")

    def syncwarp(self, mask) -> None:
        self.emit("syncwarp", mask)

    def activemask(self, dest=None) -> Reg:
        return self.emit("activemask", dest=dest)

    def ballot_sync(self, mask, predicate, dest=None) -> Reg:
        return self.emit("ballot.sync", mask, predicate, dest=dest)

    def shfl_sync(self, mask, value, src_lane, dest=None) -> Reg:
        return self.emit("shfl.sync", mask, value, src_lane, dest=dest)

    def shfl_up_sync(self, mask, value, delta, dest=None) -> Reg:
        return self.emit("shfl.up.sync", mask, value, delta, dest=dest)

    def shfl_down_sync(self, mask, value, delta, dest=None) -> Reg:
        return self.emit("shfl.down.sync", mask, value, delta, dest=dest)

    def rand_uniform(self, seed, step, salt, dest=None) -> Reg:
        return self.emit("rand.uniform", seed, step, salt, dest=dest)

    # -- control flow --------------------------------------------------------------------
    def branch(self, target: str) -> None:
        self.emit("br", target=target)

    def cbranch(self, cond, true_target: str, false_target: str) -> None:
        self.emit("condbr", cond, true_target=true_target, false_target=false_target)

    def ret(self) -> None:
        self.emit("ret")

    # -- structured-control helpers --------------------------------------------------------
    @contextlib.contextmanager
    def for_range(self, var: str, start, stop, step=1) -> Iterator[Reg]:
        """Emit a counted loop; the body is authored inside the ``with`` block.

        Lowers to ``header`` / ``body`` / ``exit`` blocks with the induction
        variable ``var``.  After the ``with`` block exits, the builder's
        current block is the loop exit.
        """
        header = self.fresh_label(f"{var}.header")
        body = self.fresh_label(f"{var}.body")
        exit_label = self.fresh_label(f"{var}.exit")
        self.mov(start, dest=var)
        self.branch(header)
        self.block(header)
        cond = self.lt(Reg(var), stop)
        self.cbranch(cond, body, exit_label)
        self.block(body)
        try:
            yield Reg(var)
        finally:
            self.add(Reg(var), step, dest=var)
            self.branch(header)
            self.block(exit_label)

    @contextlib.contextmanager
    def if_then(self, cond) -> Iterator[Instruction]:
        """Emit an if-without-else region; the body goes inside the ``with``.

        Yields the ``condbr`` instruction so callers can record its uid as a
        mutation / edit target.
        """
        then_label = self.fresh_label("then")
        merge_label = self.fresh_label("endif")
        self.cbranch(cond, then_label, merge_label)
        branch_instruction = self._last_emitted
        self.block(then_label)
        try:
            yield branch_instruction
        finally:
            if self.current_block.terminator is None:
                self.branch(merge_label)
            self.block(merge_label)

    def if_then_else(self, cond):
        """Emit an if/else region.

        Returns ``(then_cm, else_cm)`` -- two context managers that must be
        entered in that order::

            then_cm, else_cm = b.if_then_else(cond)
            with then_cm:
                ...
            with else_cm:
                ...
        """
        then_label = self.fresh_label("then")
        else_label = self.fresh_label("else")
        merge_label = self.fresh_label("endif")
        self.cbranch(cond, then_label, else_label)
        builder = self

        @contextlib.contextmanager
        def then_cm():
            builder.block(then_label)
            try:
                yield
            finally:
                if builder.current_block.terminator is None:
                    builder.branch(merge_label)

        @contextlib.contextmanager
        def else_cm():
            builder.block(else_label)
            try:
                yield
            finally:
                if builder.current_block.terminator is None:
                    builder.branch(merge_label)
                builder.block(merge_label)

        return then_cm(), else_cm()

    # -- finalisation -------------------------------------------------------------------------
    def build(self) -> Function:
        """Return the finished function.

        Any block missing a terminator receives an implicit ``ret``; this
        keeps hand-written kernels concise while guaranteeing the verifier's
        structural invariants.
        """
        for label in self.function.block_order():
            block = self.function.blocks[label]
            if block.terminator is None:
                block.append(Instruction("ret", loc=self._source_loc()))
        return self.function


def build_module(name: str, *functions: Function) -> Module:
    """Assemble a module from already-built functions."""
    module = Module(name)
    for func in functions:
        module.add_function(func)
    return module
