"""Textual rendering of mini-IR modules.

The format is line oriented and round-trips through
:mod:`repro.ir.parser`.  Example::

    module "demo"

    func axpy(x: buffer, y: buffer, n: scalar) {
      shared tile[32]: float
      entry:
        %tid = tid.x !loc axpy.cu:3
        %inb = cmp.lt %tid, %n
        condbr %inb, body, done
      body:
        %v = load %x, %tid
        %w = mul %v, 2
        store %y, %tid, %w
        br done
      done:
        ret
    }
"""

from __future__ import annotations

from typing import List

from .function import Function, Module
from .instructions import Instruction
from .values import Const, Reg


def format_operand(op) -> str:
    """Render one operand in the textual syntax."""
    if isinstance(op, Reg):
        return f"%{op.name}"
    if isinstance(op, Const):
        if isinstance(op.value, bool):
            return "true" if op.value else "false"
        return repr(op.value)
    raise TypeError(f"not an operand: {op!r}")


def format_instruction(inst: Instruction) -> str:
    """Render one instruction (without indentation)."""
    pieces: List[str] = []
    if inst.dest is not None:
        pieces.append(f"%{inst.dest} = {inst.opcode}")
    else:
        pieces.append(inst.opcode)
    operand_text = ", ".join(format_operand(op) for op in inst.operands)
    if inst.opcode == "br":
        operand_text = inst.attrs["target"]
    elif inst.opcode == "condbr":
        operand_text = f"{operand_text}, {inst.attrs['true_target']}, {inst.attrs['false_target']}"
    if operand_text:
        pieces.append(operand_text)
    text = " ".join(pieces)
    if inst.loc is not None:
        text += f" !loc {inst.loc.file}:{inst.loc.line}"
    return text


def format_function(func: Function) -> str:
    """Render one function."""
    params = ", ".join(f"{p.name}: {p.kind}" for p in func.params)
    lines = [f"func {func.name}({params}) {{"]
    for decl in func.shared:
        lines.append(f"  shared {decl.name}[{decl.size}]: {decl.dtype}")
    for label in func.block_order():
        lines.append(f"  {label}:")
        for inst in func.blocks[label]:
            lines.append(f"    {format_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    """Render a whole module."""
    parts = [f'module "{module.name}"', ""]
    for name in module.function_order():
        parts.append(format_function(module.functions[name]))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
