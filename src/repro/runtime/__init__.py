"""The parallel evaluation runtime.

This package is the architectural seam between "what to evaluate" (search
and analysis algorithms) and "how to evaluate it" (serially, across a
process pool, against a persistent cache).  Typical usage::

    from repro.runtime import EvaluationEngine, FitnessCache, make_executor

    engine = EvaluationEngine(adapter,
                              executor=make_executor(jobs=4),
                              cache=FitnessCache("fitness-cache.json"))
    results = engine.evaluate_many([ind.edits for ind in population])
    ...
    engine.close()   # flush the cache, stop the workers

See :mod:`repro.runtime.engine` (executors + batch API),
:mod:`repro.runtime.cache` (content-addressed fitness cache) and
:mod:`repro.runtime.checkpoint` (search checkpoint/resume).
"""

from .cache import (
    CacheKey,
    CacheStats,
    FitnessCache,
    canonical_edit_hash,
    canonical_edit_key,
    result_from_dict,
    result_to_dict,
)
from .checkpoint import (
    SearchCheckpoint,
    deserialize_individual,
    serialize_individual,
)
from .engine import (
    EngineStats,
    EvaluationEngine,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    make_executor,
)

__all__ = [
    "CacheKey",
    "CacheStats",
    "EngineStats",
    "EvaluationEngine",
    "Executor",
    "FitnessCache",
    "ParallelExecutor",
    "SearchCheckpoint",
    "SerialExecutor",
    "canonical_edit_hash",
    "canonical_edit_key",
    "default_jobs",
    "deserialize_individual",
    "make_executor",
    "result_from_dict",
    "result_to_dict",
    "serialize_individual",
]
