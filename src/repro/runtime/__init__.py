"""The parallel evaluation runtime.

This package is the architectural seam between "what to evaluate" (search
and analysis algorithms) and "how to evaluate it" (serially, across a
process pool, against a persistent cache).  Typical usage::

    from repro.runtime import EvaluationEngine, FitnessCache, make_executor

    engine = EvaluationEngine(adapter,
                              executor=make_executor(jobs=4),
                              cache=FitnessCache("fitness-cache.sqlite"))
    results = engine.evaluate_many([ind.edits for ind in population])
    ...
    engine.close()   # flush the cache, stop the workers

See :mod:`repro.runtime.engine` (executors + batch API),
:mod:`repro.runtime.executors` (the async in-process and hash-sharded
backends), :mod:`repro.runtime.cache` (content-addressed fitness cache
and the pluggable :class:`CacheStore` backends -- whole-document JSON,
incremental WAL-mode SQLite in :mod:`repro.runtime.sqlite_store`, or a
directory of hash-partitioned SQLite shards in
:mod:`repro.runtime.sharded_store`), :mod:`repro.runtime.checkpoint`
(the :class:`CheckpointableSearch` protocol behind checkpoint/resume for
GEVO and both baselines) and :mod:`repro.runtime.sweep` (the
multi-architecture sweep orchestrator behind ``repro sweep``).
A fuller guide lives in ``docs/runtime.md``.
"""

from .cache import (
    CacheKey,
    CacheStats,
    CacheStore,
    FitnessCache,
    JsonCacheStore,
    canonical_edit_hash,
    canonical_edit_key,
    make_cache_store,
    result_from_dict,
    result_to_dict,
    shard_index,
)
from .checkpoint import (
    CheckpointableSearch,
    SearchCheckpoint,
    deserialize_history,
    deserialize_individual,
    resolve_checkpoint,
    serialize_history,
    serialize_individual,
)
from .engine import (
    EngineStats,
    EvaluationEngine,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    make_executor,
)
from .executors import AsyncExecutor, ShardedExecutor
from .sharded_store import ShardedCacheStore
from .sqlite_store import SqliteCacheStore
from .sweep import (
    LegOutcome,
    SweepLeg,
    SweepReport,
    SweepSpec,
    make_adapter,
    run_sweep,
)

__all__ = [
    "AsyncExecutor",
    "CacheKey",
    "CacheStats",
    "CacheStore",
    "CheckpointableSearch",
    "EngineStats",
    "EvaluationEngine",
    "Executor",
    "FitnessCache",
    "JsonCacheStore",
    "LegOutcome",
    "ParallelExecutor",
    "SearchCheckpoint",
    "SerialExecutor",
    "ShardedCacheStore",
    "ShardedExecutor",
    "SqliteCacheStore",
    "SweepLeg",
    "SweepReport",
    "SweepSpec",
    "canonical_edit_hash",
    "canonical_edit_key",
    "default_jobs",
    "deserialize_history",
    "deserialize_individual",
    "make_adapter",
    "make_cache_store",
    "make_executor",
    "resolve_checkpoint",
    "result_from_dict",
    "result_to_dict",
    "run_sweep",
    "serialize_history",
    "serialize_individual",
    "shard_index",
]
