"""The parallel evaluation runtime.

This package is the architectural seam between "what to evaluate" (search
and analysis algorithms) and "how to evaluate it" (serially, across a
process pool, against a persistent cache).  Typical usage::

    from repro.runtime import EvaluationEngine, FitnessCache, make_executor

    engine = EvaluationEngine(adapter,
                              executor=make_executor(jobs=4),
                              cache=FitnessCache("fitness-cache.sqlite"))
    results = engine.evaluate_many([ind.edits for ind in population])
    ...
    engine.close()   # flush the cache, stop the workers

See :mod:`repro.runtime.engine` (executors + batch API),
:mod:`repro.runtime.cache` (content-addressed fitness cache and the
pluggable :class:`CacheStore` backends -- whole-document JSON or
incremental WAL-mode SQLite, see :mod:`repro.runtime.sqlite_store`) and
:mod:`repro.runtime.checkpoint` (the :class:`CheckpointableSearch`
protocol behind checkpoint/resume for GEVO and both baselines).
"""

from .cache import (
    CacheKey,
    CacheStats,
    CacheStore,
    FitnessCache,
    JsonCacheStore,
    canonical_edit_hash,
    canonical_edit_key,
    make_cache_store,
    result_from_dict,
    result_to_dict,
)
from .checkpoint import (
    CheckpointableSearch,
    SearchCheckpoint,
    deserialize_history,
    deserialize_individual,
    resolve_checkpoint,
    serialize_history,
    serialize_individual,
)
from .engine import (
    EngineStats,
    EvaluationEngine,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    make_executor,
)
from .sqlite_store import SqliteCacheStore

__all__ = [
    "CacheKey",
    "CacheStats",
    "CacheStore",
    "CheckpointableSearch",
    "EngineStats",
    "EvaluationEngine",
    "Executor",
    "FitnessCache",
    "JsonCacheStore",
    "ParallelExecutor",
    "SearchCheckpoint",
    "SerialExecutor",
    "SqliteCacheStore",
    "canonical_edit_hash",
    "canonical_edit_key",
    "default_jobs",
    "deserialize_history",
    "deserialize_individual",
    "make_cache_store",
    "make_executor",
    "resolve_checkpoint",
    "result_from_dict",
    "result_to_dict",
    "serialize_history",
    "serialize_individual",
]
