"""The parallel evaluation runtime.

This package is the architectural seam between "what to evaluate" (search
and analysis algorithms) and "how to evaluate it" (serially, across a
process pool, against a persistent cache).  Typical usage::

    from repro.runtime import EvaluationEngine, FitnessCache, make_executor

    engine = EvaluationEngine(adapter,
                              executor=make_executor(jobs=4),
                              cache=FitnessCache("fitness-cache.sqlite"))
    results = engine.evaluate_many([ind.edits for ind in population])
    ...
    engine.close()   # flush the cache, stop the workers

See :mod:`repro.runtime.engine` (executors + batch API),
:mod:`repro.runtime.executors` (the async in-process and hash-sharded
backends), :mod:`repro.runtime.cache` (content-addressed fitness cache
and the pluggable :class:`CacheStore` backends -- whole-document JSON,
incremental WAL-mode SQLite in :mod:`repro.runtime.sqlite_store`, or a
directory of hash-partitioned SQLite shards in
:mod:`repro.runtime.sharded_store`), :mod:`repro.runtime.checkpoint`
(the :class:`CheckpointableSearch` protocol behind checkpoint/resume for
GEVO and both baselines) and :mod:`repro.runtime.sweep` (the
multi-architecture sweep orchestrator behind ``repro sweep``).
Observability lives in :mod:`repro.runtime.telemetry` (the run-scoped
:class:`Telemetry` handle: structured event log + metrics registry,
a true no-op when disabled), :mod:`repro.runtime.trace_format` (the
JSONL schema, deterministic multi-process merge and trace summaries)
and :mod:`repro.runtime.console` (the logging-based console reporter
that renders telemetry events).  A fuller guide lives in
``docs/runtime.md`` and ``docs/observability.md``.
"""

from .cache import (
    CacheKey,
    CacheStats,
    CacheStore,
    FitnessCache,
    JsonCacheStore,
    canonical_edit_hash,
    canonical_edit_key,
    make_cache_store,
    result_from_dict,
    result_to_dict,
    shard_index,
)
from .checkpoint import (
    CheckpointableSearch,
    EvaluationLedger,
    SearchCheckpoint,
    deserialize_history,
    deserialize_individual,
    resolve_checkpoint,
    serialize_history,
    serialize_individual,
)
from .faultpoints import SimulatedCrash, kill_point
from .engine import (
    EngineStats,
    EvaluationEngine,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    make_executor,
)
from .console import ConsoleReporter, configure_console, console_logger
from .executors import AsyncExecutor, ShardedExecutor
from .sharded_store import ShardedCacheStore
from .sqlite_store import SqliteCacheStore
from .sweep import (
    LegOutcome,
    SweepLeg,
    SweepReport,
    SweepSpec,
    make_adapter,
    run_sweep,
)
from .telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    Telemetry,
    emit_module_hotspots,
    new_run_id,
    telemetry_of,
)
from .trace_format import (
    TraceEvent,
    TraceSummary,
    load_metrics,
    load_trace,
    merge_events,
    merge_trace_dir,
    read_events,
    summarize_trace,
)

__all__ = [
    "AsyncExecutor",
    "CacheKey",
    "CacheStats",
    "CacheStore",
    "CheckpointableSearch",
    "ConsoleReporter",
    "EngineStats",
    "EvaluationEngine",
    "EvaluationLedger",
    "Executor",
    "FitnessCache",
    "JsonCacheStore",
    "LegOutcome",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "ParallelExecutor",
    "SearchCheckpoint",
    "SerialExecutor",
    "ShardedCacheStore",
    "SimulatedCrash",
    "ShardedExecutor",
    "SqliteCacheStore",
    "SweepLeg",
    "SweepReport",
    "SweepSpec",
    "Telemetry",
    "TraceEvent",
    "TraceSummary",
    "canonical_edit_hash",
    "canonical_edit_key",
    "configure_console",
    "console_logger",
    "default_jobs",
    "deserialize_history",
    "deserialize_individual",
    "emit_module_hotspots",
    "kill_point",
    "load_metrics",
    "load_trace",
    "make_adapter",
    "make_cache_store",
    "make_executor",
    "merge_events",
    "merge_trace_dir",
    "new_run_id",
    "read_events",
    "resolve_checkpoint",
    "result_from_dict",
    "result_to_dict",
    "run_sweep",
    "serialize_history",
    "serialize_individual",
    "shard_index",
    "summarize_trace",
    "telemetry_of",
]
