"""The on-disk trace format: JSONL events, deterministic merge, summaries.

A *trace directory* is the run-scoped record a
:class:`~repro.runtime.telemetry.Telemetry` handle writes:

* ``events-<emitter>.jsonl`` -- one stream per emitter (the main process
  plus one per pool worker), each line one event record, appended in
  emission order;
* ``events.jsonl`` -- the merged stream, produced on close (or lazily by
  the readers here): every per-emitter part folded into one
  deterministic total order;
* ``metrics.json`` -- the final snapshot of the run's metrics registry
  (counters / gauges / histograms), tagged with the run id.

Every event record carries::

    {"v": 1,                  # TRACE_FORMAT_VERSION
     "run": "<run id>",       # one id per Telemetry run
     "emitter": "main",       # process/worker identity of the writer
     "seq": 17,               # per-emitter sequence number, from 1
     "kind": "event",         # "event" (point) or "span"
     "name": "engine.batch",  # dotted event name
     "t": 12345.678,          # monotonic-clock timestamp (span: start)
     "dur": 0.042,            # spans only: seconds
     "fields": {...}}         # JSON-serialisable payload

Merging is **deterministic under interleaving**: the total order is
``(t, emitter, seq)``, so however the per-emitter streams were cut into
files (or in which order the files are read), the merged log is
byte-for-byte identical.  Within one emitter ``t`` is monotone with
``seq`` (one clock, sequential emission), so per-emitter order is always
preserved.  The property test in ``tests/runtime/test_telemetry.py``
pins this down; the future service arc streams exactly these records to
clients, ordering concurrent workers the same way.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .cache import atomic_write_text

#: Bump when a record's required keys or their meaning change.
TRACE_FORMAT_VERSION = 1

#: File names inside a trace directory.
MERGED_EVENTS_FILE = "events.jsonl"
EVENT_PART_PREFIX = "events-"
METRICS_FILE = "metrics.json"

__all__ = [
    "TRACE_FORMAT_VERSION",
    "MERGED_EVENTS_FILE",
    "EVENT_PART_PREFIX",
    "METRICS_FILE",
    "TraceEvent",
    "event_to_dict",
    "event_from_dict",
    "format_event_line",
    "parse_event_line",
    "read_events",
    "merge_events",
    "merge_trace_dir",
    "load_trace",
    "load_metrics",
    "summarize_trace",
    "TraceSummary",
]


@dataclass(frozen=True)
class TraceEvent:
    """One record of the event log (a point event or a completed span)."""

    run_id: str
    emitter: str
    seq: int
    kind: str           # "event" | "span"
    name: str
    t: float            # monotonic timestamp (span start for spans)
    dur: Optional[float] = None   # spans only
    fields: Dict[str, object] = field(default_factory=dict, hash=False)

    @property
    def sort_key(self) -> Tuple[float, str, int]:
        """The deterministic merge order: time, then emitter, then seq."""
        return (self.t, self.emitter, self.seq)

    @property
    def end(self) -> float:
        return self.t + (self.dur or 0.0)


def event_to_dict(event: TraceEvent) -> Dict[str, object]:
    record: Dict[str, object] = {
        "v": TRACE_FORMAT_VERSION,
        "run": event.run_id,
        "emitter": event.emitter,
        "seq": event.seq,
        "kind": event.kind,
        "name": event.name,
        "t": event.t,
    }
    if event.dur is not None:
        record["dur"] = event.dur
    if event.fields:
        record["fields"] = event.fields
    return record


def event_from_dict(record: Dict[str, object]) -> TraceEvent:
    """Parse one record dict; raises ``ValueError`` on schema violations."""
    if not isinstance(record, dict):
        raise ValueError(f"event record must be an object, got {type(record).__name__}")
    if record.get("v") != TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {record.get('v')!r}")
    kind = record.get("kind")
    if kind not in ("event", "span"):
        raise ValueError(f"unknown event kind {kind!r}")
    if not isinstance(record.get("name"), str) or not record["name"]:
        raise ValueError(f"event name must be a non-empty string, "
                         f"got {record.get('name')!r}")
    try:
        return TraceEvent(
            run_id=str(record["run"]),
            emitter=str(record["emitter"]),
            seq=int(record["seq"]),
            kind=str(kind),
            name=str(record["name"]),
            t=float(record["t"]),
            dur=float(record["dur"]) if record.get("dur") is not None else None,
            fields=dict(record.get("fields", {})),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed event record: {exc}") from exc


def format_event_line(event: TraceEvent) -> str:
    """One compact JSONL line (no newline) for *event*."""
    return json.dumps(event_to_dict(event), sort_keys=True,
                      separators=(",", ":"))


def parse_event_line(line: str) -> TraceEvent:
    return event_from_dict(json.loads(line))


def read_events(path: str) -> List[TraceEvent]:
    """Events of one JSONL stream, in file order.

    Tolerant of a torn tail: a worker killed mid-write leaves at most one
    truncated last line, which is skipped rather than poisoning the whole
    stream (the preceding lines were flushed per event).
    """
    events: List[TraceEvent] = []
    if not os.path.exists(path):
        return events
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(parse_event_line(line))
            except (ValueError, KeyError):
                continue
    return events


def merge_events(streams: Iterable[Sequence[TraceEvent]]) -> List[TraceEvent]:
    """Fold per-emitter streams into one deterministic total order.

    The result is independent of how the events were partitioned into
    *streams* and of the iteration order of *streams*: duplicates (the
    same ``(run, emitter, seq)`` read from both a part file and an
    earlier merge) collapse to one record, and the order is
    ``(t, emitter, seq)``.
    """
    seen: Dict[Tuple[str, str, int], TraceEvent] = {}
    for stream in streams:
        for event in stream:
            seen.setdefault((event.run_id, event.emitter, event.seq), event)
    return sorted(seen.values(), key=lambda event: event.sort_key)


def _part_paths(trace_dir: str) -> List[str]:
    if not os.path.isdir(trace_dir):
        return []
    return sorted(
        os.path.join(trace_dir, name)
        for name in os.listdir(trace_dir)
        if name.startswith(EVENT_PART_PREFIX) and name.endswith(".jsonl"))


def merge_trace_dir(trace_dir: str, *, remove_parts: bool = True) -> str:
    """Merge every per-emitter part (plus any prior merge) into
    ``events.jsonl``; returns the merged file's path.

    Idempotent: re-merging an already merged directory is a no-op, and a
    directory holding both a previous merge and fresh parts folds them
    together without duplicating records.
    """
    merged_path = os.path.join(trace_dir, MERGED_EVENTS_FILE)
    parts = _part_paths(trace_dir)
    streams = [read_events(merged_path)] + [read_events(path) for path in parts]
    merged = merge_events(streams)
    atomic_write_text(
        merged_path,
        "".join(format_event_line(event) + "\n" for event in merged))
    if remove_parts:
        for path in parts:
            try:
                os.unlink(path)
            except OSError:
                pass
    return merged_path


def load_trace(trace_dir: str) -> List[TraceEvent]:
    """All events of a trace directory, merged (without rewriting files)."""
    merged_path = os.path.join(trace_dir, MERGED_EVENTS_FILE)
    streams = [read_events(merged_path)]
    streams.extend(read_events(path) for path in _part_paths(trace_dir))
    return merge_events(streams)


def load_metrics(trace_dir: str) -> Optional[Dict[str, object]]:
    """The ``metrics.json`` document of a trace directory, or ``None``."""
    path = os.path.join(trace_dir, METRICS_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


# -- summaries ------------------------------------------------------------------------

@dataclass
class PhaseStat:
    """Aggregated timing of one span name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Digest of one trace directory, renderable as a human report."""

    run_id: str
    emitters: List[str]
    event_count: int
    duration_seconds: float
    phases: List[PhaseStat]
    cache_hits: int
    cache_misses: int
    evaluations: int
    executor_busy_seconds: float
    worker_busy_seconds: float
    worker_jobs: int
    hotspots: List[Dict[str, object]]
    counters: Dict[str, float]

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def evaluations_per_second(self) -> float:
        return (self.evaluations / self.executor_busy_seconds
                if self.executor_busy_seconds > 0 else 0.0)

    @property
    def executor_utilization(self) -> float:
        """Fraction of the executor-busy window its lanes spent evaluating.

        With per-worker task spans present this is ``worker busy /
        (jobs x batch wall)``; without them (serial executor, whose lane
        is busy whenever a batch runs) it degrades to 1.0 for any run
        that executed batches.
        """
        if self.executor_busy_seconds <= 0:
            return 0.0
        if self.worker_busy_seconds <= 0:
            return 1.0
        capacity = self.executor_busy_seconds * max(1, self.worker_jobs)
        return min(1.0, self.worker_busy_seconds / capacity)

    def render(self) -> str:
        lines = [
            f"run {self.run_id or '<unknown>'}: {self.event_count} events "
            f"from {len(self.emitters)} emitter(s), "
            f"{self.duration_seconds:.2f}s",
        ]
        if self.phases:
            lines.append("")
            lines.append("phase timing:")
            width = max(len(phase.name) for phase in self.phases)
            for phase in sorted(self.phases, key=lambda p: -p.total_seconds):
                lines.append(
                    f"  {phase.name.ljust(width)}  x{phase.count:<5d} "
                    f"{phase.total_seconds:8.3f}s total  "
                    f"{phase.mean_seconds * 1e3:8.2f}ms mean")
        lookups = self.cache_hits + self.cache_misses
        lines.append("")
        lines.append(
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses"
            + (f" ({self.cache_hit_rate:.0%} hit rate)" if lookups else ""))
        lines.append(
            f"evaluations: {self.evaluations} in "
            f"{self.executor_busy_seconds:.3f}s of executor time"
            + (f" ({self.evaluations_per_second:.1f} evaluations/sec)"
               if self.executor_busy_seconds > 0 else ""))
        lines.append(f"executor utilization: {self.executor_utilization:.0%}")
        if self.hotspots:
            lines.append("")
            lines.append("hotspots (top instructions by attributed cycles):")
            for spot in self.hotspots[:10]:
                lines.append(
                    f"  {spot.get('location', '<unknown>')}  "
                    f"{spot.get('opcode', '?')}  "
                    f"{float(spot.get('cycles', 0.0)):.0f} cycles "
                    f"({int(spot.get('executions', 0))} executions)")
        return "\n".join(lines)


def _counter_value(counters: Dict[str, float], name: str) -> float:
    value = counters.get(name, 0)
    return float(value) if isinstance(value, (int, float)) else 0.0


def summarize_trace(trace_dir: str) -> TraceSummary:
    """Digest *trace_dir* (merged events + metrics snapshot) into a summary."""
    events = load_trace(trace_dir)
    metrics = load_metrics(trace_dir) or {}
    counters_raw = metrics.get("counters", {})
    counters = {name: float(value) for name, value in counters_raw.items()
                if isinstance(value, (int, float))}

    phases: Dict[str, PhaseStat] = {}
    executor_busy = 0.0
    worker_busy = 0.0
    worker_jobs = 0
    hotspots: List[Dict[str, object]] = []
    run_id = str(metrics.get("run_id", ""))
    for event in events:
        if not run_id:
            run_id = event.run_id
        if event.kind == "span":
            stat = phases.setdefault(event.name, PhaseStat(event.name))
            stat.count += 1
            stat.total_seconds += event.dur or 0.0
            if event.name == "engine.batch":
                executor_busy += event.dur or 0.0
                jobs = event.fields.get("jobs")
                if isinstance(jobs, int):
                    worker_jobs = max(worker_jobs, jobs)
            elif event.name == "worker.evaluate":
                worker_busy += event.dur or 0.0
        elif event.name == "profile.hotspots":
            spots = event.fields.get("hotspots")
            if isinstance(spots, list):
                hotspots = [spot for spot in spots if isinstance(spot, dict)]

    if events:
        start = min(event.t for event in events)
        end = max(event.end for event in events)
        duration = max(0.0, end - start)
    else:
        duration = 0.0

    return TraceSummary(
        run_id=run_id,
        emitters=sorted({event.emitter for event in events}),
        event_count=len(events),
        duration_seconds=duration,
        phases=list(phases.values()),
        cache_hits=int(_counter_value(counters, "cache.hits")),
        cache_misses=int(_counter_value(counters, "cache.misses")),
        evaluations=int(_counter_value(counters, "engine.evaluations")),
        executor_busy_seconds=executor_busy,
        worker_busy_seconds=worker_busy,
        worker_jobs=worker_jobs,
        hotspots=hotspots,
        counters=counters,
    )
