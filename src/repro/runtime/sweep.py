"""Multi-architecture sweep orchestrator.

The paper's headline experiments are *sweeps*: the same search run across
a cross-product of GPU architectures, workloads and seeds, with the
per-cell results aggregated into one table.  Before this module the repro
could only drive one search on one architecture per invocation; the
orchestrator here runs the whole grid through the existing
:class:`~repro.runtime.engine.EvaluationEngine` seam:

* the grid is a :class:`SweepSpec` -- architectures x workloads x seeds,
  one search method (GEVO or a baseline) and the per-leg search budget;
* each cell is a :class:`SweepLeg`, executed as a
  :class:`~repro.runtime.checkpoint.CheckpointableSearch` with its own
  checkpoint file under the sweep directory, so an interrupted sweep
  resumed with ``resume=True`` (CLI ``repro sweep --resume``) **skips
  finished legs entirely and restarts unfinished ones from their last
  checkpoint with zero re-evaluation** -- completed work is never
  re-simulated (leg results are persisted as they land, the checkpoint
  carries the leg's fitness-cache contents, and the shared sweep cache
  persists across processes);
* all legs share one :class:`~repro.runtime.cache.FitnessCache` (by
  default a :class:`~repro.runtime.sharded_store.ShardedCacheStore`
  under ``<sweep_dir>/cache``), so legs that differ only by seed reuse
  each other's evaluations, and concurrent sweep *processes* pointed at
  the same cache contend per-shard instead of on one WAL file;
* outcomes aggregate into a :class:`SweepReport` written as both
  ``report.json`` and ``report.csv`` keyed by (arch, workload, seed).

Layout of a sweep directory::

    <sweep_dir>/
        cache/              # shared sharded fitness cache (default)
        checkpoints/        # one checkpoint per unfinished leg
        legs/               # one result record per finished leg
        report.json         # aggregated report (rewritten per run)
        report.csv

Executor choice is per-sweep (``executor_kind``): the async in-process
executor suits the small toy populations, the process pool the heavy
ADEPT/SimCov legs; results are bit-for-bit identical either way.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SearchError
from ..gevo.config import GevoConfig
from ..gpu import get_arch
from .cache import FitnessCache, atomic_write_text
from .engine import EvaluationEngine, make_executor
from .faultpoints import kill_point
from .telemetry import NULL_TELEMETRY, Telemetry, emit_module_hotspots

#: Workloads a sweep can name, with their CLI aliases.
WORKLOAD_CHOICES = ("toy", "adept-v1", "simcov")
WORKLOAD_ALIASES = {"adept": "adept-v1"}

#: Search methods a sweep can run per leg.
METHOD_CHOICES = ("gevo", "random", "hill")


def resolve_workload(name: str) -> str:
    """Canonical workload id for *name* (resolving aliases); raises KeyError."""
    canonical = WORKLOAD_ALIASES.get(name, name)
    if canonical not in WORKLOAD_CHOICES:
        raise KeyError(f"unknown workload {name!r}; available: "
                       f"{sorted(WORKLOAD_CHOICES + tuple(WORKLOAD_ALIASES))}")
    return canonical


def make_adapter(workload: str, arch_name: str, reference_interpreter: bool = False,
                 interpreter_tier: Optional[str] = None):
    """Build the workload adapter for one (workload, arch) cell.

    The single factory the CLI and the sweep orchestrator share, so a
    sweep leg evaluates exactly what ``repro search`` would.  Workload
    modules import lazily to keep startup cheap.  ``interpreter_tier``
    pins one of the simulator's bit-for-bit-equivalent tiers
    (``oracle``/``dispatch``/``jit``); ``reference_interpreter`` is the
    older boolean spelling of the oracle tier.
    """
    arch = get_arch(arch_name)
    if interpreter_tier is not None:
        arch = arch.with_overrides(fast_path=interpreter_tier)
    elif reference_interpreter:
        arch = arch.with_overrides(fast_path=False)
    workload = resolve_workload(workload)
    if workload == "toy":
        from ..workloads import ToyWorkloadAdapter

        return ToyWorkloadAdapter(arch)
    if workload == "adept-v1":
        from ..workloads.adept import AdeptWorkloadAdapter, search_pairs

        return AdeptWorkloadAdapter("v1", arch, fitness_cases=[search_pairs()])
    from ..workloads.simcov import SimCovParams, SimCovWorkloadAdapter

    return SimCovWorkloadAdapter(arch, fitness_params=SimCovParams.quick())


# -- the grid -------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepLeg:
    """One cell of the sweep grid."""

    method: str
    workload: str
    arch: str
    seed: int

    @property
    def leg_id(self) -> str:
        """File-safe identity used for checkpoint and result filenames."""
        return f"{self.method}-{self.workload}-{self.arch}-seed{self.seed}"


@dataclass
class SweepSpec:
    """The full sweep grid plus the per-leg search budget."""

    archs: Sequence[str]
    workloads: Sequence[str]
    seeds: Sequence[int]
    method: str = "gevo"
    population: int = 12
    generations: int = 8

    def __post_init__(self):
        if self.method not in METHOD_CHOICES:
            raise ValueError(f"unknown method {self.method!r}; "
                             f"available: {sorted(METHOD_CHOICES)}")
        self.archs = tuple(get_arch(name).name for name in self.archs)
        self.workloads = tuple(resolve_workload(name) for name in self.workloads)
        self.seeds = tuple(int(seed) for seed in self.seeds)

    def legs(self) -> List[SweepLeg]:
        """Cross product in deterministic report order (workload-major)."""
        return [SweepLeg(self.method, workload, arch, seed)
                for workload in self.workloads
                for arch in self.archs
                for seed in self.seeds]

    def leg_config(self, leg: SweepLeg) -> GevoConfig:
        """The (checkpoint-validated) search configuration of one leg."""
        return GevoConfig.quick(seed=leg.seed,
                                population_size=self.population,
                                generations=self.generations)

    def to_dict(self) -> Dict[str, object]:
        return {"archs": list(self.archs), "workloads": list(self.workloads),
                "seeds": list(self.seeds), "method": self.method,
                "population": self.population, "generations": self.generations}


# -- per-leg outcomes -----------------------------------------------------------------

#: Column order of the CSV report and the printed table.
REPORT_COLUMNS = (
    "workload", "arch", "seed", "method", "status", "speedup",
    "best_runtime_ms", "baseline_runtime_ms", "best_edits", "evaluations",
    "fresh_evaluations", "cache_hits", "wall_clock_seconds",
)


@dataclass
class LegOutcome:
    """Result record of one sweep leg (one row of the report)."""

    workload: str
    arch: str
    seed: int
    method: str
    #: ``completed`` (ran to the end this invocation), ``resumed``
    #: (continued from a checkpoint, then completed) or ``skipped``
    #: (already complete before this invocation; loaded from its record).
    status: str
    speedup: float
    best_runtime_ms: float
    baseline_runtime_ms: float
    best_edits: int
    #: Total adapter evaluations the search consumed, including any from
    #: before an interruption (restored from the checkpoint).
    evaluations: int
    #: Simulations actually executed by *this* invocation for the leg --
    #: zero for every variant served from the warm cache, which is how the
    #: zero-re-evaluation resume guarantee is observable in the report.
    fresh_evaluations: int
    cache_hits: int
    wall_clock_seconds: float

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LegOutcome":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in fields})


@dataclass
class SweepReport:
    """Aggregated outcome of one sweep invocation."""

    spec: Dict[str, object]
    rows: List[LegOutcome] = field(default_factory=list)
    #: ``{"run_id": ..., "trace_dir": ...}`` when the sweep ran traced;
    #: lets a report be joined with its event log and ``metrics.json``.
    telemetry: Optional[Dict[str, object]] = None

    def totals(self) -> Dict[str, object]:
        return {
            "legs": len(self.rows),
            "completed": sum(1 for row in self.rows if row.status != "skipped"),
            "skipped": sum(1 for row in self.rows if row.status == "skipped"),
            "fresh_evaluations": sum(row.fresh_evaluations for row in self.rows),
            "evaluations": sum(row.evaluations for row in self.rows),
            "wall_clock_seconds": round(
                sum(row.wall_clock_seconds for row in self.rows), 3),
        }

    def to_dict(self) -> Dict[str, object]:
        data = {"spec": dict(self.spec), "totals": self.totals(),
                "legs": [row.to_dict() for row in self.rows]}
        if self.telemetry is not None:
            data["telemetry"] = dict(self.telemetry)
        return data

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(REPORT_COLUMNS)
        for row in self.rows:
            record = row.to_dict()
            writer.writerow([record[column] for column in REPORT_COLUMNS])
        return buffer.getvalue()

    def to_table(self) -> str:
        """Human-readable table keyed by (workload, arch, seed)."""
        headers = ("workload", "arch", "seed", "status", "speedup",
                   "evaluations", "fresh", "seconds")
        lines = [headers]
        for row in self.rows:
            lines.append((row.workload, row.arch, str(row.seed), row.status,
                          f"{row.speedup:.3f}x", str(row.evaluations),
                          str(row.fresh_evaluations),
                          f"{row.wall_clock_seconds:.1f}"))
        widths = [max(len(line[col]) for line in lines)
                  for col in range(len(headers))]
        rendered = ["  ".join(cell.ljust(width)
                              for cell, width in zip(line, widths)).rstrip()
                    for line in lines]
        rendered.insert(1, "  ".join("-" * width for width in widths))
        return "\n".join(rendered)

    def write(self, directory: str) -> Tuple[str, str]:
        """Write ``report.json`` and ``report.csv``; returns their paths."""
        json_path = os.path.join(directory, "report.json")
        csv_path = os.path.join(directory, "report.csv")
        atomic_write_text(json_path, json.dumps(self.to_dict(), indent=2) + "\n")
        atomic_write_text(csv_path, self.to_csv())
        return json_path, csv_path


# -- the orchestrator -----------------------------------------------------------------

def run_sweep(spec: SweepSpec, sweep_dir: str, *,
              resume: bool = False,
              jobs: int = 1,
              executor_kind: Optional[str] = None,
              cache_path: Optional[str] = "auto",
              cache_backend: Optional[str] = None,
              cache_shards: Optional[int] = None,
              checkpoint_every: Optional[int] = None,
              reference_interpreter: bool = False,
              interpreter_tier: Optional[str] = None,
              batch_launches: Optional[bool] = None,
              progress: Optional[Callable[[SweepLeg, LegOutcome], None]] = None,
              telemetry: Optional[Telemetry] = None,
              ) -> SweepReport:
    """Run (or resume) every leg of *spec* under *sweep_dir*.

    ``resume=False`` starts the grid fresh, discarding stale per-leg
    artifacts; ``resume=True`` loads finished legs from their result
    records (status ``skipped``, zero fresh evaluations) and continues
    unfinished legs from their checkpoints.  ``cache_path="auto"``
    selects the shared sharded cache at ``<sweep_dir>/cache``;  ``None``
    keeps the cache purely in-memory (still shared across the legs of
    this invocation).  Legs run sequentially; parallelism lives *inside*
    each leg, in the engine's executor (``jobs`` x ``executor_kind``).

    An interruption (Ctrl-C, SIGKILL) loses at most the current round of
    the current leg: every leg checkpoints each round and every finished
    leg's record is written before the next leg starts.

    With a *telemetry* handle the sweep emits one ``sweep.leg`` span per
    leg (skipped legs included) plus per-leg
    ``sweep.leg.<leg_id>.{evaluations,fresh_evaluations,cache_hits}``
    counters that match the report rows exactly, and ``report.json``
    gains a ``telemetry`` section naming the run id and trace directory.
    """
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    legs_dir = os.path.join(sweep_dir, "legs")
    checkpoints_dir = os.path.join(sweep_dir, "checkpoints")
    os.makedirs(legs_dir, exist_ok=True)
    os.makedirs(checkpoints_dir, exist_ok=True)

    if cache_path == "auto":
        cache_path = os.path.join(sweep_dir, "cache")
        if cache_backend in (None, "auto"):
            cache_backend = "sharded"
    cache = FitnessCache(cache_path, backend=cache_backend, shards=cache_shards)

    report = SweepReport(spec=spec.to_dict())
    telemetry.event("sweep.start", sweep_dir=str(sweep_dir), resume=resume,
                    legs=len(spec.legs()), **spec.to_dict())
    try:
        for leg in spec.legs():
            result_path = os.path.join(legs_dir, leg.leg_id + ".json")
            checkpoint_path = os.path.join(checkpoints_dir, leg.leg_id + ".json")

            if resume and os.path.exists(result_path):
                with open(result_path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
                # Mirror the checkpoint layer's loud config validation:
                # republishing results recorded under a different budget
                # would silently produce a report matching neither run.
                recorded = {key: record.get(key)
                            for key in ("population", "generations")}
                requested = {"population": spec.population,
                             "generations": spec.generations}
                if recorded != requested:
                    raise SearchError(
                        f"sweep leg {leg.leg_id!r} was completed with budget "
                        f"{recorded}, not the requested {requested}; re-run "
                        "with the original budget, or without --resume (or "
                        "in a fresh --sweep-dir) to start over")
                outcome = LegOutcome.from_dict(record)
                outcome.status = "skipped"
                outcome.fresh_evaluations = 0
                outcome.wall_clock_seconds = 0.0
                report.rows.append(outcome)
                telemetry.event("sweep.leg", **_leg_fields(leg, outcome))
                _record_leg_metrics(telemetry, leg, outcome)
                if progress is not None:
                    progress(leg, outcome)
                continue
            if not resume:
                for stale in (result_path, checkpoint_path):
                    if os.path.exists(stale):
                        os.unlink(stale)

            resume_from = (checkpoint_path
                           if resume and os.path.exists(checkpoint_path) else None)
            with telemetry.span("sweep.leg", leg_id=leg.leg_id) as leg_fields:
                outcome = _run_leg(spec, leg, cache,
                                   jobs=jobs, executor_kind=executor_kind,
                                   checkpoint_path=checkpoint_path,
                                   checkpoint_every=checkpoint_every,
                                   resume_from=resume_from,
                                   reference_interpreter=reference_interpreter,
                                   interpreter_tier=interpreter_tier,
                                   batch_launches=batch_launches,
                                   telemetry=telemetry)
                leg_fields.update(_leg_fields(leg, outcome))
            _record_leg_metrics(telemetry, leg, outcome)
            # Crash window: the leg's final checkpoint is on disk but its
            # result record is not -- a resumed sweep re-enters the leg,
            # which immediately finishes from the checkpoint.
            kill_point("sweep.leg.completed")
            # The record carries the budget it was produced under so a
            # later --resume with a different budget is rejected loudly.
            record = dict(outcome.to_dict(), population=spec.population,
                          generations=spec.generations)
            atomic_write_text(result_path, json.dumps(record, indent=2) + "\n")
            kill_point("sweep.leg.recorded")
            report.rows.append(outcome)
            if progress is not None:
                progress(leg, outcome)
    finally:
        cache.close()

    telemetry.event("sweep.end", **report.totals())
    if telemetry.enabled:
        report.telemetry = {"run_id": telemetry.run_id,
                            "trace_dir": telemetry.trace_dir}
    report.write(sweep_dir)
    return report


def _leg_fields(leg: SweepLeg, outcome: LegOutcome) -> Dict[str, object]:
    """The ``sweep.leg`` event payload (mirrors the report row exactly)."""
    return {"leg_id": leg.leg_id, "workload": leg.workload, "arch": leg.arch,
            "seed": leg.seed, "method": leg.method, "status": outcome.status,
            "speedup": outcome.speedup, "evaluations": outcome.evaluations,
            "fresh_evaluations": outcome.fresh_evaluations,
            "cache_hits": outcome.cache_hits}


def _record_leg_metrics(telemetry: Telemetry, leg: SweepLeg,
                        outcome: LegOutcome) -> None:
    """Per-leg evaluation totals, matching the report row bit-for-bit."""
    if not telemetry.enabled:
        return
    prefix = f"sweep.leg.{leg.leg_id}"
    telemetry.counter(prefix + ".evaluations").inc(outcome.evaluations)
    telemetry.counter(prefix + ".fresh_evaluations").inc(outcome.fresh_evaluations)
    telemetry.counter(prefix + ".cache_hits").inc(outcome.cache_hits)


def _run_leg(spec: SweepSpec, leg: SweepLeg, cache: FitnessCache, *,
             jobs: int, executor_kind: Optional[str],
             checkpoint_path: str, checkpoint_every: Optional[int],
             resume_from: Optional[str],
             reference_interpreter: bool,
             interpreter_tier: Optional[str] = None,
             batch_launches: Optional[bool] = None,
             telemetry: Telemetry = NULL_TELEMETRY) -> LegOutcome:
    """Execute one leg through the engine seam and summarise it."""
    from ..baselines import HillClimber, RandomSearch
    from ..gevo import GevoSearch
    from ..ir import reset_uid_namespace

    # Each leg rebuilds its modules in a fresh uid namespace.  Edits (and
    # therefore checkpoints and cache keys) address instructions by uid,
    # so a leg's numbering must not depend on how many modules the
    # invocation happened to build before it: a resumed sweep skips
    # finished legs without constructing their adapters, and without the
    # reset the resumed leg's modules would sit at a shifted counter the
    # checkpoint's edits no longer address.  Legs run sequentially and
    # never touch a previous leg's modules, so the reset is safe here.
    reset_uid_namespace()
    adapter = make_adapter(leg.workload, leg.arch, reference_interpreter,
                           interpreter_tier=interpreter_tier)
    config = spec.leg_config(leg)
    engine = EvaluationEngine(adapter,
                              executor=make_executor(jobs, executor_kind),
                              cache=cache,
                              telemetry=telemetry,
                              batch_launches=batch_launches)
    hits_before = engine.cache_hits
    start = time.perf_counter()
    try:
        if leg.method == "gevo":
            result = GevoSearch(adapter, config, engine=engine).run(
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every or 1,
                resume_from=resume_from)
            best_runtime = result.best.fitness if result.best is not None else math.inf
            best_edits = len(result.best_edits())
        elif leg.method == "random":
            result = RandomSearch(adapter, config, engine=engine).run(
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every or 1,
                resume_from=resume_from)
            best_runtime = (result.best.fitness
                            if result.best is not None else math.inf)
            best_edits = len(result.best.edits) if result.best is not None else 0
        else:
            result = HillClimber(adapter, config, engine=engine).run(
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every or max(1, config.population_size),
                resume_from=resume_from)
            best_runtime = result.best.fitness
            best_edits = len(result.best.edits)
    finally:
        # The shared cache outlives the leg: stop only this leg's workers
        # and persist what the leg added.
        engine.executor.close()
        cache.maybe_save(0.0)

    if telemetry.enabled:
        emit_module_hotspots(telemetry, adapter, adapter.original_module(),
                             label=leg.leg_id)

    return LegOutcome(
        workload=leg.workload,
        arch=leg.arch,
        seed=leg.seed,
        method=leg.method,
        status="resumed" if resume_from is not None else "completed",
        speedup=result.speedup,
        best_runtime_ms=best_runtime if best_runtime is not None else math.inf,
        baseline_runtime_ms=result.baseline.runtime_ms,
        best_edits=best_edits,
        evaluations=result.evaluations,
        fresh_evaluations=engine.evaluations,
        cache_hits=engine.cache_hits - hits_before,
        wall_clock_seconds=time.perf_counter() - start,
    )

