"""Additional :class:`~repro.runtime.engine.Executor` backends.

The engine ships with two execution strategies (in
:mod:`repro.runtime.engine`): :class:`SerialExecutor` and the
process-pool :class:`ParallelExecutor`.  This module adds the two the
ROADMAP calls for next:

* :class:`AsyncExecutor` -- in-process asyncio with bounded concurrency.
  Evaluations run on a private thread pool behind an
  ``asyncio.Semaphore``, so there is **no pickling overhead**: the
  adapter and the original module are shared by reference, which makes
  this the right executor for small populations and cheap workloads
  where :class:`ParallelExecutor`'s per-task IPC dominates.  Safe
  because every evaluation clones the module
  (:func:`~repro.gevo.genome.apply_edits`) and
  :meth:`~repro.gpu.simulator.GpuDevice.launch` keeps all mutable
  launch state local, so concurrent evaluations never share mutable
  structures.  When one evaluation raises, in-flight siblings are
  cancelled (queued tasks never start; already-running threads finish
  but their results are discarded) and the batch surfaces one
  :class:`~repro.errors.ExecutorError`.

* :class:`ShardedExecutor` -- partitions the batch into N *lanes* keyed
  by the canonical edit hash (:func:`~repro.runtime.cache.shard_index`,
  the same partition function the
  :class:`~repro.runtime.sharded_store.ShardedCacheStore` uses for its
  SQLite shards, so a sweep leg's evaluations and its cache rows shard
  identically).  Each lane runs its slice serially on its own thread;
  results reassemble in input order.

Both executors are **bit-for-bit equivalent** to
:class:`SerialExecutor`: the simulated GPU is deterministic and results
are returned in input order regardless of completion order.  The parity
battery in ``tests/runtime/test_executors.py`` pins that contract, the
fault-handling tests pin the clean-error guarantee.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import List, Sequence

from ..errors import ExecutorError
from ..gevo.edits import Edit
from ..gevo.fitness import FitnessResult, WorkloadAdapter
from .cache import canonical_edit_hash, shard_index
from .engine import Executor, SerialExecutor, _evaluate_one, default_jobs

__all__ = ["AsyncExecutor", "ShardedExecutor"]


class AsyncExecutor(Executor):
    """In-process asyncio executor with bounded concurrency.

    ``jobs`` bounds how many evaluations are in flight at once
    (``jobs < 1`` selects :func:`~repro.runtime.engine.default_jobs`).
    Each batch runs on a fresh event loop and a private thread pool that
    is torn down with the batch, so the executor holds no resources
    between batches and :meth:`close` is trivially idempotent.
    """

    name = "async"

    def __init__(self, jobs: int = 0):
        self.jobs = jobs if jobs >= 1 else default_jobs()

    def _run_batch(self, adapter: WorkloadAdapter, original,
                   edit_sets: Sequence[Sequence[Edit]]) -> List[FitnessResult]:
        if len(edit_sets) <= 1 or self.jobs == 1:
            # A single evaluation gains nothing from the event loop.
            return SerialExecutor().run_batch(adapter, original, edit_sets)
        return asyncio.run(self._run_batch_async(adapter, original, edit_sets))

    async def _run_batch_async(self, adapter, original, edit_sets):
        loop = asyncio.get_running_loop()
        semaphore = asyncio.Semaphore(self.jobs)
        pool = ThreadPoolExecutor(max_workers=self.jobs,
                                  thread_name_prefix="repro-async-eval")

        async def evaluate(edits):
            async with semaphore:
                return await loop.run_in_executor(
                    pool, _evaluate_one, adapter, original, edits)

        tasks = [loop.create_task(evaluate(edits)) for edits in edit_sets]
        try:
            # gather() propagates the first failure; the except arm then
            # cancels every sibling (tasks still waiting on the semaphore
            # never dispatch) and drains them so nothing leaks.
            return list(await asyncio.gather(*tasks))
        except BaseException as exc:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            if isinstance(exc, Exception):
                raise ExecutorError(
                    f"async evaluation batch failed: {exc}") from exc
            raise  # KeyboardInterrupt and friends propagate unwrapped.
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


class ShardedExecutor(Executor):
    """Hash-partitioned lanes: shard the batch by canonical edit hash.

    The partition is *content-addressed*: an edit set always lands on
    ``shard_index(canonical_edit_hash(edits), shards)`` regardless of its
    position in the batch, mirroring how the sharded cache store routes
    the same key to the same SQLite shard.  Lanes execute concurrently
    (one thread per non-empty lane), each lane serially in partition
    order, and results come back in input order -- deterministic and
    bit-for-bit equal to :class:`SerialExecutor`.
    """

    name = "sharded"

    def __init__(self, shards: int = 0):
        self.shards = shards if shards >= 1 else default_jobs()

    @property
    def jobs(self) -> int:
        """Lane count (reported as ``jobs`` in :class:`EngineStats`)."""
        return self.shards

    def _run_batch(self, adapter: WorkloadAdapter, original,
                   edit_sets: Sequence[Sequence[Edit]]) -> List[FitnessResult]:
        if len(edit_sets) <= 1 or self.shards == 1:
            return SerialExecutor().run_batch(adapter, original, edit_sets)

        lanes: List[List[int]] = [[] for _ in range(self.shards)]
        for index, edits in enumerate(edit_sets):
            lanes[shard_index(canonical_edit_hash(edits), self.shards)].append(index)

        results: List[FitnessResult] = [None] * len(edit_sets)  # type: ignore[list-item]

        def run_lane(indices: List[int]) -> None:
            for index in indices:
                results[index] = _evaluate_one(adapter, original, edit_sets[index])

        occupied = [lane for lane in lanes if lane]
        with ThreadPoolExecutor(max_workers=len(occupied),
                                thread_name_prefix="repro-shard-lane") as pool:
            futures = [pool.submit(run_lane, lane) for lane in occupied]
            errors = []
            for future in futures:
                try:
                    future.result()
                except Exception as exc:  # noqa: BLE001 - rewrapped below
                    errors.append(exc)
            if errors:
                raise ExecutorError(
                    f"sharded evaluation batch failed: {errors[0]}") from errors[0]
        return results
