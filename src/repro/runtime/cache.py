"""Content-addressed fitness cache.

Fitness evaluation dominates the wall clock of every pipeline in this
reproduction (search, minimization, epistasis, subset sweeps), and the
same edit-sets are evaluated over and over -- within one run (elitism,
delta-debugging rounds) and across runs (re-running an experiment, or
resuming a checkpointed search).  This module provides the cache the whole
evaluation runtime shares:

* :func:`canonical_edit_key` / :func:`canonical_edit_hash` -- an
  order-insensitive identity for an edit list.  GEVO's ``f(S)`` semantics
  (Algorithms 1 and 2) treat an edit collection as a *multiset*: the
  replay order is normalised by the evaluators (discovery order for
  ``EditSetEvaluator``), so two permutations of the same edits denote the
  same variant and must share one cache entry.  Duplicated edits are kept
  (applying ``copy`` twice is not the same as applying it once), which is
  why the key is a sorted tuple rather than a frozen set.
* :class:`FitnessCache` -- a two-tier cache: an always-on in-memory dict
  plus an optional disk-persisted JSON tier that survives across runs.
  Keys are ``(workload id, arch name, canonical edit-set hash)`` so one
  cache file can serve many workloads and architectures at once.

The disk format is a single JSON document (version-tagged) written
atomically; ``inf`` runtimes of invalid variants round-trip through
JSON's ``Infinity`` literal.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..gevo.edits import Edit
from ..gevo.fitness import CaseResult, FitnessResult

#: Bump when the on-disk layout or the key derivation changes.
CACHE_FORMAT_VERSION = 1


# -- canonical edit-set identity ------------------------------------------------------

def canonical_edit_key(edits: Sequence[Edit]) -> Tuple[str, ...]:
    """Order-insensitive, duplicate-preserving identity of an edit list.

    ``repr`` of :meth:`Edit.key` is stable for the primitive types edit
    keys are built from (strings, ints, floats, nested tuples) and gives a
    total order even across heterogeneous key shapes, which plain tuple
    comparison does not.
    """
    return tuple(sorted(repr(edit.key()) for edit in edits))


def canonical_edit_hash(edits: Sequence[Edit]) -> str:
    """Hex digest of :func:`canonical_edit_key`, usable as a file-safe id."""
    payload = "\n".join(canonical_edit_key(edits)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class CacheKey:
    """Identity of one fitness evaluation: what ran, where, with which edits."""

    workload_id: str
    arch_name: str
    edit_hash: str

    def to_string(self) -> str:
        return f"{self.workload_id}|{self.arch_name}|{self.edit_hash}"

    @classmethod
    def from_string(cls, text: str) -> "CacheKey":
        workload_id, arch_name, edit_hash = text.rsplit("|", 2)
        return cls(workload_id, arch_name, edit_hash)


# -- FitnessResult (de)serialisation --------------------------------------------------

def result_to_dict(result: FitnessResult) -> Dict[str, object]:
    return {
        "valid": result.valid,
        "runtime_ms": result.runtime_ms,
        "cases": [
            {"name": case.name, "passed": case.passed,
             "runtime_ms": case.runtime_ms, "message": case.message}
            for case in result.cases
        ],
    }


def result_from_dict(data: Dict[str, object]) -> FitnessResult:
    cases = [CaseResult(name=case["name"], passed=case["passed"],
                        runtime_ms=case["runtime_ms"], message=case.get("message", ""))
             for case in data.get("cases", [])]
    return FitnessResult(valid=data["valid"], runtime_ms=data["runtime_ms"], cases=cases)


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`FitnessCache`."""

    hits: int = 0
    misses: int = 0
    #: Entries that were already present when the disk tier was loaded.
    loaded: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.0%} hit rate, {self.loaded} preloaded)")


class FitnessCache:
    """In-memory fitness cache with an optional persistent JSON tier.

    With ``path=None`` the cache is purely in-memory (the default for
    tests and one-shot runs).  With a path, :meth:`load` pre-populates the
    memory tier from disk and :meth:`save` writes it back atomically;
    saving is a no-op unless entries were added since the last write.
    """

    def __init__(self, path: Optional[str] = None, *, autoload: bool = True):
        self.path = path
        self.stats = CacheStats()
        self._entries: Dict[CacheKey, FitnessResult] = {}
        self._dirty = False
        self._last_save = 0.0
        if path is not None and autoload:
            self.load()

    # -- lookup ------------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[FitnessResult]:
        result = self._entries.get(key)
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return result

    def peek(self, key: CacheKey) -> Optional[FitnessResult]:
        """Lookup without touching the hit/miss counters."""
        return self._entries.get(key)

    def put(self, key: CacheKey, result: FitnessResult) -> None:
        if key not in self._entries:
            self.stats.stores += 1
            self._dirty = True
        self._entries[key] = result

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    # -- persistence -------------------------------------------------------------------
    def load(self) -> int:
        """Merge entries from :attr:`path` into the memory tier.

        Returns the number of entries loaded; a missing file loads zero
        entries (first run with a fresh cache path).
        """
        if self.path is None or not os.path.exists(self.path):
            return 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (ValueError, OSError):
            # A cache is disposable acceleration state: a corrupt or
            # unreadable file behaves like an empty one (and is replaced
            # wholesale on the next save).
            self._dirty = True
            return 0
        if not isinstance(document, dict) or document.get("version") != CACHE_FORMAT_VERSION:
            # An incompatible cache is stale data, not an error: ignore it.
            return 0
        loaded = 0
        for key_text, payload in document.get("entries", {}).items():
            try:
                key = CacheKey.from_string(key_text)
                result = result_from_dict(payload)
            except (ValueError, KeyError, TypeError):
                continue
            if key not in self._entries:
                self._entries[key] = result
                loaded += 1
        self.stats.loaded += loaded
        return loaded

    def save(self, *, force: bool = False) -> bool:
        """Atomically write the memory tier to :attr:`path` when dirty."""
        if self.path is None or (not self._dirty and not force):
            return False
        document = {
            "version": CACHE_FORMAT_VERSION,
            "entries": {key.to_string(): result_to_dict(result)
                        for key, result in self._entries.items()},
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        self._dirty = False
        self._last_save = time.monotonic()
        return True

    def maybe_save(self, min_interval_seconds: float = 5.0) -> bool:
        """Save, but at most once per *min_interval_seconds*.

        The JSON tier rewrites the whole file on every save, so flushing
        after every evaluation batch would cost O(total entries) I/O per
        generation.  The engine calls this on its hot path; an unclean
        exit loses at most the last interval's entries (and a checkpointed
        search loses nothing -- the checkpoint carries the cache too).
        """
        if time.monotonic() - self._last_save < min_interval_seconds:
            return False
        return self.save()

    # -- bulk import/export (used by checkpoints) --------------------------------------
    def export_entries(self) -> Dict[str, Dict[str, object]]:
        return {key.to_string(): result_to_dict(result)
                for key, result in self._entries.items()}

    def import_entries(self, entries: Dict[str, Dict[str, object]]) -> int:
        imported = 0
        for key_text, payload in entries.items():
            key = CacheKey.from_string(key_text)
            if key not in self._entries:
                self._entries[key] = result_from_dict(payload)
                self._dirty = True
                imported += 1
        return imported
