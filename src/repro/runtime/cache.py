"""Content-addressed fitness cache.

Fitness evaluation dominates the wall clock of every pipeline in this
reproduction (search, minimization, epistasis, subset sweeps), and the
same edit-sets are evaluated over and over -- within one run (elitism,
delta-debugging rounds) and across runs (re-running an experiment, or
resuming a checkpointed search).  This module provides the cache the whole
evaluation runtime shares:

* :func:`canonical_edit_key` / :func:`canonical_edit_hash` -- an
  order-insensitive identity for an edit list.  GEVO's ``f(S)`` semantics
  (Algorithms 1 and 2) treat an edit collection as a *multiset*: the
  replay order is normalised by the evaluators (discovery order for
  ``EditSetEvaluator``), so two permutations of the same edits denote the
  same variant and must share one cache entry.  Duplicated edits are kept
  (applying ``copy`` twice is not the same as applying it once), which is
  why the key is a sorted tuple rather than a frozen set.
* :class:`FitnessCache` -- a two-tier cache: an always-on in-memory dict
  plus an optional disk-persisted tier that survives across runs.  Keys
  are ``(workload id, arch name, canonical edit-set hash)`` so one cache
  file can serve many workloads and architectures at once.

Disk persistence is pluggable through the :class:`CacheStore` interface:

* :class:`JsonCacheStore` -- a single version-tagged JSON document,
  written atomically; every flush rewrites the whole file, which is fine
  for small caches and keeps the file greppable.
* :class:`~repro.runtime.sqlite_store.SqliteCacheStore` -- one row per
  entry in a WAL-mode SQLite database; each flush upserts only the
  entries added or changed since the last one, so flush cost is
  O(new entries), not O(cache size).  The right tier for long sweeps.
* :class:`~repro.runtime.sharded_store.ShardedCacheStore` -- a directory
  of N SQLite shards with keys partitioned by :func:`shard_index`, so
  concurrent writers (multi-process sweeps) rarely contend on one WAL
  file.

:func:`make_cache_store` picks a backend from an explicit name, an
existing directory (sharded), the path's extension
(``.sqlite`` / ``.sqlite3`` / ``.db``), or the on-disk
file's magic bytes.  All stores treat a cache file as disposable
acceleration state: corrupt or incompatible files behave like empty ones.
``inf`` runtimes of invalid variants round-trip through JSON's
``Infinity`` literal in either backend.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple, Union

from ..gevo.edits import Edit
from ..gevo.fitness import CaseResult, FitnessResult

#: Bump when the on-disk layout or the key derivation changes.
CACHE_FORMAT_VERSION = 1

#: File extensions that select the SQLite backend under ``backend="auto"``.
SQLITE_EXTENSIONS = (".sqlite", ".sqlite3", ".db")

#: First bytes of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"


# -- canonical edit-set identity ------------------------------------------------------

def canonical_edit_key(edits: Sequence[Edit]) -> Tuple[str, ...]:
    """Order-insensitive, duplicate-preserving identity of an edit list.

    ``repr`` of :meth:`Edit.key` is stable for the primitive types edit
    keys are built from (strings, ints, floats, nested tuples) and gives a
    total order even across heterogeneous key shapes, which plain tuple
    comparison does not.
    """
    return tuple(sorted(repr(edit.key()) for edit in edits))


def canonical_edit_hash(edits: Sequence[Edit]) -> str:
    """Hex digest of :func:`canonical_edit_key`, usable as a file-safe id.

    Invariant: the hash is **order-insensitive** over the edit multiset --
    any permutation of the same edit list produces the same digest, so
    permuted genomes share one cache entry -- and **duplicate-preserving**
    (two copies of an edit hash differently from one).
    """
    payload = "\n".join(canonical_edit_key(edits)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def shard_index(edit_hash: str, shards: int) -> int:
    """Stable shard assignment for a canonical edit hash.

    Shared by the :class:`~repro.runtime.sharded_store.ShardedCacheStore`
    (which SQLite shard holds the row) and the
    :class:`~repro.runtime.executors.ShardedExecutor` (which lane runs the
    evaluation), so an edit set's evaluation and its cache row always
    agree on a shard.  Derived from the hash prefix, not Python's
    ``hash()``, so the assignment is stable across processes and runs.
    """
    return int(edit_hash[:8], 16) % max(1, shards)


def _atomic_write(path: str, writer, *, durable: bool = False) -> None:
    """Run *writer(handle)* against a temp file, then rename over *path*.

    A crash mid-write never damages an existing file at *path*; readers
    see either the old content or the new, never a torn mix.  The single
    implementation behind the JSON cache tier, checkpoints, the
    sharded-store manifest and the sweep record/report writers (pinned
    by the crash tests in ``tests/runtime/test_durability.py``).

    With ``durable=True`` the temp file is fsynced before the rename and
    the containing directory after it, so the new content (and the
    directory entry pointing at it) survive a *power loss*, not just a
    process kill.  Plain rename-atomicity only guarantees that some
    whole version of the file exists after a crash; without the fsyncs
    the filesystem may journal the rename before the data blocks,
    leaving a zero-length or truncated file after power failure.
    Checkpoints opt in (irreplaceable search state); cache flushes do
    not (disposable acceleration state -- losing a flush only costs
    re-evaluation).
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            writer(handle)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp_path, path)
        if durable:
            _fsync_directory(directory)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


def _fsync_directory(directory: str) -> None:
    """Persist a directory's entries (i.e. a just-completed rename)."""
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that cannot open directories; best effort
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


def atomic_write_text(path: str, text: str, *, durable: bool = False) -> None:
    """Atomically write *text* to *path* (tmp file + rename)."""
    _atomic_write(path, lambda handle: handle.write(text), durable=durable)


def atomic_write_json(path: str, document, *, durable: bool = False,
                      **dump_kwargs) -> None:
    """Atomically serialise *document* as JSON to *path* (streaming)."""
    _atomic_write(path, lambda handle: json.dump(document, handle, **dump_kwargs),
                  durable=durable)


@dataclass(frozen=True)
class CacheKey:
    """Identity of one fitness evaluation: what ran, where, with which edits."""

    workload_id: str
    arch_name: str
    edit_hash: str

    def to_string(self) -> str:
        return f"{self.workload_id}|{self.arch_name}|{self.edit_hash}"

    @classmethod
    def from_string(cls, text: str) -> "CacheKey":
        workload_id, arch_name, edit_hash = text.rsplit("|", 2)
        return cls(workload_id, arch_name, edit_hash)


# -- FitnessResult (de)serialisation --------------------------------------------------

def result_to_dict(result: FitnessResult) -> Dict[str, object]:
    return {
        "valid": result.valid,
        "runtime_ms": result.runtime_ms,
        "cases": [
            {"name": case.name, "passed": case.passed,
             "runtime_ms": case.runtime_ms, "message": case.message}
            for case in result.cases
        ],
    }


def result_from_dict(data: Dict[str, object]) -> FitnessResult:
    cases = [CaseResult(name=case["name"], passed=case["passed"],
                        runtime_ms=case["runtime_ms"], message=case.get("message", ""))
             for case in data.get("cases", [])]
    return FitnessResult(valid=data["valid"], runtime_ms=data["runtime_ms"], cases=cases)


# -- storage backends -----------------------------------------------------------------

class CacheStore:
    """Persistence strategy for a :class:`FitnessCache`.

    A store maps key strings (``CacheKey.to_string()``) to serialised
    :class:`FitnessResult` payloads.  Contract:

    * :meth:`load` returns everything currently on disk; missing, corrupt
      or version-incompatible files load as *empty* (a cache is disposable
      acceleration state, never irreplaceable).
    * :meth:`flush` persists the cache atomically with respect to readers
      and crashes: an interrupted flush must leave the previous on-disk
      state loadable.
    * Stores may ignore ``dirty_keys`` (the JSON tier rewrites the whole
      document anyway) or use it to write incrementally (the SQLite tier
      upserts only those rows).
    """

    backend = "store"
    #: Suggested minimum seconds between hot-path flushes (see
    #: :meth:`FitnessCache.maybe_save`).  Stores with O(dirty) flush cost
    #: can afford 0; stores with O(cache) flush cost should rate-limit.
    flush_interval = 5.0

    def __init__(self, path: str):
        self.path = path
        #: Entries written by the most recent :meth:`flush` (observability
        #: hook; the incremental-flush tests pin the SQLite tier with it).
        self.last_flush_count = 0

    def load(self) -> Dict[str, Dict[str, object]]:
        raise NotImplementedError

    def flush(self, entries: Dict[CacheKey, FitnessResult],
              dirty_keys: Set[CacheKey]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (connections); idempotent."""


def read_json_cache_document(path: str) -> Optional[Dict[str, Dict[str, object]]]:
    """Entries of the JSON cache document at *path*, or ``None``.

    ``None`` means "not a usable cache document": missing, unreadable,
    unparseable, or an incompatible format version (stale data, not an
    error).  A valid-but-empty cache returns ``{}``.  Shared by the JSON
    tier's :meth:`JsonCacheStore.load` and the SQLite tier's one-time
    migration, so the two readers cannot drift apart.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (ValueError, OSError):
        return None
    if not isinstance(document, dict) or document.get("version") != CACHE_FORMAT_VERSION:
        return None
    entries = document.get("entries", {})
    return entries if isinstance(entries, dict) else None


class JsonCacheStore(CacheStore):
    """The original single-document JSON tier.

    Every flush serialises the full entry map and atomically replaces the
    file (tmp file + rename), so a crash mid-write never damages the
    previous document.  Simple and human-readable, but flush cost grows
    with the cache: prefer the SQLite tier past a few thousand entries.
    """

    backend = "json"
    flush_interval = 5.0

    def load(self) -> Dict[str, Dict[str, object]]:
        # A corrupt or incompatible document behaves like an empty cache
        # (and is replaced wholesale on the next flush).
        entries = read_json_cache_document(self.path)
        return entries if entries is not None else {}

    def flush(self, entries, dirty_keys) -> None:
        document = {
            "version": CACHE_FORMAT_VERSION,
            "entries": {key.to_string(): result_to_dict(result)
                        for key, result in entries.items()},
        }
        atomic_write_json(self.path, document)
        self.last_flush_count = len(entries)


def make_cache_store(path: str, backend: Optional[str] = None, *,
                     shards: Optional[int] = None) -> CacheStore:
    """Build the cache store for *path*.

    ``backend`` may be ``"json"``, ``"sqlite"``, ``"sharded"``, or
    ``None``/``"auto"``.  Auto-detection prefers, in order: an existing
    directory at *path* (the sharded tier keeps its shard files inside a
    directory), a SQLite file extension (``.sqlite`` / ``.sqlite3`` /
    ``.db``), the SQLite magic bytes of an existing file at *path*, and
    finally the JSON tier.  An existing JSON cache opened with the SQLite
    backend is migrated in place on first open (see
    :class:`~repro.runtime.sqlite_store.SqliteCacheStore`).  ``shards``
    sets the shard count when a *fresh* sharded store is created (an
    existing store keeps the count it was created with).
    """
    if backend in (None, "auto"):
        extension = os.path.splitext(path)[1].lower()
        if os.path.isdir(path):
            backend = "sharded"
        elif extension in SQLITE_EXTENSIONS:
            backend = "sqlite"
        elif _file_has_sqlite_magic(path):
            backend = "sqlite"
        else:
            backend = "json"
    if backend == "json":
        return JsonCacheStore(path)
    if backend == "sqlite":
        from .sqlite_store import SqliteCacheStore

        return SqliteCacheStore(path)
    if backend == "sharded":
        from .sharded_store import ShardedCacheStore

        return ShardedCacheStore(path, shards=shards)
    raise ValueError(f"unknown cache backend {backend!r} "
                     "(expected 'auto', 'json', 'sqlite' or 'sharded')")


def _file_has_sqlite_magic(path: str) -> bool:
    try:
        with open(path, "rb") as handle:
            return handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False


# -- the cache ------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`FitnessCache`."""

    hits: int = 0
    misses: int = 0
    #: Entries that were already present when the disk tier was loaded.
    loaded: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.0%} hit rate, {self.loaded} preloaded)")


class FitnessCache:
    """In-memory fitness cache with an optional persistent disk tier.

    With ``path=None`` the cache is purely in-memory (the default for
    tests and one-shot runs).  With a path, :meth:`load` pre-populates the
    memory tier from disk and :meth:`save` writes new/changed entries back
    through the configured :class:`CacheStore`; saving is a no-op unless
    entries were added or overwritten since the last write.

    ``backend`` selects the disk tier (``"auto"``/``"json"``/``"sqlite"``,
    see :func:`make_cache_store`); a pre-built store can be passed as
    ``store=`` instead of a path.
    """

    def __init__(self, path: Optional[str] = None, *, backend: Optional[str] = None,
                 store: Optional[CacheStore] = None, autoload: bool = True,
                 shards: Optional[int] = None):
        if store is not None:
            self._store: Optional[CacheStore] = store
        elif path is not None:
            self._store = make_cache_store(path, backend, shards=shards)
        else:
            self._store = None
        self.stats = CacheStats()
        self._entries: Dict[CacheKey, FitnessResult] = {}
        self._dirty_keys: Set[CacheKey] = set()
        self._last_save = 0.0
        if self._store is not None and autoload:
            self.load()

    @property
    def path(self) -> Optional[str]:
        return self._store.path if self._store is not None else None

    @property
    def store(self) -> Optional[CacheStore]:
        return self._store

    @property
    def backend(self) -> Optional[str]:
        return self._store.backend if self._store is not None else None

    @property
    def _dirty(self) -> bool:
        return bool(self._dirty_keys)

    # -- lookup ------------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[FitnessResult]:
        result = self._entries.get(key)
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return result

    def peek(self, key: CacheKey) -> Optional[FitnessResult]:
        """Lookup without touching the hit/miss counters."""
        return self._entries.get(key)

    def put(self, key: CacheKey, result: FitnessResult) -> None:
        existing = self._entries.get(key)
        if existing is None:
            self.stats.stores += 1
            self._dirty_keys.add(key)
        elif existing != result:
            # Overwriting with a different result must persist too -- the
            # original implementation only marked new keys dirty, so a
            # changed entry silently evaporated at the next save.
            self._dirty_keys.add(key)
        self._entries[key] = result

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    # -- persistence -------------------------------------------------------------------
    def load(self) -> int:
        """Merge entries from the disk tier into the memory tier.

        Returns the number of entries loaded; a missing file loads zero
        entries (first run with a fresh cache path).
        """
        if self._store is None:
            return 0
        loaded = 0
        for key_text, payload in self._store.load().items():
            try:
                key = CacheKey.from_string(key_text)
                result = result_from_dict(payload)
            except (ValueError, KeyError, TypeError):
                continue
            if key not in self._entries:
                self._entries[key] = result
                loaded += 1
        self.stats.loaded += loaded
        return loaded

    def save(self, *, force: bool = False) -> bool:
        """Write new/changed entries through the disk tier when dirty."""
        if self._store is None or (not self._dirty_keys and not force):
            return False
        dirty = set(self._entries) if force else set(self._dirty_keys)
        self._store.flush(self._entries, dirty)
        self._dirty_keys.clear()
        self._last_save = time.monotonic()
        return True

    def maybe_save(self, min_interval_seconds: Optional[float] = None) -> bool:
        """Save, but at most once per *min_interval_seconds*.

        The interval defaults to the store's own ``flush_interval``: the
        JSON tier rewrites the whole file per save, so hot-path flushes
        are rate-limited (an unclean exit loses at most the last
        interval's entries); the SQLite tier upserts only dirty rows, so
        it flushes every time and an unclean exit loses nothing already
        handed to ``put``.
        """
        if min_interval_seconds is None:
            min_interval_seconds = (self._store.flush_interval
                                    if self._store is not None else 0.0)
        if time.monotonic() - self._last_save < min_interval_seconds:
            return False
        return self.save()

    def close(self) -> None:
        """Flush pending entries and release the disk tier's resources."""
        self.save()
        if self._store is not None:
            self._store.close()

    # -- bulk import/export (used by checkpoints) --------------------------------------
    def export_entries(self, *, workload_id: Optional[str] = None,
                       arch_name: Optional[str] = None) -> Dict[str, Dict[str, object]]:
        """Serialise entries, optionally restricted to one key namespace.

        Checkpoints pass the owning engine's workload/arch so a search
        sharing a big multi-leg cache (a sweep) snapshots only the
        entries it can actually hit, instead of re-serialising every
        other leg's results into every checkpoint.
        """
        return {key.to_string(): result_to_dict(result)
                for key, result in self._entries.items()
                if (workload_id is None or key.workload_id == workload_id)
                and (arch_name is None or key.arch_name == arch_name)}

    def import_entries(self, entries: Dict[str, Dict[str, object]]) -> int:
        imported = 0
        for key_text, payload in entries.items():
            key = CacheKey.from_string(key_text)
            if key not in self._entries:
                self._entries[key] = result_from_dict(payload)
                self._dirty_keys.add(key)
                imported += 1
        return imported
