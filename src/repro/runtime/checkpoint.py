"""Checkpoint/resume for long-running GEVO searches.

A paper-scale GEVO run is days of wall clock (population 256 x 300
generations x a full test-suite evaluation per variant); with the
simulated GPU the scaled-down runs are still the slowest thing in the
repo.  A :class:`SearchCheckpoint` captures everything the generational
loop needs to continue exactly where it stopped:

* the population and best-so-far individual (edit lists + fitness),
* the generation counter and stagnation counter,
* the Mersenne-Twister state of the search RNG,
* the recorded :class:`~repro.gevo.history.SearchHistory`,
* the search configuration (for mismatch detection on resume),
* the fitness-cache contents, so no variant evaluated before the
  interruption is ever re-simulated.

Checkpoints are plain JSON; ``inf`` fitness values round-trip through
JSON's ``Infinity`` literal.  Resuming with the same seed reproduces the
uninterrupted run bit-for-bit (pinned by
``tests/runtime/test_checkpoint.py``) because the RNG state, population
order and history are all restored verbatim.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SearchError
from ..gevo.config import GevoConfig
from ..gevo.edits import Edit, edit_from_dict
from ..gevo.genome import Individual
from ..gevo.history import GenerationRecord, SearchHistory

CHECKPOINT_FORMAT_VERSION = 1


# -- primitive (de)serialisation helpers ---------------------------------------------

def _to_jsonable(value):
    """Tuples survive JSON as lists; convert eagerly for clarity."""
    if isinstance(value, tuple):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, list):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _to_jsonable(item) for key, item in value.items()}
    return value


def _to_tuple(value):
    """Recursively convert JSON lists back to the tuples edit keys use."""
    if isinstance(value, list):
        return tuple(_to_tuple(item) for item in value)
    return value


def serialize_individual(individual: Individual) -> Dict[str, object]:
    return {
        "edits": [edit.to_dict() for edit in individual.edits],
        "fitness": individual.fitness,
        "valid": individual.valid,
        "birth_generation": individual.birth_generation,
    }


def deserialize_individual(data: Dict[str, object]) -> Individual:
    individual = Individual(
        edits=[edit_from_dict(edit) for edit in data["edits"]],
        birth_generation=data.get("birth_generation", 0),
    )
    individual.fitness = data.get("fitness")
    individual.valid = data.get("valid")
    return individual


def serialize_history(history: SearchHistory) -> Dict[str, object]:
    return {
        "baseline_runtime": history.baseline_runtime,
        "records": [
            {
                "generation": record.generation,
                "best_fitness": record.best_fitness,
                "mean_fitness": record.mean_fitness,
                "valid_count": record.valid_count,
                "population_size": record.population_size,
                "best_edit_keys": _to_jsonable(record.best_edit_keys),
                "evaluations": record.evaluations,
            }
            for record in history.records
        ],
        "first_seen_in_best": [
            [_to_jsonable(key), generation]
            for key, generation in history.first_seen_in_best.items()
        ],
        "first_seen_in_population": [
            [_to_jsonable(key), generation]
            for key, generation in history.first_seen_in_population.items()
        ],
    }


def deserialize_history(data: Dict[str, object]) -> SearchHistory:
    history = SearchHistory(baseline_runtime=data["baseline_runtime"])
    for record in data.get("records", []):
        history.records.append(GenerationRecord(
            generation=record["generation"],
            best_fitness=record["best_fitness"],
            mean_fitness=record["mean_fitness"],
            valid_count=record["valid_count"],
            population_size=record["population_size"],
            best_edit_keys=_to_tuple(record.get("best_edit_keys", [])),
            evaluations=record.get("evaluations", 0),
        ))
    for key, generation in data.get("first_seen_in_best", []):
        history.first_seen_in_best[_to_tuple(key)] = generation
    for key, generation in data.get("first_seen_in_population", []):
        history.first_seen_in_population[_to_tuple(key)] = generation
    return history


def serialize_rng_state(state) -> List[object]:
    return _to_jsonable(state)


def deserialize_rng_state(data) -> Tuple:
    return _to_tuple(data)


# -- the checkpoint ------------------------------------------------------------------

@dataclass
class SearchCheckpoint:
    """Complete restartable state of one interrupted GEVO search."""

    workload_id: str
    config: Dict[str, object]
    generation: int
    stagnation: int
    rng_state: List[object]
    population: List[Dict[str, object]]
    best: Optional[Dict[str, object]]
    evaluations: int
    history: Dict[str, object]
    baseline_runtime: float
    cache_entries: Dict[str, Dict[str, object]] = field(default_factory=dict)
    version: int = CHECKPOINT_FORMAT_VERSION

    # -- construction ------------------------------------------------------------------
    @classmethod
    def capture(cls, *, workload_id: str, config: GevoConfig, generation: int,
                stagnation: int, rng_state, population: Sequence[Individual],
                best: Optional[Individual], evaluations: int,
                history: SearchHistory, baseline_runtime: float,
                cache_entries: Optional[Dict[str, Dict[str, object]]] = None,
                ) -> "SearchCheckpoint":
        return cls(
            workload_id=workload_id,
            config=dataclasses.asdict(config),
            generation=generation,
            stagnation=stagnation,
            rng_state=serialize_rng_state(rng_state),
            population=[serialize_individual(ind) for ind in population],
            best=serialize_individual(best) if best is not None else None,
            evaluations=evaluations,
            history=serialize_history(history),
            baseline_runtime=baseline_runtime,
            cache_entries=dict(cache_entries or {}),
        )

    # -- restoration -------------------------------------------------------------------
    def restore_config(self) -> GevoConfig:
        data = dict(self.config)
        return GevoConfig(**data)

    def restore_population(self) -> List[Individual]:
        return [deserialize_individual(ind) for ind in self.population]

    def restore_best(self) -> Optional[Individual]:
        return deserialize_individual(self.best) if self.best is not None else None

    def restore_history(self) -> SearchHistory:
        return deserialize_history(self.history)

    def restore_rng_state(self) -> Tuple:
        return deserialize_rng_state(self.rng_state)

    # -- persistence -------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SearchCheckpoint":
        if data.get("version") != CHECKPOINT_FORMAT_VERSION:
            raise SearchError(
                f"checkpoint format version {data.get('version')!r} is not supported "
                f"(expected {CHECKPOINT_FORMAT_VERSION})")
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in fields})

    def save(self, path: str) -> None:
        """Atomically write the checkpoint to *path* (tmp file + rename)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    @classmethod
    def load(cls, path: str) -> "SearchCheckpoint":
        """Load a checkpoint; corruption raises :class:`SearchError`.

        Unlike the fitness cache, a checkpoint is irreplaceable search
        state -- a damaged file must surface loudly, not be silently
        treated as empty.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except ValueError as exc:
            raise SearchError(f"checkpoint {path!r} is not valid JSON: {exc}") from exc
        except OSError as exc:
            raise SearchError(f"cannot read checkpoint {path!r}: {exc}") from exc
        try:
            return cls.from_dict(document)
        except (KeyError, TypeError, AttributeError) as exc:
            raise SearchError(
                f"checkpoint {path!r} is malformed (missing or mistyped field: {exc})"
            ) from exc
