"""Checkpoint/resume for long-running searches.

A paper-scale GEVO run is days of wall clock (population 256 x 300
generations x a full test-suite evaluation per variant); with the
simulated GPU the scaled-down runs are still the slowest thing in the
repo -- and the random-search and hill-climbing baselines burn the same
evaluation budget.  A :class:`SearchCheckpoint` captures everything *any*
of the search loops needs to continue exactly where it stopped:

* which algorithm wrote it (``algorithm``), so a hill-climber checkpoint
  can never silently resume a GEVO run;
* the Mersenne-Twister state of the search RNG,
* the recorded :class:`~repro.gevo.history.SearchHistory` and the
  cumulative evaluation count,
* the search configuration (for mismatch detection on resume),
* the fitness-cache contents, so no variant evaluated before the
  interruption is ever re-simulated,
* an algorithm-specific ``state`` payload -- GEVO stores its population,
  best individual and generation/stagnation counters there; random search
  its generation counter and best-so-far; the hill climber its current
  individual, step counter and accepted/rejected tallies.

Any search that wants checkpointing implements the tiny
:class:`CheckpointableSearch` shape -- ``algorithm`` plus
``capture_checkpoint()`` / ``restore_checkpoint()`` -- and validates an
incoming checkpoint through :func:`resolve_checkpoint`, which funnels all
the algorithm/workload/config mismatch checks through one place.

Checkpoints are plain JSON; ``inf`` fitness values round-trip through
JSON's ``Infinity`` literal.  Resuming with the same seed reproduces the
uninterrupted run bit-for-bit (pinned by ``tests/runtime/test_checkpoint.py``
for GEVO and ``tests/runtime/test_baseline_resume.py`` for the baselines)
because the RNG state, working individuals and history are all restored
verbatim.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..errors import SearchError
from ..gevo.config import GevoConfig
from ..gevo.edits import Edit, edit_from_dict
from ..gevo.genome import Individual
from ..gevo.history import GenerationRecord, SearchHistory
from .faultpoints import kill_point

#: Version 2 added the ``algorithm`` discriminator and moved the
#: gevo-specific fields (population, generation, stagnation, best) into
#: the per-algorithm ``state`` payload.
CHECKPOINT_FORMAT_VERSION = 2


# -- primitive (de)serialisation helpers ---------------------------------------------

def _to_jsonable(value):
    """Tuples survive JSON as lists; convert eagerly for clarity."""
    if isinstance(value, tuple):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, list):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _to_jsonable(item) for key, item in value.items()}
    return value


def _to_tuple(value):
    """Recursively convert JSON lists back to the tuples edit keys use."""
    if isinstance(value, list):
        return tuple(_to_tuple(item) for item in value)
    return value


def serialize_individual(individual: Individual) -> Dict[str, object]:
    return {
        "edits": [edit.to_dict() for edit in individual.edits],
        "fitness": individual.fitness,
        "valid": individual.valid,
        "birth_generation": individual.birth_generation,
    }


def deserialize_individual(data: Dict[str, object]) -> Individual:
    individual = Individual(
        edits=[edit_from_dict(edit) for edit in data["edits"]],
        birth_generation=data.get("birth_generation", 0),
    )
    individual.fitness = data.get("fitness")
    individual.valid = data.get("valid")
    return individual


def serialize_history(history: SearchHistory) -> Dict[str, object]:
    return {
        "baseline_runtime": history.baseline_runtime,
        "records": [
            {
                "generation": record.generation,
                "best_fitness": record.best_fitness,
                "mean_fitness": record.mean_fitness,
                "valid_count": record.valid_count,
                "population_size": record.population_size,
                "best_edit_keys": _to_jsonable(record.best_edit_keys),
                "evaluations": record.evaluations,
            }
            for record in history.records
        ],
        "first_seen_in_best": [
            [_to_jsonable(key), generation]
            for key, generation in history.first_seen_in_best.items()
        ],
        "first_seen_in_population": [
            [_to_jsonable(key), generation]
            for key, generation in history.first_seen_in_population.items()
        ],
    }


def deserialize_history(data: Dict[str, object]) -> SearchHistory:
    history = SearchHistory(baseline_runtime=data["baseline_runtime"])
    for record in data.get("records", []):
        history.records.append(GenerationRecord(
            generation=record["generation"],
            best_fitness=record["best_fitness"],
            mean_fitness=record["mean_fitness"],
            valid_count=record["valid_count"],
            population_size=record["population_size"],
            best_edit_keys=_to_tuple(record.get("best_edit_keys", [])),
            evaluations=record.get("evaluations", 0),
        ))
    for key, generation in data.get("first_seen_in_best", []):
        history.first_seen_in_best[_to_tuple(key)] = generation
    for key, generation in data.get("first_seen_in_population", []):
        history.first_seen_in_population[_to_tuple(key)] = generation
    return history


def serialize_rng_state(state) -> List[object]:
    return _to_jsonable(state)


def deserialize_rng_state(data) -> Tuple:
    return _to_tuple(data)


# -- the checkpoint ------------------------------------------------------------------

@dataclass
class SearchCheckpoint:
    """Complete restartable state of one interrupted search run."""

    #: Which search loop wrote this checkpoint ("gevo", "random_search",
    #: "hill_climber", ...); resume refuses a mismatched algorithm.
    algorithm: str
    workload_id: str
    config: Dict[str, object]
    rng_state: List[object]
    evaluations: int
    history: Dict[str, object]
    baseline_runtime: float
    #: Algorithm-specific payload (population, counters, working
    #: individuals ...); the owning search defines its shape.
    state: Dict[str, object] = field(default_factory=dict)
    cache_entries: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Cache keys of every edit set *this search* has submitted -- the
    #: :class:`EvaluationLedger`'s known set.  Recorded separately from
    #: ``cache_entries`` because the two answer different questions: the
    #: cache snapshot is "what results are on hand" (and in a sweep's
    #: shared cache it includes sibling legs' entries -- keys are
    #: namespaced by workload+arch, not seed), while the ledger set is
    #: "what this timeline has been charged for".  Seeding a resumed
    #: ledger from ``cache_entries`` would mark sibling legs' entries
    #: pre-known and undercount the replay; ``None`` (legacy checkpoints)
    #: falls back to that approximation, which is exact for unshared
    #: caches.
    ledger_keys: Optional[List[str]] = None
    #: Architecture the run evaluated on.  Optional for backward
    #: compatibility (pre-crash-exactness checkpoints lack it); when
    #: present, resume refuses a mismatched architecture.
    arch_name: Optional[str] = None
    version: int = CHECKPOINT_FORMAT_VERSION

    # -- construction ------------------------------------------------------------------
    @classmethod
    def capture(cls, *, algorithm: str, workload_id: str, config: GevoConfig,
                rng_state, evaluations: int, history: SearchHistory,
                baseline_runtime: float, state: Dict[str, object],
                cache_entries: Optional[Dict[str, Dict[str, object]]] = None,
                ledger_keys: Optional[Iterable[str]] = None,
                arch_name: Optional[str] = None,
                ) -> "SearchCheckpoint":
        return cls(
            algorithm=algorithm,
            workload_id=workload_id,
            config=dataclasses.asdict(config),
            rng_state=serialize_rng_state(rng_state),
            evaluations=evaluations,
            history=serialize_history(history),
            baseline_runtime=baseline_runtime,
            state=dict(state),
            cache_entries=dict(cache_entries or {}),
            ledger_keys=None if ledger_keys is None else sorted(ledger_keys),
            arch_name=arch_name,
        )

    # -- restoration -------------------------------------------------------------------
    def restore_config(self) -> GevoConfig:
        return GevoConfig(**dict(self.config))

    def restore_history(self) -> SearchHistory:
        return deserialize_history(self.history)

    def restore_rng_state(self) -> Tuple:
        return deserialize_rng_state(self.rng_state)

    def restore_individual(self, name: str) -> Optional[Individual]:
        """Deserialize an optional :class:`Individual` from :attr:`state`."""
        data = self.state.get(name)
        return deserialize_individual(data) if data is not None else None

    def restore_individuals(self, name: str) -> List[Individual]:
        """Deserialize a list of individuals from :attr:`state`."""
        return [deserialize_individual(item) for item in self.state.get(name, [])]

    # -- convenience accessors (shared state fields) -----------------------------------
    @property
    def generation(self) -> int:
        """Generation/step counter, whatever the algorithm calls it."""
        return int(self.state.get("generation", self.state.get("step", 0)))

    def restore_population(self) -> List[Individual]:
        return self.restore_individuals("population")

    def restore_best(self) -> Optional[Individual]:
        return self.restore_individual("best")

    # -- persistence -------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SearchCheckpoint":
        if data.get("version") != CHECKPOINT_FORMAT_VERSION:
            raise SearchError(
                f"checkpoint format version {data.get('version')!r} is not supported "
                f"(expected {CHECKPOINT_FORMAT_VERSION})")
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in fields})

    def save(self, path: str) -> None:
        """Durably and atomically write the checkpoint to *path*.

        Beyond the tmp-file-plus-rename every writer in the runtime uses,
        a checkpoint fsyncs the tmp file before the rename and the
        containing directory after it: checkpoints are the one file class
        whose loss is *irreplaceable* (hours of search), so they must
        survive power loss, not just process death.
        """
        from .cache import atomic_write_json

        kill_point("checkpoint.save")
        atomic_write_json(path, self.to_dict(), durable=True)

    @classmethod
    def load(cls, path: str) -> "SearchCheckpoint":
        """Load a checkpoint; corruption raises :class:`SearchError`.

        Unlike the fitness cache, a checkpoint is irreplaceable search
        state -- a damaged file must surface loudly, not be silently
        treated as empty.  A torn or truncated file (unparseable JSON)
        is set aside as ``<path>.corrupt`` -- the same convention the
        SQLite cache tier uses -- so a retried ``--resume`` against the
        same path starts fresh instead of tripping over the wreck
        forever, while the damaged bytes stay on disk for forensics.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except ValueError as exc:
            corrupt_path = path + ".corrupt"
            try:
                os.replace(path, corrupt_path)
                aside = f"; the damaged file was set aside as {corrupt_path!r}"
            except OSError:
                aside = ""
            raise SearchError(
                f"checkpoint {path!r} is not valid JSON: {exc}{aside}") from exc
        except OSError as exc:
            raise SearchError(f"cannot read checkpoint {path!r}: {exc}") from exc
        try:
            return cls.from_dict(document)
        except (KeyError, TypeError, AttributeError) as exc:
            raise SearchError(
                f"checkpoint {path!r} is malformed (missing or mistyped field: {exc})"
            ) from exc


# -- crash-exact evaluation accounting -----------------------------------------------

class EvaluationLedger:
    """Timeline-deterministic evaluation counter shared by all searches.

    The old accounting ("executed cache misses on this engine, plus the
    checkpoint's count on resume") was *invocation*-relative: a SIGKILL
    between a persistent-cache flush and the round checkpoint left
    freshly flushed results on disk that the resumed process then served
    from cache, so the replayed round executed fewer misses than the
    original and the final evaluation count diverged (the root cause of
    the long-xfailed ``test_sigkill_resume``).

    The ledger counts what the *paper* counts instead: distinct edit
    sets this search has submitted for evaluation since it began.  That
    quantity is a pure function of the search timeline -- independent of
    how warm any cache happens to be -- so the reported evaluation count
    is identical whether the run went uninterrupted, was killed and
    resumed from a checkpoint, or was killed *before its first
    checkpoint* and restarted fresh against a partially-warmed disk
    cache.  (For a cold-start search the ledger agrees exactly with the
    old executed-miss numbers; only warm-cache starts differ, and there
    the old numbers were an artifact of cache state, not of the search.)
    """

    def __init__(self, known_keys: Iterable[str] = (), count: int = 0):
        self._known: Set[str] = set(known_keys)
        #: Evaluations charged so far (cumulative across resumes).
        self.count = count

    @classmethod
    def from_checkpoint(cls, checkpoint: "SearchCheckpoint") -> "EvaluationLedger":
        """Resume ledger from the checkpoint's recorded submitted-key set.

        Deliberately *not* the live cache: after a crash the disk tier
        may hold results flushed during the half-finished round, and
        treating those as pre-known would skip charging the replayed
        round -- the exact divergence this class exists to fix.  And not
        the checkpoint's ``cache_entries`` either: in a sweep's shared
        cache that snapshot carries sibling legs' entries (keys are
        namespaced by workload+arch, not seed), and marking those
        pre-known undercounts every post-resume submission of an edit
        set a sibling happened to evaluate first.  The checkpoint's
        ``ledger_keys`` field is exactly the set this timeline had been
        charged for at the round boundary; legacy checkpoints without it
        fall back to ``cache_entries``, which is equivalent whenever the
        cache was not shared.
        """
        known = (checkpoint.cache_entries.keys()
                 if checkpoint.ledger_keys is None else checkpoint.ledger_keys)
        return cls(known_keys=known, count=checkpoint.evaluations)

    def charge(self, keys: Iterable[str]) -> int:
        """Charge each not-yet-known key once; returns how many were new.

        Call with the canonical cache-key strings of one submitted batch
        *after* the batch evaluates successfully (a crashed batch is
        replayed and charged on resume instead).
        """
        new = 0
        for key in keys:
            if key not in self._known:
                self._known.add(key)
                new += 1
        self.count += new
        return new

    def known_keys(self) -> List[str]:
        """The charged-key set, sorted for stable checkpoint serialisation."""
        return sorted(self._known)


# -- the resumable-search contract ---------------------------------------------------

class CheckpointableSearch:
    """Shape a search loop implements to participate in checkpoint/resume.

    This is a protocol in spirit (``typing.Protocol`` is avoided to keep
    the runtime dependency-free and subclass-friendly): a search declares
    its ``algorithm`` name and can serialise itself into / restore itself
    from a :class:`SearchCheckpoint`.  ``GevoSearch``, ``RandomSearch``
    and ``HillClimber`` all conform; anything new (simulated annealing,
    multi-start portfolios) only has to fill in the ``state`` payload.

    Conforming searches expose ``config``, ``rng``, an ``evaluator``
    (whose engine owns the cache), a recorded ``_history`` and an
    :class:`EvaluationLedger` at ``_ledger``; with those in place the
    algorithm-agnostic plumbing is handled by
    :func:`capture_search_checkpoint` / :func:`restore_search_checkpoint`
    and only the ``state`` payload is per-algorithm.
    """

    #: Discriminator recorded in every checkpoint this search writes.
    algorithm: str = "search"

    def capture_checkpoint(self) -> SearchCheckpoint:
        raise NotImplementedError

    def restore_checkpoint(self, checkpoint: SearchCheckpoint) -> None:
        raise NotImplementedError


def capture_search_checkpoint(search, state: Dict[str, object]) -> SearchCheckpoint:
    """The algorithm-agnostic half of ``capture_checkpoint``.

    Snapshots everything every search records identically -- RNG state,
    config, history, cumulative evaluations and the fitness-cache
    contents -- around the algorithm-specific *state* payload.
    """
    engine = search.evaluator.engine
    return SearchCheckpoint.capture(
        algorithm=search.algorithm,
        workload_id=engine.workload_id,
        config=search.config,
        rng_state=search.rng.getstate(),
        evaluations=search._ledger.count,
        history=search._history,
        baseline_runtime=search._history.baseline_runtime,
        state=state,
        # Restricted to this search's own key namespace: a search sharing
        # a multi-leg cache (a sweep) must not re-serialise every other
        # leg's entries into each of its checkpoints.
        cache_entries=engine.cache.export_entries(
            workload_id=engine.workload_id, arch_name=engine.arch_name),
        # The ledger's own submitted set, NOT the cache snapshot above:
        # under a sweep's shared cache the snapshot includes sibling
        # legs' entries, which must not be treated as pre-charged on
        # resume (see EvaluationLedger.from_checkpoint).
        ledger_keys=search._ledger.known_keys(),
        arch_name=engine.arch_name,
    )


def restore_search_checkpoint(search, checkpoint: SearchCheckpoint) -> None:
    """The algorithm-agnostic half of ``restore_checkpoint``.

    Re-imports the cache, history, evaluation ledger and RNG state; the
    caller then applies its own ``state`` payload.
    """
    engine = search.evaluator.engine
    engine.cache.import_entries(checkpoint.cache_entries)
    search._history = checkpoint.restore_history()
    search._ledger = EvaluationLedger.from_checkpoint(checkpoint)
    search.rng.setstate(checkpoint.restore_rng_state())


def resolve_checkpoint(resume_from: Union[str, SearchCheckpoint], *,
                       algorithm: str, workload_id: str,
                       config: GevoConfig,
                       arch_name: Optional[str] = None) -> SearchCheckpoint:
    """Load and validate a checkpoint for one specific resume request.

    ``resume_from`` may be a path or an already-loaded checkpoint.  The
    checkpoint must have been written by the same *algorithm*, for the
    same *workload* (and *arch*, when both sides record one), under the
    same *config*; any mismatch raises :class:`SearchError` (resuming
    under different settings would silently produce a run that matches
    neither the old nor a fresh one).
    """
    checkpoint = (SearchCheckpoint.load(resume_from)
                  if isinstance(resume_from, str) else resume_from)
    if checkpoint.algorithm != algorithm:
        raise SearchError(
            f"checkpoint was written by the {checkpoint.algorithm!r} search, "
            f"not {algorithm!r}; use the matching subcommand (or start fresh)")
    if checkpoint.workload_id != workload_id:
        raise SearchError(
            f"checkpoint belongs to workload {checkpoint.workload_id!r}, "
            f"not {workload_id!r}")
    if (arch_name is not None and checkpoint.arch_name is not None
            and checkpoint.arch_name != arch_name):
        raise SearchError(
            f"checkpoint was recorded on architecture {checkpoint.arch_name!r}, "
            f"not {arch_name!r}; resume with the original --arch (or start fresh)")
    if checkpoint.restore_config() != config:
        raise SearchError(
            "checkpoint was recorded with a different configuration "
            f"({describe_config_mismatch(checkpoint.config, dataclasses.asdict(config))}); "
            "resume with the original configuration (or start a fresh search)")
    return checkpoint


def describe_config_mismatch(recorded: Dict[str, object],
                             requested: Dict[str, object]) -> str:
    """Name exactly which config fields differ between checkpoint and request.

    A silent resume into a mismatched run produces results matching
    neither the old run nor a fresh one, so the refusal must tell the
    user *which* flag to fix (``seed 7 -> 9``), not just that something
    differs.
    """
    differences = []
    for name in sorted(set(recorded) | set(requested)):
        old, new = recorded.get(name, "<absent>"), requested.get(name, "<absent>")
        if old != new:
            differences.append(f"{name}: checkpoint has {old!r}, requested {new!r}")
    return "; ".join(differences) if differences else "fields differ in type only"
