"""The shared evaluation engine: batch fitness evaluation over pluggable executors.

Every consumer of fitness values -- the GEVO generational loop, the
random-search and hill-climbing baselines, Algorithm 1/2 and the subset
sweep -- ultimately asks the same question: "what is the fitness of the
program with these edits applied?".  :class:`EvaluationEngine` answers it
through one batch API, ``evaluate_many(edit_sets)``, so a whole GA
generation or an epistasis pair-grid becomes a single concurrent wave:

* lookups go through the content-addressed :class:`~repro.runtime.cache.FitnessCache`
  (order-insensitive canonical keys, optional disk persistence);
* cache misses are deduplicated within the batch and dispatched to the
  configured executor -- :class:`SerialExecutor` runs them in-process,
  :class:`ParallelExecutor` fans them out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

The simulated GPU is fully deterministic (cycle-count timing, seeded
RNGs), so serial and parallel execution produce identical
:class:`~repro.gevo.fitness.FitnessResult`\\ s; the parity test in
``tests/runtime/test_engine.py`` pins that contract down.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutorError
from ..gevo.edits import Edit, edit_from_dict
from ..gevo.fitness import FitnessResult, WorkloadAdapter
from ..gevo.genome import apply_edits
from .cache import CacheKey, FitnessCache, canonical_edit_hash
from .faultpoints import kill_point
from .telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "BatchPlanner",
    "EngineStats",
    "EvaluationEngine",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "default_jobs",
]


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0`` (all cores, capped)."""
    return max(1, min(os.cpu_count() or 1, 16))


def _evaluate_one(adapter: WorkloadAdapter, original, edits: Sequence[Edit]) -> FitnessResult:
    applied = apply_edits(original, edits)
    return adapter.evaluate(applied.module)


# -- batch planning ------------------------------------------------------------------

class BatchPlanner:
    """Partition a wave of applied variants into co-batchable groups.

    Seam rule (see ``docs/ARCHITECTURE.md``): grouping keys on the
    *structural* JIT key of the applied module -- same decoded segment
    shapes and operand classes, with baked constants free to differ --
    never on workload-specific branches.  A group of >= ``min_group_size``
    variants is handed to the adapter's
    :meth:`~repro.gevo.fitness.WorkloadAdapter.evaluate_batched` in one
    stacked launch; everything else stays a singleton on the executor
    path.  Planning is purely an execution strategy: results are
    bit-for-bit identical either way (the device batch path falls back to
    solo launches for anything it cannot reproduce exactly).
    """

    def __init__(self, arch, min_group_size: int = 2):
        self.arch = arch
        self.min_group_size = max(2, int(min_group_size))

    def plan(self, modules: Sequence) -> Tuple[List[List[int]], List[int]]:
        """Split *modules* into ``(groups, singles)`` index lists.

        Groups preserve first-seen order and each group preserves input
        order, so the plan is deterministic for a given wave.
        """
        if self.arch is None:
            return [], list(range(len(modules)))
        from ..gpu.jitted import structural_module_key

        by_key: Dict[object, List[int]] = {}
        singles: List[int] = []
        for index, module in enumerate(modules):
            try:
                key = structural_module_key(module, self.arch)
            except Exception:  # pragma: no cover - defensive: unkeyable module
                singles.append(index)
                continue
            by_key.setdefault(key, []).append(index)
        groups: List[List[int]] = []
        for members in by_key.values():
            if len(members) >= self.min_group_size:
                groups.append(members)
            else:
                singles.extend(members)
        singles.sort()
        return groups, singles


# -- executors -----------------------------------------------------------------------

class Executor:
    """Strategy for running a batch of (deduplicated) fitness evaluations.

    Contract every implementation must honour (pinned by the parity and
    fault-handling batteries in ``tests/runtime/``):

    * :meth:`run_batch` returns one :class:`FitnessResult` per edit set,
      **in input order**, regardless of internal completion order;
    * results are **bit-for-bit identical** across executors -- the
      simulated GPU is deterministic, so serial, process-pool, async and
      sharded execution must agree exactly;
    * a failure mid-batch raises (ideally an
      :class:`~repro.errors.ExecutorError`) instead of returning partial
      results -- the engine only caches results from batches that
      completed, so a raising batch never corrupts the cache;
    * :meth:`close` releases resources and is idempotent; an executor
      must remain usable for a fresh batch after a failed one.

    Implementations override :meth:`_run_batch`; the public
    :meth:`run_batch` is a template that additionally emits
    ``executor.dispatch`` / ``executor.complete`` / ``executor.fault``
    telemetry events when a :class:`~repro.runtime.telemetry.Telemetry`
    handle is bound (see :meth:`bind_telemetry`) -- a single attribute
    check when telemetry is disabled.
    """

    name = "executor"
    #: Bound by the owning engine; the null handle is a true no-op.
    telemetry: Telemetry = NULL_TELEMETRY

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Attach the run's telemetry handle (events + worker plumbing)."""
        self.telemetry = telemetry

    def run_batch(self, adapter: WorkloadAdapter, original,
                  edit_sets: Sequence[Sequence[Edit]]) -> List[FitnessResult]:
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._run_batch(adapter, original, edit_sets)
        telemetry.event("executor.dispatch", executor=self.name,
                        batch=len(edit_sets), jobs=getattr(self, "jobs", 1))
        start = time.monotonic()
        try:
            results = self._run_batch(adapter, original, edit_sets)
        except Exception as exc:
            cause = exc.__cause__
            telemetry.event("executor.fault", executor=self.name,
                            batch=len(edit_sets), error=str(exc),
                            error_type=type(exc).__name__,
                            cause_type=(type(cause).__name__
                                        if cause is not None else None))
            telemetry.counter("executor.faults").inc()
            raise
        telemetry.event("executor.complete", executor=self.name,
                        batch=len(edit_sets),
                        seconds=time.monotonic() - start)
        return results

    def _run_batch(self, adapter: WorkloadAdapter, original,
                   edit_sets: Sequence[Sequence[Edit]]) -> List[FitnessResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""


class SerialExecutor(Executor):
    """Evaluate the batch one variant at a time in the calling process."""

    name = "serial"

    def _run_batch(self, adapter, original, edit_sets):
        return [_evaluate_one(adapter, original, edits) for edits in edit_sets]


# Worker-side state for ParallelExecutor.  Each worker unpickles the adapter
# exactly once (in the pool initializer) instead of once per task.
_worker_adapter: Optional[WorkloadAdapter] = None
_worker_original = None
_worker_telemetry: Telemetry = NULL_TELEMETRY


def _prewarm_worker_caches(adapter, module) -> None:
    """Pre-decode (and JIT-compile) *module* for the adapter's interpreter tier.

    The per-function decode cache is a ``WeakKeyDictionary`` of unpicklable
    artifacts, so it never travels to pool workers: without this, every
    worker re-decodes the original module (and re-fills the process-wide
    JIT factory cache) on its first evaluation.  Decoding once in the
    initializer makes the baseline/unmodified-module evaluations hit a
    warm cache and seeds the structural JIT cache every variant of the
    batch shares.  Purely an optimization: any failure is ignored and the
    first evaluation decodes on demand instead.
    """
    arch = getattr(adapter, "arch", None)
    functions = getattr(module, "functions", None)
    if arch is None or not functions:
        return
    try:
        from ..gpu.arch import normalize_interpreter_tier

        tier = normalize_interpreter_tier(getattr(arch, "fast_path", True))
        if tier == "oracle":
            return
        if tier == "jit":
            from ..gpu.batched import batched_program
            from ..gpu.jitted import jit_function as warm
        else:
            from ..gpu.decoded import decode_function as warm

            batched_program = None
        for function in functions.values():
            warm(function, arch)
            if batched_program is not None:
                # Also warm the batched launch factories so a pool worker
                # handed a batch group does not recompile them per group.
                batched_program(function, arch)
    except Exception:  # noqa: BLE001 - best-effort warm-up only
        pass


def _init_worker(adapter_payload: bytes,
                 telemetry_config: Optional[Dict[str, str]] = None) -> None:
    global _worker_adapter, _worker_original, _worker_telemetry
    _worker_adapter = pickle.loads(adapter_payload)
    _worker_original = _worker_adapter.original_module()
    # Each worker appends to its own events-worker-<pid>.jsonl stream;
    # the owning run's Telemetry.close() merges the parts.
    _worker_telemetry = Telemetry.from_worker_config(telemetry_config)
    _prewarm_worker_caches(_worker_adapter, _worker_original)


def _worker_evaluate(edit_dicts: List[Dict[str, object]]) -> FitnessResult:
    edits = [edit_from_dict(data) for data in edit_dicts]
    if not _worker_telemetry.enabled:
        return _evaluate_one(_worker_adapter, _worker_original, edits)
    with _worker_telemetry.span("worker.evaluate", edits=len(edits)):
        return _evaluate_one(_worker_adapter, _worker_original, edits)


class ParallelExecutor(Executor):
    """Fan evaluations out over a process pool.

    The adapter is pickled once and shipped to each worker through the
    pool initializer; tasks carry only the serialised edit list (via
    :meth:`Edit.to_dict`), so per-task overhead stays small.  Workers are
    started lazily on the first batch and torn down by :meth:`close`.
    """

    name = "parallel"

    def __init__(self, jobs: int):
        if jobs < 1:
            jobs = default_jobs()
        self.jobs = jobs
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Strong reference to the adapter the pool was built for -- also
        #: keeps ``id()`` stable for the identity check below.
        self._adapter: Optional[WorkloadAdapter] = None

    def _ensure_pool(self, adapter: WorkloadAdapter) -> ProcessPoolExecutor:
        if self._pool is not None and adapter is not self._adapter:
            # A different adapter invalidates the worker-side state.
            self.close()
        if self._pool is None:
            # Pickled exactly once per pool lifetime, not per batch.
            self._adapter = adapter
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(pickle.dumps(adapter),
                          self.telemetry.worker_config()),
            )
        return self._pool

    def _run_batch(self, adapter, original, edit_sets):
        if len(edit_sets) <= 1 or self.jobs == 1:
            # Not worth shipping to workers; keeps single lookups cheap.
            return SerialExecutor().run_batch(adapter, original, edit_sets)
        pool = self._ensure_pool(adapter)
        serialised = [[edit.to_dict() for edit in edits] for edits in edit_sets]
        chunksize = max(1, len(serialised) // (self.jobs * 4))
        try:
            return list(pool.map(_worker_evaluate, serialised, chunksize=chunksize))
        except BrokenProcessPool as exc:
            # A worker died (OOM kill, hard crash).  The pool is unusable:
            # tear it down so the *next* batch starts a fresh one, and
            # surface one clean error for this batch.  No partial results
            # reach the engine, so the cache stays consistent.
            self.close()
            raise ExecutorError(
                "a worker process died mid-batch (killed or crashed); "
                "the pool has been reset and the batch was not cached") from exc

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._adapter = None


def make_executor(jobs: int, kind: Optional[str] = None) -> Executor:
    """Build the executor for a ``--jobs N`` / ``--executor KIND`` request.

    With ``kind`` ``None``/``"auto"`` the historical rule applies:
    ``jobs == 1`` -> serial; anything else -> a process pool (``jobs < 1``
    means one worker per core, capped).  Explicit kinds: ``"serial"``,
    ``"process"`` (:class:`ParallelExecutor`), ``"async"``
    (:class:`~repro.runtime.executors.AsyncExecutor`) and ``"sharded"``
    (:class:`~repro.runtime.executors.ShardedExecutor`); for those,
    ``jobs`` sets the worker/lane count.
    """
    if kind in (None, "auto"):
        return SerialExecutor() if jobs == 1 else ParallelExecutor(jobs)
    if kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return ParallelExecutor(jobs)
    if kind in ("async", "sharded"):
        # Imported lazily: executors.py builds on the types defined here.
        from .executors import AsyncExecutor, ShardedExecutor

        return AsyncExecutor(jobs) if kind == "async" else ShardedExecutor(jobs)
    raise ValueError(f"unknown executor kind {kind!r} (expected 'auto', "
                     "'serial', 'process', 'async' or 'sharded')")


# -- the engine ----------------------------------------------------------------------

@dataclass
class EngineStats:
    """Snapshot of one engine's accounting."""

    evaluations: int
    cache_hits: int
    cache_misses: int
    executor: str
    jobs: int
    cache_size: int
    #: Seconds since the engine was created (the run's wall clock).
    wall_clock_seconds: float = 0.0
    #: Fresh evaluations per second of *executor-busy* time (time spent
    #: inside batch dispatch), the engine's throughput headline.
    evaluations_per_second: float = 0.0

    def summary(self) -> str:
        return (f"{self.evaluations} evaluations, {self.cache_hits} cache hits "
                f"({self.executor}, jobs={self.jobs}, {self.cache_size} cached, "
                f"{self.evaluations_per_second:.1f} evals/s, "
                f"{self.wall_clock_seconds:.1f}s wall)")

    def to_dict(self) -> Dict[str, object]:
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executor": self.executor,
            "jobs": self.jobs,
            "cache_size": self.cache_size,
            "wall_clock_seconds": self.wall_clock_seconds,
            "evaluations_per_second": self.evaluations_per_second,
        }


class EvaluationEngine:
    """Cached, batched fitness evaluation for one workload adapter.

    Parameters
    ----------
    adapter:
        The workload to evaluate against.
    executor:
        Batch execution strategy; defaults to :class:`SerialExecutor`.
    cache:
        A :class:`FitnessCache`; defaults to a fresh in-memory cache.
        Pass a shared instance to pool results across engines (e.g. the
        repeated-search experiment) or a disk-backed one to persist them.
    workload_id / arch_name:
        Cache-key namespace; derived from the adapter when omitted
        (``adapter.name`` and ``adapter.arch.name``).
    telemetry:
        A :class:`~repro.runtime.telemetry.Telemetry` handle; batch
        spans, cache counters and executor events flow through it.
        Defaults to the disabled null handle (a true no-op).
    batch_launches:
        Population batching: stack co-batchable cache misses (same
        structural JIT key) into one :class:`BatchPlanner` group and
        evaluate the group through the adapter's ``evaluate_batched``
        stacked launch.  ``None`` (the default) enables it exactly when
        the executor is serial -- a process pool already amortizes Python
        overhead across workers; ``True``/``False`` force it either way.
        Purely an execution strategy: results are bit-for-bit identical.
    """

    def __init__(self, adapter: WorkloadAdapter, *,
                 executor: Optional[Executor] = None,
                 cache: Optional[FitnessCache] = None,
                 workload_id: Optional[str] = None,
                 arch_name: Optional[str] = None,
                 telemetry: Optional[Telemetry] = None,
                 batch_launches: Optional[bool] = None):
        self.adapter = adapter
        self.executor = executor or SerialExecutor()
        self.cache = cache if cache is not None else FitnessCache()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.executor.bind_telemetry(self.telemetry)
        self.original = adapter.original_module()
        arch = getattr(adapter, "arch", None)
        self.batch_launches = batch_launches
        self._planner = BatchPlanner(arch)
        self.workload_id = workload_id or getattr(adapter, "name", type(adapter).__name__)
        self.arch_name = arch_name or (getattr(arch, "name", None) or "default")
        #: Number of actual adapter evaluations performed (cache misses executed).
        self.evaluations = 0
        #: Wall-clock seconds spent inside executor batch dispatch.
        self.batch_seconds = 0.0
        self._created = time.perf_counter()

    # -- keys --------------------------------------------------------------------------
    def cache_key(self, edits: Sequence[Edit]) -> CacheKey:
        return CacheKey(self.workload_id, self.arch_name, canonical_edit_hash(edits))

    # -- evaluation --------------------------------------------------------------------
    def evaluate(self, edits: Sequence[Edit]) -> FitnessResult:
        """Evaluate one edit list (through the cache)."""
        return self.evaluate_many([edits])[0]

    def evaluate_many(self, edit_sets: Sequence[Sequence[Edit]]) -> List[FitnessResult]:
        """Evaluate a batch of edit lists in one concurrent wave.

        Results come back in input order.  Within the batch, edit sets with
        the same canonical key are evaluated once; previously seen sets are
        served from the cache without touching the executor.

        Invariants (pinned by ``tests/runtime/``):

        * cache keys are **order-insensitive** over the edit multiset
          (:func:`~repro.runtime.cache.canonical_edit_hash`), so permuted
          but identical edit lists share one entry;
        * results are bit-for-bit identical whichever executor runs the
          misses (the simulated GPU is deterministic);
        * an executor failure propagates **before** any of the batch's
          results are cached -- a raising batch never corrupts the cache
          or a checkpoint derived from it;
        * a warm cache (disk tier or checkpoint import) means **zero
          re-evaluation**: resumed searches never re-simulate a variant
          measured before the interruption.
        """
        keys = [self.cache_key(edits) for edits in edit_sets]
        results: List[Optional[FitnessResult]] = [self.cache.get(key) for key in keys]

        pending: Dict[CacheKey, int] = {}
        pending_sets: List[Sequence[Edit]] = []
        for index, (key, result) in enumerate(zip(keys, results)):
            if result is None and key not in pending:
                pending[key] = len(pending_sets)
                pending_sets.append(edit_sets[index])

        telemetry = self.telemetry
        if telemetry.enabled:
            misses = sum(1 for result in results if result is None)
            telemetry.counter("cache.hits").inc(len(results) - misses)
            telemetry.counter("cache.misses").inc(misses)

        if pending_sets:
            start = time.perf_counter()
            with telemetry.span("engine.batch", workload=self.workload_id,
                                arch=self.arch_name, executor=self.executor.name,
                                jobs=getattr(self.executor, "jobs", 1),
                                batch=len(edit_sets),
                                fresh=len(pending_sets)):
                fresh = self._run_pending(pending_sets)
            self.batch_seconds += time.perf_counter() - start
            self.evaluations += len(fresh)
            telemetry.counter("engine.evaluations").inc(len(fresh))
            telemetry.counter("engine.batches").inc()
            for key, slot in pending.items():
                self.cache.put(key, fresh[slot])
            for index, key in enumerate(keys):
                if results[index] is None:
                    results[index] = fresh[pending[key]]
            # Interval defaults to the cache store's own flush_interval:
            # rate-limited for the whole-file JSON tier, every batch for
            # the incremental SQLite tier.
            if self.cache.maybe_save():
                telemetry.counter("cache.flushes").inc()
            # The nastiest crash window for resume determinism: results
            # are flushed to the persistent cache, but the round that
            # produced them has not been checkpointed yet.
            kill_point("engine.batch.cached")

        return results  # type: ignore[return-value]

    @property
    def batch_launches_enabled(self) -> bool:
        """Resolved population-batching switch (``None`` -> serial only)."""
        if self.batch_launches is not None:
            return self.batch_launches
        return isinstance(self.executor, SerialExecutor)

    def _run_pending(self, pending_sets: Sequence[Sequence[Edit]]) -> List[FitnessResult]:
        """Run the deduplicated cache misses of one wave.

        With population batching off (or nothing to group) this is exactly
        the executor dispatch it always was.  With it on, the wave's
        variants are applied, partitioned by :class:`BatchPlanner`, and
        each group evaluated through the adapter's stacked
        ``evaluate_batched`` launch; singletons keep the executor path.
        Results are bit-for-bit identical either way and come back in
        input order.
        """
        if len(pending_sets) < 2 or not self.batch_launches_enabled:
            return self.executor.run_batch(self.adapter, self.original,
                                           pending_sets)
        modules = [apply_edits(self.original, edits).module
                   for edits in pending_sets]
        groups, singles = self._planner.plan(modules)
        if not groups:
            return self.executor.run_batch(self.adapter, self.original,
                                           pending_sets)
        telemetry = self.telemetry
        fresh: List[Optional[FitnessResult]] = [None] * len(pending_sets)
        for members in groups:
            group_results = self.adapter.evaluate_batched(
                [modules[index] for index in members])
            for member, result in zip(members, group_results):
                fresh[member] = result
            if telemetry.enabled:
                telemetry.counter("engine.batch_groups").inc()
                telemetry.counter("engine.batched_launches").inc(len(members))
                telemetry.histogram("engine.batch_size").observe(
                    float(len(members)))
        if singles:
            solo = self.executor.run_batch(
                self.adapter, self.original,
                [pending_sets[index] for index in singles])
            for index, result in zip(singles, solo):
                fresh[index] = result
        return fresh  # type: ignore[return-value]

    def baseline(self) -> FitnessResult:
        """Fitness of the unmodified program (cached like any other set)."""
        return self.evaluate([])

    # -- bookkeeping -------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return self.cache.stats.hits

    @property
    def cache_misses(self) -> int:
        return self.cache.stats.misses

    def stats(self) -> EngineStats:
        return EngineStats(
            evaluations=self.evaluations,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            executor=self.executor.name,
            jobs=getattr(self.executor, "jobs", 1),
            cache_size=len(self.cache),
            wall_clock_seconds=time.perf_counter() - self._created,
            evaluations_per_second=(self.evaluations / self.batch_seconds
                                    if self.batch_seconds > 0 else 0.0),
        )

    def record_stats_metrics(self) -> None:
        """Snapshot :meth:`stats` into the telemetry metrics registry."""
        if not self.telemetry.enabled:
            return
        stats = self.stats()
        self.telemetry.gauge("engine.wall_clock_seconds").set(
            stats.wall_clock_seconds)
        self.telemetry.gauge("engine.evaluations_per_second").set(
            stats.evaluations_per_second)
        self.telemetry.gauge("engine.cache_size").set(stats.cache_size)

    def close(self) -> None:
        """Flush the cache, release its disk tier and stop the executor."""
        self.record_stats_metrics()
        self.cache.close()
        self.executor.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
