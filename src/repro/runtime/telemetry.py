"""Run-scoped telemetry: a structured event log plus a metrics registry.

Every layer of the evaluation runtime that used to narrate itself with
ad-hoc ``print()`` lines now emits through one :class:`Telemetry` handle:

* **events** -- point events and spans written as JSONL records (see
  :mod:`repro.runtime.trace_format` for the schema and merge rules) to a
  per-emitter stream under a trace directory, and fanned out to any
  attached *sinks* (the console reporter in
  :mod:`repro.runtime.console`, later the service arc's progress
  stream);
* **metrics** -- counters, gauges and histograms in a
  :class:`MetricsRegistry`, snapshotted to ``metrics.json`` on close.

Design constraints (pinned by ``tests/runtime/test_telemetry.py``):

* **A disabled handle is a true no-op**: the guard is one attribute
  check (``self.enabled``), nothing allocates, no file is ever touched.
  The module-level :data:`NULL_TELEMETRY` is the default everywhere, so
  library callers that never ask for tracing pay one ``if`` per
  *batch/generation/leg* -- instrumentation sits at engine / executor /
  search granularity, never inside the simulator's hot loops (the
  ``repro.gpu`` interpreter tiers do not import this module at all).
* **Multi-process streams merge deterministically**: every record
  carries the run id, the emitter id (main process or pool worker) and
  a per-emitter sequence number; :func:`~repro.runtime.trace_format.merge_trace_dir`
  folds the per-worker part files into one total order on close.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from .cache import atomic_write_text
from .trace_format import (
    EVENT_PART_PREFIX,
    METRICS_FILE,
    TRACE_FORMAT_VERSION,
    TraceEvent,
    format_event_line,
    merge_trace_dir,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "NULL_TELEMETRY",
    "new_run_id",
    "telemetry_of",
    "emit_module_hotspots",
]


def new_run_id() -> str:
    """A fresh, sortable, file-safe run identifier.

    Wall-clock prefix for humans (traces sort chronologically in a
    directory listing), random suffix for uniqueness across concurrent
    runs.  The same ids tag ``BENCH_simulator.json`` entries so bench
    trajectory points are joinable to the traces they came from.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


# -- metrics --------------------------------------------------------------------------

class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self):
        return self.value


class Histogram:
    """Streaming summary of an observed distribution (no samples kept)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {"count": self.count, "total": self.total, "mean": self.mean,
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0}


class _NullMetric:
    """Accepts every update and records nothing (the disabled tier)."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self):
        return 0


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named counters / gauges / histograms with a JSON snapshot."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self.counters.get(name)
            if metric is None:
                metric = self.counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self.gauges.get(name)
            if metric is None:
                metric = self.gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self.histograms.get(name)
            if metric is None:
                metric = self.histograms[name] = Histogram()
            return metric

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {
                "counters": {name: metric.snapshot()
                             for name, metric in sorted(self.counters.items())},
                "gauges": {name: metric.snapshot()
                           for name, metric in sorted(self.gauges.items())},
                "histograms": {name: metric.snapshot()
                               for name, metric in sorted(self.histograms.items())},
            }


# -- the handle -----------------------------------------------------------------------

class Telemetry:
    """One run's telemetry: event emission + metrics, or a guaranteed no-op.

    Parameters
    ----------
    trace_dir:
        Directory for the JSONL event stream and ``metrics.json``.
        ``None`` keeps everything off disk (events still reach attached
        sinks and metrics still accumulate when *enabled*).
    enabled:
        Master switch; defaults to ``trace_dir is not None``.  A
        disabled handle never opens a file, never allocates a record and
        never calls a sink -- the hot-path guard is the single
        ``self.enabled`` attribute check at the top of every method.
    run_id / emitter:
        Stamped into every record.  The default emitter is ``"main"``;
        pool workers use ``worker-<pid>`` (see :meth:`worker_config`).
    """

    def __init__(self, trace_dir: Optional[str] = None, *,
                 run_id: Optional[str] = None,
                 emitter: str = "main",
                 enabled: Optional[bool] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.enabled = bool(trace_dir is not None if enabled is None else enabled)
        self.trace_dir = trace_dir
        self.emitter = emitter
        self.run_id = run_id or (new_run_id() if self.enabled else "")
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry() if self.enabled else None)
        self._seq = 0
        self._lock = threading.Lock()
        self._sinks: List[Callable[[TraceEvent], None]] = []
        self._handle = None
        self._closed = False
        if self.enabled and trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            path = os.path.join(trace_dir,
                                f"{EVENT_PART_PREFIX}{self.emitter}.jsonl")
            self._handle = open(path, "a", encoding="utf-8")

    # -- sinks -------------------------------------------------------------------------
    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        """Attach *sink*; it receives every record this handle emits."""
        self._sinks.append(sink)

    # -- emission ----------------------------------------------------------------------
    def event(self, name: str, **fields) -> Optional[TraceEvent]:
        """Emit one point event (a no-op when disabled)."""
        if not self.enabled:
            return None
        return self._emit("event", name, time.monotonic(), None, fields)

    @contextmanager
    def span(self, name: str, **fields) -> Iterator[Dict[str, object]]:
        """Time a block; the span record is emitted when the block exits.

        Yields the mutable ``fields`` dict so the block can attach
        results (counts, status) that are only known at the end.
        """
        if not self.enabled:
            yield fields
            return
        start = time.monotonic()
        try:
            yield fields
        finally:
            self._emit("span", name, start, time.monotonic() - start, fields)

    def _emit(self, kind: str, name: str, t: float, dur: Optional[float],
              fields: Dict[str, object]) -> TraceEvent:
        with self._lock:
            self._seq += 1
            event = TraceEvent(run_id=self.run_id, emitter=self.emitter,
                               seq=self._seq, kind=kind, name=name, t=t,
                               dur=dur, fields=fields)
            if self._handle is not None:
                # Flushed per record so a killed worker loses at most the
                # line being written (readers skip a torn tail).
                self._handle.write(format_event_line(event) + "\n")
                self._handle.flush()
        for sink in self._sinks:
            sink(event)
        return event

    # -- metrics -----------------------------------------------------------------------
    def counter(self, name: str):
        if not self.enabled or self.metrics is None:
            return _NULL_METRIC
        return self.metrics.counter(name)

    def gauge(self, name: str):
        if not self.enabled or self.metrics is None:
            return _NULL_METRIC
        return self.metrics.gauge(name)

    def histogram(self, name: str):
        if not self.enabled or self.metrics is None:
            return _NULL_METRIC
        return self.metrics.histogram(name)

    def metrics_snapshot(self) -> Dict[str, object]:
        """The metrics document (also what ``metrics.json`` holds)."""
        document: Dict[str, object] = {
            "version": TRACE_FORMAT_VERSION,
            "run_id": self.run_id,
        }
        if self.metrics is not None:
            document.update(self.metrics.snapshot())
        return document

    def write_metrics(self) -> Optional[str]:
        """Write ``metrics.json`` under the trace dir; returns its path."""
        if not self.enabled or self.trace_dir is None:
            return None
        path = os.path.join(self.trace_dir, METRICS_FILE)
        atomic_write_text(
            path, json.dumps(self.metrics_snapshot(), indent=2,
                             sort_keys=True) + "\n")
        return path

    # -- multi-process plumbing --------------------------------------------------------
    def worker_config(self) -> Optional[Dict[str, str]]:
        """Picklable config for a pool worker's own handle, or ``None``.

        ``None`` (tracing disabled, or no trace dir to share) tells the
        worker to use :data:`NULL_TELEMETRY`.
        """
        if not self.enabled or self.trace_dir is None:
            return None
        return {"trace_dir": self.trace_dir, "run_id": self.run_id}

    @classmethod
    def from_worker_config(cls, config: Optional[Dict[str, str]]) -> "Telemetry":
        if not config:
            return NULL_TELEMETRY
        return cls(config["trace_dir"], run_id=config["run_id"],
                   emitter=f"worker-{os.getpid()}")

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        """Flush, merge the per-emitter streams and snapshot the metrics.

        Only the main emitter merges (workers just close their part
        file; their records fold in when the owning run closes).
        Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self.enabled and self.trace_dir is not None and self.emitter == "main":
            merge_trace_dir(self.trace_dir)
            self.write_metrics()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: The shared disabled handle: the default for every instrumented layer.
NULL_TELEMETRY = Telemetry(enabled=False)


def telemetry_of(engine) -> Telemetry:
    """The telemetry handle of an engine-like object (never ``None``)."""
    return getattr(engine, "telemetry", None) or NULL_TELEMETRY


def emit_module_hotspots(telemetry: Telemetry, adapter, module, *,
                         label: str, top: int = 10) -> bool:
    """Profile one in-process evaluation of *module* and emit its hotspots.

    Runs ``adapter.evaluate(module)`` on the adapter's own device (which
    records a :class:`~repro.gpu.profiler.ProfileCollector` per launch)
    and emits a ``profile.hotspots`` event with the top instructions by
    attributed cycles.  Strictly opt-in -- callers invoke this once per
    run/leg when tracing is on, so the extra evaluation never taxes an
    untraced run.  Best-effort: adapters without an in-process device
    (or a trapped evaluation) simply emit nothing.
    """
    if not telemetry.enabled:
        return False
    device = getattr(adapter, "device", None)
    if device is None or module is None:
        return False
    previous = getattr(device, "profile_enabled", False)
    device.profile_enabled = True
    try:
        adapter.evaluate(module)
    except Exception:  # noqa: BLE001 - profiling must never fail the run
        return False
    finally:
        device.profile_enabled = previous
    profile = getattr(device, "last_profile", None)
    if profile is None or not getattr(profile, "instructions", None):
        return False
    hotspots = [
        {"location": spot.location or "<unknown>", "opcode": spot.opcode,
         "cycles": spot.cycles, "executions": spot.executions}
        for spot in profile.hottest(top)
    ]
    telemetry.event("profile.hotspots", label=label, hotspots=hotspots)
    return True
