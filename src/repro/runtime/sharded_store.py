"""Sharded SQLite tier of the fitness cache.

One WAL-mode SQLite database (:mod:`repro.runtime.sqlite_store`) already
makes flushes O(dirty entries), but it still serialises *writers*: SQLite
allows a single writing process per database file, so concurrent sweep
legs -- several ``repro sweep`` processes pointed at one shared cache, or
sharded lanes flushing from one process -- would all contend on one WAL
file.  This store removes that bottleneck by partitioning the key space:

* the cache lives in a **directory** holding N independent SQLite shards
  (``shard-00.sqlite`` ... ``shard-NN.sqlite``) plus a tiny
  ``shards.json`` manifest recording the shard count;
* every key is routed by :func:`~repro.runtime.cache.shard_index` over
  the canonical edit hash -- the same stable partition function the
  :class:`~repro.runtime.executors.ShardedExecutor` uses for its lanes --
  so two writers touching different keys usually touch different shard
  files and never rewrite each other's rows;
* :meth:`load` merges all shards; :meth:`flush` groups dirty keys per
  shard and flushes only the shards that own dirty rows, each through the
  plain :class:`~repro.runtime.sqlite_store.SqliteCacheStore` (and
  therefore with its crash-safety and corrupt-file-degradation
  behaviour, shard by shard).

The shard count is fixed at creation time (rerouting keys after rows
exist would orphan them): reopening an existing store keeps the manifest
count and ignores a conflicting ``shards=`` argument.  A missing manifest
falls back to counting the shard files on disk.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Set

from .cache import (
    CACHE_FORMAT_VERSION,
    CacheKey,
    CacheStore,
    atomic_write_json,
    shard_index,
)
from .sqlite_store import SqliteCacheStore

#: Default shard count for a freshly created store.
DEFAULT_SHARDS = 4

_MANIFEST_NAME = "shards.json"
_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".sqlite"


class ShardedCacheStore(CacheStore):
    """A directory of N SQLite shards with hash-partitioned keys."""

    backend = "sharded"
    #: Flushes touch only the shards owning dirty rows; no rate limit needed.
    flush_interval = 0.0

    def __init__(self, path: str, shards: Optional[int] = None):
        super().__init__(path)
        os.makedirs(path, exist_ok=True)
        self.shards = self._resolve_shard_count(shards)
        self._stores: List[SqliteCacheStore] = [
            SqliteCacheStore(self.shard_path(index))
            for index in range(self.shards)
        ]
        self._write_manifest()

    # -- layout ------------------------------------------------------------------------
    def shard_path(self, index: int) -> str:
        return os.path.join(self.path, f"{_SHARD_PREFIX}{index:02d}{_SHARD_SUFFIX}")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.path, _MANIFEST_NAME)

    def _resolve_shard_count(self, requested: Optional[int]) -> int:
        """Existing manifest > existing shard files > requested > default."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            count = int(manifest["shards"])
            if count >= 1:
                return count
        except (OSError, ValueError, KeyError, TypeError):
            pass
        on_disk = [name for name in os.listdir(self.path)
                   if name.startswith(_SHARD_PREFIX) and name.endswith(_SHARD_SUFFIX)]
        if on_disk:
            return len(on_disk)
        if requested is not None and requested >= 1:
            return requested
        return DEFAULT_SHARDS

    def _write_manifest(self) -> None:
        document = {"version": CACHE_FORMAT_VERSION, "shards": self.shards}
        atomic_write_json(self.manifest_path, document)

    def _shard_for(self, key: CacheKey) -> SqliteCacheStore:
        return self._stores[shard_index(key.edit_hash, self.shards)]

    # -- CacheStore interface ----------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, object]]:
        entries: Dict[str, Dict[str, object]] = {}
        for store in self._stores:
            entries.update(store.load())
        return entries

    def flush(self, entries, dirty_keys: Set[CacheKey]) -> None:
        per_shard: Dict[int, Set[CacheKey]] = {}
        for key in dirty_keys:
            per_shard.setdefault(shard_index(key.edit_hash, self.shards), set()).add(key)
        flushed = 0
        for index, keys in sorted(per_shard.items()):
            self._stores[index].flush(entries, keys)
            flushed += self._stores[index].last_flush_count
        self.last_flush_count = flushed

    def close(self) -> None:
        for store in self._stores:
            store.close()
