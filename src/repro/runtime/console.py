"""Logging-based console reporting that doubles as a telemetry sink.

The CLI used to narrate runs with ad-hoc ``print()`` lines, which meant
the human-facing status and the (new) machine-readable event log were
produced by different code and could drift apart.  This module replaces
that with one path:

* :func:`configure_console` sets up the ``repro`` logger hierarchy with
  a handler that resolves ``sys.stdout`` *at emit time* (so pytest's
  ``capsys`` and any stream redirection keep working), mapped from the
  CLI's ``--quiet`` / ``--verbose`` flags;
* :class:`ConsoleReporter` is a :class:`~repro.runtime.telemetry.Telemetry`
  *sink*: attach it with ``telemetry.add_sink(reporter)`` and the
  telemetry events themselves drive the progress lines -- one emission,
  two consumers (the JSONL trace and the console), zero drift.

Severity mapping: per-leg sweep progress renders at INFO (the default),
per-generation / per-wave search progress and checkpoint writes at DEBUG
(visible with ``--verbose``); ``--quiet`` raises the threshold to
WARNING so only problems surface.
"""

from __future__ import annotations

import logging
import sys

from .trace_format import TraceEvent

__all__ = ["ConsoleReporter", "configure_console", "console_logger"]

LOGGER_NAME = "repro"


class _DynamicStdoutHandler(logging.StreamHandler):
    """A StreamHandler that looks up ``sys.stdout`` on every emit.

    A plain ``StreamHandler(sys.stdout)`` captures the stream object at
    configure time; test harnesses (and anything else) that swap
    ``sys.stdout`` later would silently lose the output.
    """

    def __init__(self):
        super().__init__(stream=None)

    @property
    def stream(self):
        return sys.stdout

    @stream.setter
    def stream(self, value):  # the base class assigns in __init__; ignore
        pass


def console_logger(name: str = "") -> logging.Logger:
    """The ``repro`` console logger (or a child, e.g. ``cli``/``sweep``)."""
    return logging.getLogger(f"{LOGGER_NAME}.{name}" if name else LOGGER_NAME)


def configure_console(*, quiet: bool = False, verbose: bool = False) -> logging.Logger:
    """Configure the console logger for one CLI invocation; idempotent."""
    logger = logging.getLogger(LOGGER_NAME)
    logger.propagate = False
    if quiet:
        logger.setLevel(logging.WARNING)
    elif verbose:
        logger.setLevel(logging.DEBUG)
    else:
        logger.setLevel(logging.INFO)
    if not any(isinstance(handler, _DynamicStdoutHandler)
               for handler in logger.handlers):
        handler = _DynamicStdoutHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
    return logger


class ConsoleReporter:
    """Renders telemetry events as log lines (attach as a telemetry sink)."""

    def __init__(self, logger: logging.Logger = None):
        self.logger = logger if logger is not None else console_logger()

    # -- the sink entry point ----------------------------------------------------------
    def __call__(self, event: TraceEvent) -> None:
        renderer = getattr(self, "_render_" + event.name.replace(".", "_"), None)
        if renderer is not None:
            renderer(event.fields, event)

    # -- per-event renderers -----------------------------------------------------------
    def _render_sweep_leg(self, fields, event) -> None:
        self.logger.info(
            "  [%9s] %s: %.3fx, %s evaluations (%s fresh, %.1fs)",
            fields.get("status", "?"), fields.get("leg_id", "?"),
            float(fields.get("speedup", 0.0)), fields.get("evaluations", 0),
            fields.get("fresh_evaluations", 0), event.dur or 0.0)

    def _render_search_generation(self, fields, event) -> None:
        best = fields.get("best_fitness")
        self.logger.debug(
            "  generation %s: best %s, %s evaluations (stagnation %s)",
            fields.get("generation", "?"),
            f"{best:.4f} ms" if isinstance(best, (int, float)) else "-",
            fields.get("evaluations", 0), fields.get("stagnation", 0))

    def _render_search_step(self, fields, event) -> None:
        self.logger.debug(
            "  step %s: %s (best %s ms)", fields.get("step", "?"),
            "accepted" if fields.get("accepted") else "rejected",
            fields.get("best_fitness", "-"))

    def _render_search_checkpoint(self, fields, event) -> None:
        self.logger.debug("  checkpoint written: %s (round %s)",
                          fields.get("path", "?"), fields.get("round", "?"))

    def _render_executor_fault(self, fields, event) -> None:
        self.logger.warning("executor fault (%s): %s",
                            fields.get("executor", "?"),
                            fields.get("error", "unknown error"))
