"""SQLite tier of the fitness cache.

The JSON tier (:class:`~repro.runtime.cache.JsonCacheStore`) rewrites the
whole document on every flush -- O(cache size) I/O per save, which is fine
for a few hundred entries and hopeless for the million-evaluation sweeps
the ROADMAP aims at.  This store keeps one row per cache entry in a
WAL-mode SQLite database and, on flush, upserts **only** the entries added
or changed since the last flush, so flush cost is O(dirty entries).

Properties the durability tests pin down:

* **Incremental flushes** -- ``flush`` runs one transaction of
  ``INSERT ... ON CONFLICT DO UPDATE`` over the dirty keys; the table is
  never rewritten.
* **Crash safety** -- a failure mid-flush aborts the transaction; the
  previously committed rows remain loadable (SQLite's journal guarantees
  this even across process death).
* **Concurrent readers** -- WAL mode lets other processes read the cache
  while a writer is flushing; readers see the last committed snapshot.
* **Disposability without destruction** -- like the JSON tier, a corrupt
  or truncated database file loads as an *empty* cache; the unusable
  file is renamed to ``<path>.corrupt`` (never deleted -- it might be a
  mistyped ``--cache`` pointing at a file that is not a cache at all)
  and a fresh database is created in its place.
* **Migration** -- opening a path that currently holds a JSON cache
  document converts it to SQLite in place, once: entries are imported,
  the database atomically replaces the JSON file, and subsequent opens
  are plain SQLite.  (Auto-detection in :func:`make_cache_store` keeps a
  ``.json`` path on the JSON tier unless the SQLite backend is requested
  explicitly.)
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Dict, Optional, Set

from .cache import (
    CACHE_FORMAT_VERSION,
    CacheKey,
    CacheStore,
    SQLITE_MAGIC,
    read_json_cache_document,
    result_to_dict,
)
from ..gevo.fitness import FitnessResult

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    key TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
"""

_UPSERT = """
INSERT INTO entries (key, payload) VALUES (?, ?)
ON CONFLICT(key) DO UPDATE SET payload = excluded.payload
"""


class SqliteCacheStore(CacheStore):
    """One-row-per-entry fitness-cache store backed by WAL-mode SQLite."""

    backend = "sqlite"
    #: Flushes are O(dirty rows); no reason to rate-limit the hot path.
    flush_interval = 0.0

    def __init__(self, path: str):
        super().__init__(path)
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection management ---------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self._conn = self._open()
        return self._conn

    def _open(self) -> sqlite3.Connection:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        migrated = self._read_migratable_json()
        if migrated is not None:
            self._migrate_json(migrated)
        elif self._exists_but_not_sqlite():
            # Neither SQLite nor a compatible JSON cache: set it aside
            # (it may be a mistyped --cache path) and start empty.
            self._set_aside_unusable_file()
        try:
            return self._prepare(sqlite3.connect(self.path))
        except sqlite3.DatabaseError:
            # Truncated/corrupt database: degrade to an empty cache, like
            # the JSON tier does with unparseable documents.
            self._set_aside_unusable_file()
            return self._prepare(sqlite3.connect(self.path))

    def _migrate_json(self, migrated: Dict[str, str]) -> None:
        """One-time JSON -> SQLite conversion, atomic w.r.t. the JSON file.

        The database is built next to the JSON cache and atomically renamed
        over it, so a crash mid-migration leaves the original JSON document
        intact and re-triggers the migration on the next open.
        """
        temp_path = self.path + ".migrate"
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        conn = self._prepare(sqlite3.connect(temp_path))
        try:
            with conn:
                conn.executemany(_UPSERT, list(migrated.items()))
        finally:
            # Closing the last connection checkpoints the WAL back into the
            # main file, so the rename moves a self-contained database.
            conn.close()
        os.replace(temp_path, self.path)

    def _prepare(self, conn: sqlite3.Connection) -> sqlite3.Connection:
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            with conn:
                version = conn.execute(
                    "SELECT value FROM meta WHERE key = 'version'").fetchone()
                if version is None:
                    conn.execute("INSERT INTO meta (key, value) VALUES ('version', ?)",
                                 (str(CACHE_FORMAT_VERSION),))
                elif version[0] != str(CACHE_FORMAT_VERSION):
                    # Incompatible caches are stale data, not errors: start
                    # over (mirrors the JSON tier ignoring old versions).
                    conn.execute("DELETE FROM entries")
                    conn.execute("UPDATE meta SET value = ? WHERE key = 'version'",
                                 (str(CACHE_FORMAT_VERSION),))
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _exists_but_not_sqlite(self) -> bool:
        try:
            with open(self.path, "rb") as handle:
                header = handle.read(len(SQLITE_MAGIC))
        except OSError:
            return False
        # A zero-length file is what sqlite3.connect itself creates for a
        # fresh database; leave it alone.
        return bool(header) and header != SQLITE_MAGIC

    def _read_migratable_json(self) -> Optional[Dict[str, str]]:
        """Entries of a JSON cache document living at :attr:`path`, if any.

        Returns ``None`` when the path is missing, already SQLite, or not a
        compatible JSON cache; otherwise the key -> payload-text map to
        seed the fresh database with (the one-time migration).  Parsing and
        validation are shared with the JSON tier via
        :func:`~repro.runtime.cache.read_json_cache_document`.
        """
        if self._exists_but_not_sqlite() is False:
            return None
        entries = read_json_cache_document(self.path)
        if entries is None:
            return None
        return {key: json.dumps(payload) for key, payload in entries.items()}

    def _set_aside_unusable_file(self) -> None:
        """Make room for a fresh database without destroying user data.

        The unusable file is renamed to ``<path>.corrupt`` (replacing any
        previous set-aside), so a mistyped ``--cache`` never deletes the
        file it pointed at; WAL sidecars of the broken database are
        meaningless without it and are removed.
        """
        self.close()
        if os.path.exists(self.path):
            os.replace(self.path, self.path + ".corrupt")
        for suffix in ("-wal", "-shm"):
            target = self.path + suffix
            if os.path.exists(target):
                os.unlink(target)

    # -- CacheStore interface ----------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, object]]:
        if not os.path.exists(self.path):
            return {}
        try:
            rows = self._connection().execute(
                "SELECT key, payload FROM entries").fetchall()
        except sqlite3.DatabaseError:
            self._set_aside_unusable_file()
            return {}
        entries: Dict[str, Dict[str, object]] = {}
        for key, payload in rows:
            try:
                entries[key] = json.loads(payload)
            except ValueError:
                continue
        return entries

    def flush(self, entries: Dict[CacheKey, FitnessResult],
              dirty_keys: Set[CacheKey]) -> None:
        ordered = [key for key in sorted(dirty_keys, key=CacheKey.to_string)
                   if key in entries]

        def rows():
            for key in ordered:
                yield key.to_string(), json.dumps(result_to_dict(entries[key]))

        conn = self._connection()
        # executemany consumes the generator inside one transaction: a
        # failure mid-iteration (or mid-write) rolls the whole flush back,
        # leaving the previously committed rows untouched.
        with conn:
            conn.executemany(_UPSERT, rows())
        self.last_flush_count = len(ordered)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
