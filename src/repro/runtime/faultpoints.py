"""Deterministic kill points for crash-exactness testing.

The checkpoint/resume guarantee ("a resumed run reproduces the
uninterrupted run bit-for-bit") is only as strong as the worst place a
process can die.  A timer-based SIGKILL exercises *one* lucky spot per
test run; this module instead threads named **kill points** through the
round loops (``search.round.*``), the engine's post-flush window
(``engine.batch.cached``), checkpoint writes (``checkpoint.save``) and
the sweep orchestrator (``sweep.leg.*``), so a test can crash the run at
*every* interesting point, deterministically, and assert that resume is
exact from each one.

Two ways to arm a kill point:

* **In-process** (tier-1 tests): :func:`arm` a ``(point, occurrence)``
  pair; the Nth time that point is hit, :class:`SimulatedCrash` is
  raised.  It derives from :class:`BaseException` so no ``except
  Exception`` handler between the kill point and the test can swallow
  it -- the same "nothing runs after this" property a real SIGKILL has.
  The test then discards every in-memory object (as process death
  would) and resumes from the on-disk state with a fresh object graph.
* **Cross-process** (slow-tier and CI e2e): set the environment
  variable :data:`ENV_VAR` (``REPRO_KILL_POINT``) to ``"<point>"`` or
  ``"<point>:<occurrence>"`` before launching the CLI; the armed
  process sends itself a real ``SIGKILL`` at that hit -- an
  uncooperative death at a deterministic program point.

When nothing is armed, :func:`kill_point` is one module-level attribute
check; the hot simulator paths carry no kill points at all (the
instrumented sites are per-round / per-batch, not per-instruction).

:func:`observe` arms a counting-only pass: nothing fires, but
:func:`hit_counts` afterwards reports how often each point was reached,
which is how the crash battery in ``tests/runtime/test_crash_resume.py``
enumerates every (point, occurrence) pair for a given scenario instead
of hard-coding a schedule.
"""

from __future__ import annotations

import os
import signal
from typing import Callable, Dict, Optional

__all__ = [
    "ENV_VAR",
    "SimulatedCrash",
    "arm",
    "disarm",
    "hit_counts",
    "kill_point",
    "observe",
]

#: ``REPRO_KILL_POINT="search.round.scored:25"`` makes the process
#: SIGKILL itself the 25th time that point is reached.
ENV_VAR = "REPRO_KILL_POINT"


class SimulatedCrash(BaseException):
    """An armed kill point fired.

    Derives from :class:`BaseException` (like ``SystemExit``) so the
    crash propagates through ``except Exception`` fault handlers exactly
    the way a real SIGKILL would bypass them: no code between the kill
    point and the test harness gets to run, retry, or checkpoint.
    """


#: Module state of the (single) armed kill point.  Searches are
#: single-threaded per process, so plain module globals suffice.
active: bool = False
_point: Optional[str] = None
_occurrence: int = 1
_action: Optional[Callable[[str], None]] = None
_hits: Dict[str, int] = {}


def _raise_simulated_crash(point: str) -> None:
    raise SimulatedCrash(f"kill point {point!r} fired")


def _sigkill_self(point: str) -> None:
    os.kill(os.getpid(), signal.SIGKILL)


def arm(point: str, occurrence: int = 1,
        action: Optional[Callable[[str], None]] = None) -> None:
    """Arm *point* to fire on its *occurrence*-th hit.

    ``action`` defaults to raising :class:`SimulatedCrash`; the
    environment-variable path arms :func:`_sigkill_self` instead.
    Arming resets the hit counters, so occurrences are counted from the
    run under test, not from whatever ran before.
    """
    global active, _point, _occurrence, _action
    if occurrence < 1:
        raise ValueError(f"kill-point occurrence must be >= 1, got {occurrence}")
    _point = point
    _occurrence = occurrence
    _action = action or _raise_simulated_crash
    _hits.clear()
    active = True


def observe() -> None:
    """Count kill-point hits without ever firing (see :func:`hit_counts`)."""
    global active, _point, _action
    _point = None
    _action = None
    _hits.clear()
    active = True


def disarm() -> None:
    """Return to the inert default; idempotent."""
    global active, _point, _action
    active = False
    _point = None
    _action = None
    _hits.clear()


def hit_counts() -> Dict[str, int]:
    """Hits per point since the last :func:`arm`/:func:`observe`."""
    return dict(_hits)


def kill_point(name: str) -> None:
    """Declare an interesting crash site; a no-op unless armed."""
    if not active:
        return
    _hits[name] = _hits.get(name, 0) + 1
    if name == _point and _hits[name] == _occurrence:
        _action(name)


def _load_from_environment() -> None:
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return
    point, _, occurrence = spec.partition(":")
    arm(point, int(occurrence) if occurrence else 1, _sigkill_self)


# The CLI (and any subprocess test) arms via the environment at import
# time, before the first round runs.
_load_from_environment()
