"""Exhaustive subset analysis of an epistatic edit set (Section V-C).

Once Algorithm 2 has isolated a small epistatic set, the paper evaluates
*every* subset of it to find the interdependent clusters and their
contributions (Figure 7).  This module performs that exhaustive sweep and
derives the dependency relations: which edits fail alone, which minimal
combinations work, and how much each working combination improves the
program.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..gevo.edits import Edit
from ..gevo.fitness import EditSetEvaluator, WorkloadAdapter


@dataclass
class SubsetOutcome:
    """Evaluation of one subset of the epistatic edits."""

    keys: FrozenSet
    labels: Tuple[str, ...]
    valid: bool
    runtime: float
    improvement: float

    @property
    def size(self) -> int:
        return len(self.keys)


@dataclass
class SubsetAnalysis:
    """Outcome of the exhaustive subset sweep."""

    edits: List[Edit]
    labels: Dict[Tuple, str]
    baseline_runtime: float
    outcomes: List[SubsetOutcome] = field(default_factory=list)
    evaluations: int = 0

    # -- queries -----------------------------------------------------------------------
    def outcome_for(self, labels: Sequence[str]) -> Optional[SubsetOutcome]:
        wanted = frozenset(self._key_for_label(label) for label in labels)
        for outcome in self.outcomes:
            if outcome.keys == wanted:
                return outcome
        return None

    def _key_for_label(self, label: str) -> Tuple:
        for key, known in self.labels.items():
            if known == label:
                return key
        raise KeyError(f"no edit labelled {label!r}")

    def failing_singletons(self) -> List[str]:
        """Labels of edits that fail when applied alone (e.g. edits 5, 8, 10)."""
        return [next(iter(outcome.labels)) for outcome in self.outcomes
                if outcome.size == 1 and not outcome.valid]

    def best_subset(self) -> Optional[SubsetOutcome]:
        valid = [outcome for outcome in self.outcomes if outcome.valid]
        if not valid:
            return None
        return max(valid, key=lambda outcome: outcome.improvement)

    def minimal_working_supersets(self, label: str) -> List[SubsetOutcome]:
        """Smallest valid subsets containing the edit *label* (its dependency closure)."""
        key = self._key_for_label(label)
        containing = [outcome for outcome in self.outcomes
                      if outcome.valid and key in outcome.keys]
        if not containing:
            return []
        smallest = min(outcome.size for outcome in containing)
        return [outcome for outcome in containing if outcome.size == smallest]

    def dependencies(self) -> Dict[str, List[str]]:
        """For each edit that fails alone, the other edits it needs to function.

        The dependency set of an edit is the intersection of all minimal
        valid subsets containing it, minus the edit itself -- the relation
        drawn as arrows in Figure 7.
        """
        result: Dict[str, List[str]] = {}
        for key, label in self.labels.items():
            singleton = next((outcome for outcome in self.outcomes
                              if outcome.keys == frozenset([key])), None)
            if singleton is not None and singleton.valid:
                continue
            minimal = self.minimal_working_supersets(label)
            if not minimal:
                result[label] = []
                continue
            required = set.intersection(*[set(outcome.keys) for outcome in minimal])
            required.discard(key)
            result[label] = sorted(self.labels[dep] for dep in required)
        return result


def exhaustive_subset_analysis(adapter: WorkloadAdapter, edits: Sequence[Edit],
                               labels: Optional[Sequence[str]] = None,
                               max_edits: int = 16,
                               evaluator: Optional[EditSetEvaluator] = None,
                               engine=None) -> SubsetAnalysis:
    """Evaluate every non-empty subset of *edits* (2^n - 1 evaluations).

    The paper notes this is feasible only because the epistatic sets are
    small ("roughly twenty edits"); ``max_edits`` guards against accidental
    exponential blow-ups.  The subsets are submitted as one batch, so an
    engine with a process-pool executor (pass *engine*) evaluates the
    whole grid concurrently.
    """
    edits = list(edits)
    if len(edits) > max_edits:
        raise ValueError(
            f"exhaustive subset analysis over {len(edits)} edits would need "
            f"2^{len(edits)} evaluations; raise max_edits explicitly if you mean it")
    if labels is None:
        labels = [f"e{index}" for index in range(len(edits))]
    if len(labels) != len(edits):
        raise ValueError("labels and edits must have the same length")
    label_map = {edit.key(): label for edit, label in zip(edits, labels)}

    evaluator = evaluator or EditSetEvaluator(adapter, edits, engine=engine)
    baseline = evaluator.baseline_fitness()
    analysis = SubsetAnalysis(edits=edits, labels=label_map, baseline_runtime=baseline)

    # The whole sweep is one embarrassingly parallel grid: evaluate every
    # subset in a single batch so a pool-backed engine saturates all cores.
    combinations: List[Tuple[Edit, ...]] = []
    for size in range(1, len(edits) + 1):
        combinations.extend(itertools.combinations(edits, size))
    results = evaluator.results([list(combination) for combination in combinations])

    for combination, result in zip(combinations, results):
        runtime = result.fitness
        improvement = 0.0
        if result.valid and math.isfinite(runtime) and runtime > 0:
            improvement = (baseline - runtime) / baseline
        analysis.outcomes.append(SubsetOutcome(
            keys=frozenset(edit.key() for edit in combination),
            labels=tuple(label_map[edit.key()] for edit in combination),
            valid=result.valid,
            runtime=runtime,
            improvement=improvement,
        ))
    analysis.evaluations = evaluator.evaluations
    return analysis
