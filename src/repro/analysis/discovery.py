"""Discovery-sequence analysis (Figure 8).

Given the recorded history of a GEVO run and a set of edits of interest,
report the generation at which each edit was first assembled into the best
individual and the fitness trajectory around those events -- the paper's
"edit 6 first, edit 8 at generation 47, edit 10 at 213, edit 5 at 221"
narrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..gevo.edits import Edit
from ..gevo.history import SearchHistory


@dataclass
class DiscoveryEvent:
    """First appearance of one edit of interest in the best individual."""

    label: str
    generation: Optional[int]
    speedup_at_discovery: Optional[float]


@dataclass
class DiscoverySequence:
    """Ordered discovery events plus the full speedup trajectory."""

    events: List[DiscoveryEvent]
    speedup_series: List[Optional[float]]

    def ordered_labels(self) -> List[str]:
        """Labels in discovery order (undiscovered edits last)."""
        return [event.label for event in self.events]

    def discovered(self) -> List[DiscoveryEvent]:
        return [event for event in self.events if event.generation is not None]

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {"edit": event.label, "generation": event.generation,
             "speedup": event.speedup_at_discovery}
            for event in self.events
        ]


def discovery_sequence(history: SearchHistory, edits_of_interest: Dict[str, Edit],
                       *, in_best: bool = True) -> DiscoverySequence:
    """Extract the Figure-8 data for *edits_of_interest* from *history*."""
    speedups = history.speedup_series()
    events: List[DiscoveryEvent] = []
    for label, edit in edits_of_interest.items():
        generation = history.discovery_generation(edit.key(), in_best=in_best)
        speedup = None
        if generation is not None and 1 <= generation <= len(speedups):
            speedup = speedups[generation - 1]
        events.append(DiscoveryEvent(label=label, generation=generation,
                                     speedup_at_discovery=speedup))
    events.sort(key=lambda event: (event.generation is None, event.generation or 0))
    return DiscoverySequence(events=events, speedup_series=speedups)


def cumulative_discovery_table(history: SearchHistory,
                               edits_of_interest: Dict[str, Edit]) -> List[Tuple[int, Tuple[str, ...]]]:
    """Per-generation cumulative set of discovered edits (the boxes of Figure 8)."""
    sequence = discovery_sequence(history, edits_of_interest)
    table: List[Tuple[int, Tuple[str, ...]]] = []
    discovered: List[str] = []
    for event in sequence.events:
        if event.generation is None:
            continue
        discovered.append(event.label)
        table.append((event.generation, tuple(discovered)))
    return table
