"""Post-hoc analyses of GEVO-discovered optimizations (paper Sections V and VI).

* Algorithm 1: :func:`identify_weak_edits` -- drop edits contributing < 1%.
* Algorithm 2: :func:`separate_edits` -- split independent vs epistatic edits.
* Exhaustive subsets: :func:`exhaustive_subset_analysis` + :func:`figure7_report`.
* Discovery sequence: :func:`discovery_sequence` (Figure 8).
* Source mapping: :func:`map_edits_to_source` (Figure 9 style reports).
"""

from .depgraph import EpistaticCluster, build_dependency_graph, epistatic_clusters, figure7_report
from .discovery import (
    DiscoveryEvent,
    DiscoverySequence,
    cumulative_discovery_table,
    discovery_sequence,
)
from .epistasis import EpistasisResult, separate_edits
from .minimization import MinimizationResult, identify_weak_edits
from .source_map import (
    EditSourceRecord,
    edits_by_source_line,
    format_source_report,
    locate_edit,
    map_edits_to_source,
)
from .subsets import SubsetAnalysis, SubsetOutcome, exhaustive_subset_analysis

__all__ = [
    "DiscoveryEvent",
    "DiscoverySequence",
    "EditSourceRecord",
    "EpistasisResult",
    "EpistaticCluster",
    "MinimizationResult",
    "SubsetAnalysis",
    "SubsetOutcome",
    "build_dependency_graph",
    "cumulative_discovery_table",
    "discovery_sequence",
    "edits_by_source_line",
    "epistatic_clusters",
    "exhaustive_subset_analysis",
    "figure7_report",
    "format_source_report",
    "identify_weak_edits",
    "locate_edit",
    "map_edits_to_source",
    "separate_edits",
]
