"""Algorithm 2: separate independent from epistatic (interdependent) edits.

An edit is *independent* when it can be applied alone and removed from the
full set without failure, and its performance contribution is about the
same in isolation as in the context of the other edits.  Everything else
is *epistatic*: its effect depends on which other edits are present.  The
paper finds 5 independent (≈7%) and 12 epistatic (≈17%) edits for
ADEPT-V1, and no impactful epistasis for ADEPT-V0 or SIMCoV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..gevo.edits import Edit
from ..gevo.fitness import EditSetEvaluator, WorkloadAdapter


@dataclass
class EpistasisResult:
    """Outcome of Algorithm 2."""

    independent: List[Edit]
    epistatic: List[Edit]
    baseline_runtime: float
    full_runtime: float
    independent_runtime: float
    epistatic_runtime: float
    evaluations: int

    def _improvement(self, runtime: float) -> float:
        if runtime <= 0 or not math.isfinite(runtime):
            return 0.0
        return (self.baseline_runtime - runtime) / self.baseline_runtime

    @property
    def full_improvement(self) -> float:
        return self._improvement(self.full_runtime)

    @property
    def independent_improvement(self) -> float:
        """Improvement from applying only the independent edits (paper: ~7%)."""
        return self._improvement(self.independent_runtime)

    @property
    def epistatic_improvement(self) -> float:
        """Improvement from applying only the epistatic edits (paper: ~17%)."""
        return self._improvement(self.epistatic_runtime)

    def summary(self) -> str:
        return (f"{len(self.independent)} independent ({self.independent_improvement:.1%}) "
                f"+ {len(self.epistatic)} epistatic ({self.epistatic_improvement:.1%}) "
                f"of total {self.full_improvement:.1%}")


def separate_edits(adapter: WorkloadAdapter, edits: Sequence[Edit],
                   agreement_tolerance: float = 0.35,
                   evaluator: Optional[EditSetEvaluator] = None,
                   engine=None) -> EpistasisResult:
    """Run Algorithm 2 over *edits*.

    ``agreement_tolerance`` is the relative slack allowed between an edit's
    isolated improvement (``PerfIncr``) and its in-context contribution
    (``PerfDecr``) before the edit is declared epistatic.

    Pass *engine* to share a fitness cache with the other analyses.  Each
    edit's singleton evaluation (``PerfIncr``, and the fail-alone test) is
    independent of the loop's accumulated state, so the singletons are
    evaluated as one concurrent wave up front.
    """
    evaluator = evaluator or EditSetEvaluator(adapter, edits, engine=engine)
    all_edits = list(edits)
    independent: List[Edit] = []
    baseline = evaluator.baseline_fitness()
    full_runtime = evaluator.fitness(all_edits)
    # Singleton wave: f({e}) for every edit, in one batch.
    evaluator.results([[edit] for edit in all_edits])

    for edit in all_edits:
        if evaluator.fails([edit]):
            continue
        others = [e for e in all_edits
                  if e.key() != edit.key() and not _in(e, independent)]
        if evaluator.fails(others):
            continue
        runtime_alone = evaluator.fitness([edit])
        runtime_without = evaluator.fitness(others)
        runtime_context = evaluator.fitness(others + [edit])
        if not all(math.isfinite(value) for value in
                   (runtime_alone, runtime_without, runtime_context)):
            continue
        perf_increase = (baseline - runtime_alone) / baseline
        perf_decrease = (runtime_without - runtime_context) / runtime_without
        if _agree(perf_increase, perf_decrease, agreement_tolerance):
            independent.append(edit)

    epistatic = [edit for edit in all_edits if not _in(edit, independent)]
    return EpistasisResult(
        independent=independent,
        epistatic=epistatic,
        baseline_runtime=baseline,
        full_runtime=full_runtime,
        independent_runtime=evaluator.fitness(independent) if independent else baseline,
        epistatic_runtime=evaluator.fitness(epistatic) if epistatic else baseline,
        evaluations=evaluator.evaluations,
    )


def _in(edit: Edit, edits: Sequence[Edit]) -> bool:
    return any(edit.key() == other.key() for other in edits)


def _agree(first: float, second: float, tolerance: float) -> bool:
    """True when two fractional improvements are approximately equal."""
    scale = max(abs(first), abs(second), 0.005)
    return abs(first - second) <= tolerance * scale
