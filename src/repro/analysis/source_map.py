"""Mapping IR-level edits back to source locations (Section VI).

The paper instruments Clang to carry debug information into LLVM-IR so
that discovered edits can be traced back to CUDA source lines (the red
annotations of Figure 9).  Our builder attaches
:class:`~repro.ir.instructions.SourceLoc` records to every emitted
instruction, so the same mapping is a lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..gevo.edits import Edit, InstructionDelete, InstructionSwap, OperandReplace
from ..ir.function import Module


@dataclass
class EditSourceRecord:
    """One edit annotated with the source context it touches."""

    edit: Edit
    kind: str
    location: Optional[str]
    opcode: Optional[str]
    description: str


def _primary_uid(edit: Edit) -> Optional[int]:
    """The uid of the instruction an edit primarily modifies."""
    key = edit.key()
    if len(key) > 1 and isinstance(key[1], int):
        return key[1]
    return None


def locate_edit(module: Module, edit: Edit) -> EditSourceRecord:
    """Annotate one edit with the source location of its target instruction."""
    uid = _primary_uid(edit)
    location = None
    opcode = None
    if uid is not None:
        found = module.find_instruction(uid)
        if found is not None:
            _, block, index = found
            instruction = block.instructions[index]
            opcode = instruction.opcode
            location = str(instruction.loc) if instruction.loc is not None else None
    return EditSourceRecord(
        edit=edit,
        kind=edit.kind,
        location=location,
        opcode=opcode,
        description=edit.describe(module),
    )


def map_edits_to_source(module: Module, edits: Sequence[Edit]) -> List[EditSourceRecord]:
    """Annotate every edit in *edits* against *module* (the unmodified program)."""
    return [locate_edit(module, edit) for edit in edits]


def edits_by_source_line(module: Module, edits: Sequence[Edit]) -> Dict[str, List[EditSourceRecord]]:
    """Group the annotated edits by source line, for Figure-9-style reports."""
    grouped: Dict[str, List[EditSourceRecord]] = {}
    for record in map_edits_to_source(module, edits):
        key = record.location or "<unknown>"
        grouped.setdefault(key, []).append(record)
    return grouped


def format_source_report(module: Module, edits: Sequence[Edit]) -> str:
    """Human-readable report of where a set of edits lands in the source."""
    lines = []
    for location, records in sorted(edits_by_source_line(module, edits).items()):
        lines.append(f"{location}:")
        for record in records:
            lines.append(f"  - {record.kind} on {record.opcode or '<missing>'}"
                         f" ({record.description})")
    return "\n".join(lines)
