"""Edit dependency graph (Figure 7).

Turns the exhaustive subset analysis into the relation graph the paper
draws: nodes are edits, an arrow ``a -> b`` means edit *a* only functions
when edit *b* is also applied, and connected components are the epistatic
clusters whose joint contribution is reported alongside the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from .subsets import SubsetAnalysis


@dataclass
class EpistaticCluster:
    """One connected group of interdependent edits."""

    members: Tuple[str, ...]
    improvement: float
    valid: bool


def build_dependency_graph(analysis: SubsetAnalysis) -> "nx.DiGraph":
    """Directed graph of edit dependencies derived from the subset sweep."""
    graph = nx.DiGraph()
    for label in analysis.labels.values():
        graph.add_node(label)
    for label, required in analysis.dependencies().items():
        for dependency in required:
            graph.add_edge(label, dependency)
    return graph


def epistatic_clusters(analysis: SubsetAnalysis) -> List[EpistaticCluster]:
    """Connected components of the dependency graph with their contributions."""
    graph = build_dependency_graph(analysis)
    clusters: List[EpistaticCluster] = []
    for component in nx.weakly_connected_components(graph):
        members = tuple(sorted(component))
        outcome = analysis.outcome_for(list(members))
        clusters.append(EpistaticCluster(
            members=members,
            improvement=outcome.improvement if outcome is not None and outcome.valid else 0.0,
            valid=outcome.valid if outcome is not None else False,
        ))
    clusters.sort(key=lambda cluster: cluster.improvement, reverse=True)
    return clusters


def figure7_report(analysis: SubsetAnalysis) -> Dict[str, object]:
    """The data behind Figure 7 as a plain dictionary (printed by the bench)."""
    best = analysis.best_subset()
    return {
        "edits": sorted(analysis.labels.values()),
        "failing_alone": sorted(analysis.failing_singletons()),
        "dependencies": analysis.dependencies(),
        "clusters": [
            {"members": list(cluster.members), "improvement": cluster.improvement}
            for cluster in epistatic_clusters(analysis)
        ],
        "best_subset": list(best.labels) if best is not None else [],
        "best_improvement": best.improvement if best is not None else 0.0,
        "subsets_evaluated": len(analysis.outcomes),
    }
