"""Algorithm 1: identify and remove *weak* edits.

The best GEVO individuals carry hundreds or thousands of edits (1394 for
ADEPT-V1, 384 for SIMCoV in the paper) of which only a handful matter.
Algorithm 1 walks the edit set and moves any edit whose removal changes
performance by less than a threshold (1% in the paper, measured with
nvprof; here with the simulator's cycle counts) into the *weak* set.  The
remaining edits preserve almost all of the variant's improvement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..gevo.edits import Edit
from ..gevo.fitness import EditSetEvaluator, WorkloadAdapter


@dataclass
class MinimizationResult:
    """Outcome of Algorithm 1."""

    significant: List[Edit]
    weak: List[Edit]
    baseline_runtime: float
    full_runtime: float
    minimized_runtime: float
    evaluations: int

    @property
    def full_improvement(self) -> float:
        """Fractional improvement of the full edit set over the baseline."""
        if self.full_runtime <= 0 or not math.isfinite(self.full_runtime):
            return 0.0
        return (self.baseline_runtime - self.full_runtime) / self.baseline_runtime

    @property
    def minimized_improvement(self) -> float:
        """Fractional improvement retained after removing the weak edits."""
        if self.minimized_runtime <= 0 or not math.isfinite(self.minimized_runtime):
            return 0.0
        return (self.baseline_runtime - self.minimized_runtime) / self.baseline_runtime

    @property
    def improvement_lost(self) -> float:
        """How much improvement the minimization gave up (paper: 0.9%)."""
        return self.full_improvement - self.minimized_improvement

    def summary(self) -> str:
        return (f"{len(self.significant) + len(self.weak)} edits -> "
                f"{len(self.significant)} significant "
                f"({self.full_improvement:.1%} -> {self.minimized_improvement:.1%} improvement)")


def identify_weak_edits(adapter: WorkloadAdapter, edits: Sequence[Edit],
                        threshold: float = 0.01,
                        evaluator: Optional[EditSetEvaluator] = None,
                        engine=None) -> MinimizationResult:
    """Run Algorithm 1 over *edits*.

    For each edit ``e`` (in order), compare the fitness of the current
    working set with and without ``e``; if the relative difference is below
    *threshold*, ``e`` is weak and permanently removed from the working set
    before the next edit is examined (exactly the ``S - weaks`` bookkeeping
    of the paper's pseudo-code).

    Pass *engine* (an :class:`~repro.runtime.engine.EvaluationEngine`) to
    share a fitness cache with other analyses over the same workload.
    The walk itself is inherently sequential -- each step's leave-one-out
    set depends on which earlier edits turned out weak -- so this
    algorithm gains from the engine's cache, not from its parallelism,
    and its reported ``evaluations`` count is identical under any
    executor.
    """
    evaluator = evaluator or EditSetEvaluator(adapter, edits, engine=engine)
    working: List[Edit] = list(edits)
    weak: List[Edit] = []
    baseline = evaluator.baseline_fitness()
    full_runtime = evaluator.fitness(edits)

    for edit in list(edits):
        with_edit = [e for e in working]
        without_edit = [e for e in working if e.key() != edit.key()]
        runtime_with = evaluator.fitness(with_edit)
        runtime_without = evaluator.fitness(without_edit)
        if not math.isfinite(runtime_without):
            # Removing the edit breaks the variant: definitely not weak.
            continue
        if not math.isfinite(runtime_with):
            # The working set itself is broken with this edit present; drop it.
            weak.append(edit)
            working = without_edit
            continue
        relative_change = (runtime_without - runtime_with) / runtime_without
        if relative_change < threshold:
            weak.append(edit)
            working = without_edit

    minimized_runtime = evaluator.fitness(working)
    return MinimizationResult(
        significant=working,
        weak=weak,
        baseline_runtime=baseline,
        full_runtime=full_runtime,
        minimized_runtime=minimized_runtime,
        evaluations=evaluator.evaluations,
    )
