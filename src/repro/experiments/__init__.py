"""Experiment drivers: one module per table / figure of the paper.

Use the registry to run any experiment by its identifier::

    from repro.experiments import get_experiment

    result = get_experiment("figure4")()
    print(result.to_table())
"""

from . import ballot_sync, boundary, figure4, figure5, figure6, figure7, figure8, generality, table1
from .ballot_sync import ballot_sync as run_ballot_sync
from .boundary import boundary as run_boundary
from .figure4 import figure4 as run_figure4
from .figure5 import figure5 as run_figure5
from .figure6 import figure6 as run_figure6
from .figure7 import figure7 as run_figure7
from .figure8 import figure8 as run_figure8
from .generality import generality as run_generality
from .registry import ExperimentResult, available_experiments, get_experiment, register
from .table1 import table1 as run_table1

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "get_experiment",
    "register",
    "run_ballot_sync",
    "run_boundary",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_generality",
    "run_table1",
]
