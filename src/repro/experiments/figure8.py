"""Figure 8: how the epistatic edits are discovered during the search.

A (scaled-down) GEVO run is executed live on ADEPT-V1 and its recorded
history is analysed for the generation at which each of the cluster edits
(paper indices 5, 6, 8, 10) first enters the best individual.  The paper's
qualitative result is an ordering constraint: edit 6 is assembled first,
the dependent edits 8 and 10 only afterwards, and edit 5 last.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import cumulative_discovery_table, discovery_sequence
from ..gevo import GevoConfig, GevoSearch
from ..gpu import get_arch
from ..workloads.adept import (
    AdeptWorkloadAdapter,
    adept_v1_discovered_edits,
    adept_v1_epistatic_edits,
    search_pairs,
)
from .registry import ExperimentResult, register


@register("figure8")
def figure8(arch_name: str = "P100", population_size: int = 16, generations: int = 18,
            seed: int = 7, candidate_probability: float = 0.5) -> ExperimentResult:
    """Reproduce (scaled) Figure 8: the discovery sequence of the epistatic cluster."""
    arch = get_arch(arch_name)
    adapter = AdeptWorkloadAdapter("v1", arch, fitness_cases=[search_pairs()])
    kernel = adapter.kernel
    cluster = {f"edit{index}": edit
               for index, edit in adept_v1_epistatic_edits(kernel).items()}
    candidates = adept_v1_discovered_edits(kernel)

    config = GevoConfig.quick(seed=seed, population_size=population_size,
                              generations=generations)
    search = GevoSearch(adapter, config, candidate_edits=candidates,
                        candidate_probability=candidate_probability)
    outcome = search.run()

    sequence = discovery_sequence(outcome.history, cluster)
    result = ExperimentResult(
        experiment="Figure 8",
        description="Generation at which each epistatic edit first enters the best individual",
    )
    for row in sequence.as_rows():
        result.add_row(**row)
    for generation, edits in cumulative_discovery_table(outcome.history, cluster):
        result.add_row(edit="cumulative", generation=generation,
                       speedup=None, discovered="+".join(edits))
    result.add_row(edit="final", generation=outcome.history.generations(),
                   speedup=outcome.speedup,
                   discovered=f"{len(outcome.best.edits) if outcome.best else 0} edits in best")
    result.add_note("Paper reference: edit 6 first, edit 8 at generation 47, edit 10 at 213, "
                    "edit 5 at 221 (over 303 generations at paper scale).")
    result.add_note("This run is drastically scaled down and mutation is biased towards the "
                    "recorded edit vocabulary; the preserved result is the ordering constraint "
                    "(6 before 8/10, 5 last), not the absolute generation numbers.")
    return result
