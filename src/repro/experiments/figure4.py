"""Figure 4: ADEPT performance on the three GPU generations.

For each architecture the experiment measures the simulated kernel runtime
of ADEPT-V0, ADEPT-V0 + the GEVO-discovered edits, ADEPT-V1 and ADEPT-V1 +
the GEVO-discovered edits, and reports the speedups normalised to ADEPT-V0
(the paper's normalisation) as well as the V1-relative speedup of the V1
GEVO variant (the headline 1.28x / 1.31x / 1.17x numbers).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..gevo import apply_edits
from ..gpu import EVALUATION_ORDER, get_arch
from ..workloads.adept import (
    AdeptWorkloadAdapter,
    adept_v0_discovered_edits,
    adept_v1_discovered_edits,
    search_pairs,
)
from .registry import ExperimentResult, register


def _measure_version(version: str, arch_name: str, pairs) -> Dict[str, float]:
    """Baseline and GEVO-optimized runtime of one ADEPT version on one GPU."""
    adapter = AdeptWorkloadAdapter(version, get_arch(arch_name), fitness_cases=[list(pairs)])
    baseline = adapter.baseline()
    if version == "v0":
        edits = adept_v0_discovered_edits(adapter.kernel)
    else:
        edits = adept_v1_discovered_edits(adapter.kernel)
    optimized_module = apply_edits(adapter.original_module(), edits).module
    optimized = adapter.evaluate(optimized_module)
    return {
        "baseline_ms": baseline.runtime_ms,
        "gevo_ms": optimized.runtime_ms,
        "baseline_valid": baseline.valid,
        "gevo_valid": optimized.valid,
    }


@register("figure4")
def figure4(architectures: Optional[Sequence[str]] = None,
            pairs=None) -> ExperimentResult:
    """Reproduce Figure 4 (scaled pair set; see EXPERIMENTS.md)."""
    architectures = list(architectures or EVALUATION_ORDER)
    pairs = list(pairs) if pairs is not None else search_pairs()
    result = ExperimentResult(
        experiment="Figure 4",
        description="ADEPT speedups normalised to ADEPT-V0 on each GPU",
    )
    for arch_name in architectures:
        v0 = _measure_version("v0", arch_name, pairs)
        v1 = _measure_version("v1", arch_name, pairs)
        v0_time = v0["baseline_ms"]
        result.add_row(
            gpu=arch_name,
            adept_v0_ms=v0_time,
            speedup_v0=1.0,
            speedup_v0_gevo=v0_time / v0["gevo_ms"],
            speedup_v1=v0_time / v1["baseline_ms"],
            speedup_v1_gevo=v0_time / v1["gevo_ms"],
            v1_gevo_over_v1=v1["baseline_ms"] / v1["gevo_ms"],
            all_valid=all([v0["baseline_valid"], v0["gevo_valid"],
                           v1["baseline_valid"], v1["gevo_valid"]]),
        )
    result.add_note("Paper reference: V0-GEVO 32.8x/32x/18.4x over V0; "
                    "V1-GEVO 1.28x/1.31x/1.17x over V1 (P100/1080Ti/V100).")
    result.add_note("Runtimes come from the simulator's cycle model on a scaled synthetic "
                    "pair set; compare shapes and ratios, not absolute milliseconds.")
    return result
