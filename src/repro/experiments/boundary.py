"""Section VI-D: SIMCoV boundary-check removal vs zero padding.

Three variants of the diffusion code are compared:

* the original kernels (boundary checks present);
* the GEVO-discovered boundary-check removal (fast, passes the small
  fitness grid, faults on the larger held-out grid);
* the developers' manual fix: pad the grid with zero cells and drop the
  checks (slightly smaller win, safe everywhere).
"""

from __future__ import annotations

from ..gevo import apply_edits
from ..gpu import GpuDevice, get_arch
from ..workloads.simcov import (
    SimCovParams,
    SimCovWorkloadAdapter,
    boundary_check_removal_edits,
    build_padded_spread_kernel,
    run_padded_spread,
    run_reference,
)
from .registry import ExperimentResult, register


@register("boundary")
def boundary(arch_name: str = "P100") -> ExperimentResult:
    """Reproduce the Section VI-D comparison on one GPU."""
    arch = get_arch(arch_name)
    adapter = SimCovWorkloadAdapter(arch)
    result = ExperimentResult(
        experiment="Section VI-D",
        description="Boundary-check removal vs zero padding in SIMCoV",
    )

    baseline = adapter.baseline()
    baseline_validation = adapter.validate(adapter.original_module())
    result.add_row(variant="original (checked)", fitness_ms=baseline.runtime_ms,
                   improvement=0.0, passes_fitness=baseline.valid,
                   passes_heldout=baseline_validation.valid)

    removal_edits = boundary_check_removal_edits(adapter.kernels)
    removed_module = apply_edits(adapter.original_module(), removal_edits).module
    removed = adapter.evaluate(removed_module)
    removed_validation = adapter.validate(removed_module)
    result.add_row(variant="GEVO boundary removal", fitness_ms=removed.runtime_ms,
                   improvement=(baseline.runtime_ms - removed.runtime_ms) / baseline.runtime_ms,
                   passes_fitness=removed.valid,
                   passes_heldout=removed_validation.valid)

    # Padding comparison on the diffusion kernel alone (the hot code path):
    # one diffusion step of the virion field with each strategy.
    params = adapter.fitness_params
    reference_state = run_reference(params)
    device = GpuDevice(arch, unified_memory_arena=True)
    padded_module = build_padded_spread_kernel()
    padded = run_padded_spread(device, params, reference_state.virions,
                               params.virion_diffusion, params.virion_decay,
                               module=padded_module)
    checked_kernel_ms = _single_spread_time(adapter, params, reference_state, removed=False)
    removed_kernel_ms = _single_spread_time(adapter, params, reference_state, removed=True)
    result.add_row(variant="spread kernel: checked", fitness_ms=checked_kernel_ms,
                   improvement=0.0, passes_fitness=True, passes_heldout=True)
    result.add_row(variant="spread kernel: checks removed", fitness_ms=removed_kernel_ms,
                   improvement=(checked_kernel_ms - removed_kernel_ms) / checked_kernel_ms,
                   passes_fitness=True, passes_heldout=False)
    result.add_row(variant="spread kernel: zero padding", fitness_ms=padded.kernel_time_ms,
                   improvement=(checked_kernel_ms - padded.kernel_time_ms) / checked_kernel_ms,
                   passes_fitness=True, passes_heldout=True)

    result.add_note("Paper reference: boundary removal ~20% improvement but segfaults on the "
                    "2500x2500 held-out grid; zero padding ~14% improvement with negligible "
                    "memory increase.")
    result.add_note("The paper also reports 31% of the diffusion kernel's instructions are "
                    "boundary-comparison logic; see the profiler-based test in "
                    "tests/workloads/test_simcov_gpu.py for the equivalent measurement.")
    return result


def _single_spread_time(adapter: SimCovWorkloadAdapter, params: SimCovParams,
                        state, removed: bool) -> float:
    """Time one launch of the virion diffusion kernel with/without checks."""
    module = adapter.original_module()
    if removed:
        module = apply_edits(module, boundary_check_removal_edits(
            adapter.kernels, kernel_names=("simcov_spread_virions",))).module
    import math

    import numpy as np

    from ..workloads.simcov.kernels import BLOCK_THREADS
    device = adapter.driver.device
    grid = max(1, math.ceil(params.cells / BLOCK_THREADS))
    virions = state.virions.copy()
    virions_next = np.zeros_like(virions)
    launch = device.launch(module, grid=grid, block=BLOCK_THREADS, args={
        "virions": virions, "virions_next": virions_next,
        "n_cells": params.cells, "width": params.width, "height": params.height,
        "diffusion": params.virion_diffusion, "decay": params.virion_decay,
    }, kernel_name="simcov_spread_virions")
    return launch.time_ms
