"""Figure 6: distribution of improvements across repeated GEVO runs.

The paper performs ten independent runs per workload on the P100 and plots
the per-generation speedup envelope; the reproduction performs a (much)
scaled-down version of the same protocol -- fewer and smaller runs, with
the mutation operator biased towards the recorded edit vocabulary so the
discovery dynamics fit in the available budget (see EXPERIMENTS.md) -- and
reports the per-run final speedups plus the min / mean / max statistics the
paper quotes (1.10-1.33x, mean 1.20x for ADEPT-V1; 1.18-1.35x, mean 1.28x
for SIMCoV).
"""

from __future__ import annotations

from typing import List, Optional

from ..gevo import GevoConfig, run_repeated_searches
from ..gpu import get_arch
from ..runtime import EvaluationEngine, make_executor
from ..workloads.adept import AdeptWorkloadAdapter, adept_v1_discovered_edits, search_pairs
from ..workloads.simcov import SimCovParams, SimCovWorkloadAdapter, simcov_discovered_edits
from .registry import ExperimentResult, register


def _summarise(result: ExperimentResult, workload: str, speedups: List[float],
               generations: int) -> None:
    if not speedups:
        result.add_row(workload=workload, runs=0)
        return
    result.add_row(
        workload=workload,
        runs=len(speedups),
        generations=generations,
        best=max(speedups),
        worst=min(speedups),
        mean=sum(speedups) / len(speedups),
        final_speedups=", ".join(f"{value:.3f}" for value in speedups),
    )


@register("figure6")
def figure6(runs: int = 3, population_size: int = 10, generations: int = 8,
            arch_name: str = "P100", include_simcov: bool = True,
            candidate_probability: float = 0.35, jobs: int = 1) -> ExperimentResult:
    """Reproduce (scaled) Figure 6: speedup distribution over repeated runs.

    One evaluation engine per workload is shared across the repeated runs,
    so variants rediscovered by several seeds are simulated once; with
    ``jobs > 1`` each generation is evaluated across a process pool.
    """
    arch = get_arch(arch_name)
    config = GevoConfig.quick(population_size=population_size, generations=generations)
    result = ExperimentResult(
        experiment="Figure 6",
        description="Distribution of GEVO improvements across repeated runs",
    )

    adept_adapter = AdeptWorkloadAdapter("v1", arch, fitness_cases=[search_pairs()])
    adept_candidates = adept_v1_discovered_edits(adept_adapter.kernel)
    with EvaluationEngine(adept_adapter, executor=make_executor(jobs)) as engine:
        adept_results = run_repeated_searches(
            adept_adapter, config, runs, base_seed=100,
            candidate_edits=adept_candidates, candidate_probability=candidate_probability,
            engine=engine)
    _summarise(result, "ADEPT-V1", [r.speedup for r in adept_results], generations)

    if include_simcov:
        simcov_adapter = SimCovWorkloadAdapter(arch, fitness_params=SimCovParams.quick())
        simcov_candidates = simcov_discovered_edits(simcov_adapter.kernels)
        with EvaluationEngine(simcov_adapter, executor=make_executor(jobs)) as engine:
            simcov_results = run_repeated_searches(
                simcov_adapter, config, runs, base_seed=200,
                candidate_edits=simcov_candidates, candidate_probability=candidate_probability,
                engine=engine)
        _summarise(result, "SIMCoV", [r.speedup for r in simcov_results], generations)

    result.add_note("Paper reference (10 runs, paper-scale budgets): ADEPT-V1 "
                    "1.10-1.33x mean 1.20x; SIMCoV 1.18-1.35x mean 1.28x.")
    result.add_note("Runs here are scaled down drastically (see EXPERIMENTS.md); the point "
                    "preserved is the run-to-run variation and that repeated runs pay off.")
    return result
