"""Figure 7 and Section V: edit minimization, independence and epistasis.

The experiment replays the recorded ADEPT-V1 edit set, runs Algorithm 1
(weak-edit removal) and Algorithm 2 (independent vs epistatic split), then
exhaustively evaluates every subset of the epistatic cluster {5, 6, 8, 10}
to reconstruct the dependency graph and per-subset improvements of
Figure 7.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import (
    exhaustive_subset_analysis,
    figure7_report,
    identify_weak_edits,
    separate_edits,
)
from ..gpu import get_arch
from ..runtime import EvaluationEngine, make_executor
from ..workloads.adept import (
    AdeptWorkloadAdapter,
    adept_v1_discovered_edits,
    adept_v1_epistatic_edits,
)
from .registry import ExperimentResult, register


@register("figure7")
def figure7(arch_name: str = "P100",
            adapter: Optional[AdeptWorkloadAdapter] = None,
            jobs: int = 1) -> ExperimentResult:
    """Reproduce Figure 7 / Section V for ADEPT-V1 on one GPU.

    All three stages (Algorithm 1, Algorithm 2, subset sweep) share one
    evaluation engine, so edit-sets revisited across stages -- the
    baseline, the full set, the singletons -- are simulated exactly once;
    ``jobs > 1`` additionally evaluates each batched wave across a
    process pool.
    """
    adapter = adapter or AdeptWorkloadAdapter("v1", get_arch(arch_name))
    kernel = adapter.kernel
    all_edits = adept_v1_discovered_edits(kernel)
    epistatic_cluster = adept_v1_epistatic_edits(kernel)

    result = ExperimentResult(
        experiment="Figure 7 / Section V",
        description="Edit minimization, independence and the epistatic cluster of ADEPT-V1",
    )

    with EvaluationEngine(adapter, executor=make_executor(jobs)) as engine:
        minimization = identify_weak_edits(adapter, all_edits, engine=engine)
        result.add_row(stage="Algorithm 1 (minimization)",
                       edits_in=len(all_edits),
                       edits_out=len(minimization.significant),
                       improvement_full=minimization.full_improvement,
                       improvement_minimized=minimization.minimized_improvement)

        separation = separate_edits(adapter, minimization.significant, engine=engine)
        result.add_row(stage="Algorithm 2 (independence)",
                       independent=len(separation.independent),
                       epistatic=len(separation.epistatic),
                       independent_improvement=separation.independent_improvement,
                       epistatic_improvement=separation.epistatic_improvement)

        labels = [f"edit{index}" for index in epistatic_cluster]
        analysis = exhaustive_subset_analysis(adapter, list(epistatic_cluster.values()),
                                              labels=labels, engine=engine)
    report = figure7_report(analysis)
    for outcome in sorted(analysis.outcomes, key=lambda o: (o.size, o.labels)):
        result.add_row(stage="subset", subset="+".join(outcome.labels),
                       valid=outcome.valid, improvement=outcome.improvement)
    result.add_row(stage="dependency graph",
                   failing_alone=", ".join(report["failing_alone"]),
                   dependencies=str(report["dependencies"]),
                   best_subset="+".join(report["best_subset"]),
                   best_improvement=report["best_improvement"])

    result.add_note("Paper reference: 1394 edits -> 17 significant; 5 independent (~7%) + "
                    "12 epistatic (~17%); cluster {5,6,8,10} contributes ~15% with 8, 10 "
                    "depending on 6 and 5 depending on all three.")
    return result
