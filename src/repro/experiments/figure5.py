"""Figure 5: SIMCoV performance on the three GPU generations."""

from __future__ import annotations

from typing import Optional, Sequence

from ..gevo import apply_edits
from ..gpu import EVALUATION_ORDER, get_arch
from ..workloads.simcov import SimCovParams, SimCovWorkloadAdapter, simcov_discovered_edits
from .registry import ExperimentResult, register


@register("figure5")
def figure5(architectures: Optional[Sequence[str]] = None,
            params: Optional[SimCovParams] = None) -> ExperimentResult:
    """Reproduce Figure 5: SIMCoV vs SIMCoV-GEVO on each GPU (scaled grid)."""
    architectures = list(architectures or EVALUATION_ORDER)
    params = params or SimCovParams.fitness()
    result = ExperimentResult(
        experiment="Figure 5",
        description="SIMCoV speedup from the GEVO-discovered edits, per GPU",
    )
    for arch_name in architectures:
        adapter = SimCovWorkloadAdapter(get_arch(arch_name), fitness_params=params)
        baseline = adapter.baseline()
        edits = simcov_discovered_edits(adapter.kernels)
        optimized = adapter.evaluate(apply_edits(adapter.original_module(), edits).module)
        result.add_row(
            gpu=arch_name,
            simcov_ms=baseline.runtime_ms,
            simcov_gevo_ms=optimized.runtime_ms,
            speedup=baseline.runtime_ms / optimized.runtime_ms,
            baseline_valid=baseline.valid,
            gevo_valid=optimized.valid,
        )
    result.add_note("Paper reference: 1.29x / 1.43x / 1.17x on P100 / 1080Ti / V100.")
    result.add_note(f"Scaled grid {params.width}x{params.height}, {params.steps} steps, "
                    f"{params.diffusion_substeps} diffusion sub-steps per step.")
    return result
