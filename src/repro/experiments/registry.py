"""Common experiment result container and the experiment registry.

Every paper table / figure has one experiment function that returns an
:class:`ExperimentResult`: a name, a list of row dictionaries (the series
the paper plots or tabulates) and free-form notes.  The registry maps the
experiment identifier used in DESIGN.md / EXPERIMENTS.md to its function,
so benches, examples and the command line can all run the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column_names(self) -> List[str]:
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def to_table(self) -> str:
        """Render the rows as a fixed-width text table (what the benches print)."""
        columns = self.column_names()
        if not columns:
            return f"{self.experiment}: (no rows)"

        def _format(value) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        widths = {column: len(column) for column in columns}
        rendered_rows = []
        for row in self.rows:
            rendered = {column: _format(row.get(column, "")) for column in columns}
            rendered_rows.append(rendered)
            for column in columns:
                widths[column] = max(widths[column], len(rendered[column]))
        header = " | ".join(column.ljust(widths[column]) for column in columns)
        separator = "-+-".join("-" * widths[column] for column in columns)
        body = [" | ".join(rendered[column].ljust(widths[column]) for column in columns)
                for rendered in rendered_rows]
        lines = [f"== {self.experiment}: {self.description} ==", header, separator] + body
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


ExperimentFunction = Callable[..., ExperimentResult]

_REGISTRY: Dict[str, ExperimentFunction] = {}


def register(identifier: str) -> Callable[[ExperimentFunction], ExperimentFunction]:
    """Decorator registering an experiment function under *identifier*."""

    def decorator(function: ExperimentFunction) -> ExperimentFunction:
        _REGISTRY[identifier] = function
        return function

    return decorator


def get_experiment(identifier: str) -> ExperimentFunction:
    try:
        return _REGISTRY[identifier]
    except KeyError:
        raise KeyError(
            f"unknown experiment {identifier!r}; available: {sorted(_REGISTRY)}") from None


def available_experiments() -> Sequence[str]:
    return tuple(sorted(_REGISTRY))
