"""Section IV "Generality": do P100-discovered optimizations port to other GPUs?

The paper evaluates the edits GEVO discovered on the P100 directly on the
V100 and 1080Ti and finds they retain ~99% of the gain available from
searching natively on those GPUs (for ADEPT-V0 and SIMCoV; a small part of
the ADEPT-V1 edits is architecture-specific).  The reproduction applies the
recorded P100 edit sets on every architecture and compares the resulting
speedup against the natively-measured one.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..gevo import apply_edits
from ..gpu import EVALUATION_ORDER, get_arch
from ..workloads.adept import (
    AdeptWorkloadAdapter,
    adept_v1_discovered_edits,
    search_pairs,
)
from ..workloads.simcov import SimCovWorkloadAdapter, simcov_discovered_edits
from .registry import ExperimentResult, register


@register("generality")
def generality(architectures: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Cross-architecture portability of the recorded edit sets."""
    architectures = list(architectures or EVALUATION_ORDER)
    result = ExperimentResult(
        experiment="Section IV (generality)",
        description="Portability of P100-discovered edits across GPU generations",
    )

    # The recorded edit sets are defined against the kernel structure, which
    # is identical on every architecture, so "applying the P100 edits" on
    # another GPU means evaluating the same edited module there.
    for arch_name in architectures:
        arch = get_arch(arch_name)
        adept = AdeptWorkloadAdapter("v1", arch, fitness_cases=[search_pairs()])
        adept_baseline = adept.baseline()
        adept_edited = adept.evaluate(apply_edits(
            adept.original_module(), adept_v1_discovered_edits(adept.kernel)).module)
        simcov = SimCovWorkloadAdapter(arch)
        simcov_baseline = simcov.baseline()
        simcov_edited = simcov.evaluate(apply_edits(
            simcov.original_module(), simcov_discovered_edits(simcov.kernels)).module)
        result.add_row(
            gpu=arch_name,
            adept_v1_speedup=adept_baseline.runtime_ms / adept_edited.runtime_ms,
            adept_v1_valid=adept_edited.valid,
            simcov_speedup=simcov_baseline.runtime_ms / simcov_edited.runtime_ms,
            simcov_valid=simcov_edited.valid,
        )

    rows = {row["gpu"]: row for row in result.rows}
    if "P100" in rows:
        for arch_name in architectures:
            if arch_name == "P100":
                continue
            row = rows[arch_name]
            result.add_row(
                gpu=f"{arch_name} vs P100",
                adept_v1_speedup=row["adept_v1_speedup"] / rows["P100"]["adept_v1_speedup"],
                adept_v1_valid=row["adept_v1_valid"],
                simcov_speedup=row["simcov_speedup"] / rows["P100"]["simcov_speedup"],
                simcov_valid=row["simcov_valid"],
            )
    result.add_note("Paper reference: the P100-discovered optimizations retain ~99% of the "
                    "native gain on the other GPUs for ADEPT-V0 and SIMCoV; parts of the "
                    "ADEPT-V1 set are architecture-dependent (the ballot_sync edit only "
                    "matters on Volta).")
    return result
