"""Table I: architectural characteristics of the evaluated GPUs."""

from __future__ import annotations

from ..gpu import architecture_table
from .registry import ExperimentResult, register


@register("table1")
def table1() -> ExperimentResult:
    """Reproduce Table I from the simulated architecture presets."""
    result = ExperimentResult(
        experiment="Table I",
        description="Architectural characteristics of the GPUs",
    )
    for row in architecture_table():
        result.add_row(**row)
    result.add_note("Values mirror the paper's Table I; the simulator additionally "
                    "derives its cost-model latencies from these presets.")
    return result
