"""Section VI-B: removing ballot_sync helps on Volta, not on Pascal."""

from __future__ import annotations

from typing import Optional, Sequence

from ..gevo import apply_edits
from ..gpu import EVALUATION_ORDER, get_arch
from ..workloads.adept import AdeptWorkloadAdapter, adept_v1_ballot_sync_edits
from .registry import ExperimentResult, register


@register("ballot_sync")
def ballot_sync(architectures: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Measure the ballot_sync-removal edit on every GPU generation."""
    architectures = list(architectures or EVALUATION_ORDER)
    result = ExperimentResult(
        experiment="Section VI-B",
        description="Warp-level synchronisation removal (ballot_sync) per GPU",
    )
    for arch_name in architectures:
        arch = get_arch(arch_name)
        adapter = AdeptWorkloadAdapter("v1", arch)
        baseline = adapter.baseline()
        edits = adept_v1_ballot_sync_edits(adapter.kernel)
        optimized = adapter.evaluate(apply_edits(adapter.original_module(), edits).module)
        result.add_row(
            gpu=arch_name,
            independent_thread_scheduling=arch.independent_thread_scheduling,
            baseline_ms=baseline.runtime_ms,
            without_ballot_ms=optimized.runtime_ms,
            improvement=(baseline.runtime_ms - optimized.runtime_ms) / baseline.runtime_ms,
            still_validates=optimized.valid,
        )
    result.add_note("Paper reference: ~4% improvement on the V100 (Volta, independent thread "
                    "scheduling), no improvement on the P100; the edit violates the CUDA "
                    "programming guide yet passes every verification test.")
    return result
