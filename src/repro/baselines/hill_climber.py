"""First-improvement hill-climbing baseline.

A single individual is mutated one edit at a time; a mutation is kept only
when it strictly improves fitness (and still validates).  Hill climbing
can find independent edits but cannot assemble interdependent clusters
whose members are individually invalid -- which is exactly the paper's
argument for why population-based EC matters (Section V / VII).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import List, Optional

from ..gevo.config import GevoConfig
from ..gevo.fitness import FitnessResult, GenomeEvaluator, WorkloadAdapter
from ..gevo.genome import Individual
from ..gevo.history import SearchHistory
from ..gevo.mutation import EditGenerator


@dataclass
class HillClimbResult:
    """Outcome of a hill-climbing run."""

    best: Individual
    history: SearchHistory
    baseline: FitnessResult
    accepted_edits: int
    rejected_edits: int
    evaluations: int
    wall_clock_seconds: float

    @property
    def speedup(self) -> float:
        if not self.best.valid or not self.best.fitness:
            return 1.0
        return self.baseline.runtime_ms / self.best.fitness


class HillClimber:
    """Greedy first-improvement search over single-edit mutations."""

    def __init__(self, adapter: WorkloadAdapter, config: GevoConfig, *, engine=None):
        self.adapter = adapter
        self.config = config
        self.rng = random.Random(config.seed)
        self.evaluator = GenomeEvaluator(adapter, engine=engine)
        self.generator = EditGenerator(self.evaluator.original, self.rng,
                                       weights=config.edit_weights)

    def run(self, steps: Optional[int] = None) -> HillClimbResult:
        start = time.perf_counter()
        baseline = self.adapter.baseline()
        history = SearchHistory(baseline_runtime=baseline.runtime_ms)
        budget = steps if steps is not None else (
            self.config.population_size * self.config.generations)

        current = Individual()
        self.evaluator.evaluate_individual(current)
        accepted = 0
        rejected = 0

        for step in range(1, budget + 1):
            edit = self.generator.random_edit()
            if edit is None:
                continue
            candidate = current.with_additional_edit(edit)
            self.evaluator.evaluate_individual(candidate)
            current_fitness = current.fitness if current.valid else math.inf
            candidate_fitness = candidate.fitness if candidate.valid else math.inf
            if candidate.valid and candidate_fitness < current_fitness:
                current = candidate
                accepted += 1
            else:
                rejected += 1
            history.record_generation(step, [current], current, step)

        return HillClimbResult(
            best=current,
            history=history,
            baseline=baseline,
            accepted_edits=accepted,
            rejected_edits=rejected,
            evaluations=self.evaluator.evaluations,
            wall_clock_seconds=time.perf_counter() - start,
        )
