"""First-improvement hill-climbing baseline.

A single individual is mutated one edit at a time; a mutation is kept only
when it strictly improves fitness (and still validates).  Hill climbing
can find independent edits but cannot assemble interdependent clusters
whose members are individually invalid -- which is exactly the paper's
argument for why population-based EC matters (Section V / VII).

Like :class:`~repro.gevo.search.GevoSearch`, the climb conforms to
:class:`~repro.runtime.checkpoint.CheckpointableSearch`: pass
``checkpoint_path=`` to snapshot the run (current individual, step
counter, accepted/rejected tallies, RNG state, history and fitness-cache
contents), and ``resume_from=`` to continue an interrupted climb
bit-for-bit without re-simulating anything it already evaluated.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Union

from ..errors import SearchError
from ..gevo.config import GevoConfig
from ..gevo.fitness import FitnessResult, GenomeEvaluator, WorkloadAdapter
from ..gevo.genome import Individual
from ..gevo.history import SearchHistory
from ..gevo.mutation import EditGenerator


@dataclass
class HillClimbResult:
    """Outcome of a hill-climbing run."""

    best: Individual
    history: SearchHistory
    baseline: FitnessResult
    accepted_edits: int
    rejected_edits: int
    evaluations: int
    wall_clock_seconds: float

    @property
    def speedup(self) -> float:
        if not self.best.valid or not self.best.fitness:
            return 1.0
        return self.baseline.runtime_ms / self.best.fitness


class HillClimber:
    """Greedy first-improvement search over single-edit mutations."""

    algorithm = "hill_climber"

    def __init__(self, adapter: WorkloadAdapter, config: GevoConfig, *, engine=None):
        self.adapter = adapter
        self.config = config
        self.rng = random.Random(config.seed)
        self.evaluator = GenomeEvaluator(adapter, engine=engine)
        self.generator = EditGenerator(self.evaluator.original, self.rng,
                                       weights=config.edit_weights)
        # Working state of the climb (captured by checkpoints).
        self._current: Optional[Individual] = None
        self._history: Optional[SearchHistory] = None
        self._step = 0
        self._budget = 0
        self._accepted = 0
        self._rejected = 0
        # Crash-exact evaluation accounting; created by run()/restore_checkpoint().
        self._ledger = None

    def run(self, steps: Optional[int] = None, *,
            checkpoint_path: Optional[str] = None,
            checkpoint_every: int = 1,
            resume_from: Optional[Union[str, "SearchCheckpoint"]] = None,
            ) -> HillClimbResult:
        """Climb for the configured number of steps.

        With ``checkpoint_path`` the full state is written there every
        ``checkpoint_every`` steps; ``resume_from`` (a path or a loaded
        checkpoint) continues an interrupted climb instead of starting
        fresh.  A resumed climb keeps the checkpoint's recorded step
        budget; passing a conflicting ``steps`` raises
        :class:`~repro.errors.SearchError`.
        """
        from ..runtime.checkpoint import EvaluationLedger, resolve_checkpoint
        from ..runtime.faultpoints import kill_point
        from ..runtime.telemetry import telemetry_of

        start = time.perf_counter()
        engine = self.evaluator.engine
        telemetry = telemetry_of(engine)
        budget = steps if steps is not None else (
            self.config.population_size * self.config.generations)
        self._step = 0
        self._accepted = 0
        self._rejected = 0

        if resume_from is not None:
            checkpoint = resolve_checkpoint(resume_from, algorithm=self.algorithm,
                                            workload_id=engine.workload_id,
                                            config=self.config,
                                            arch_name=engine.arch_name)
            self.restore_checkpoint(checkpoint)
            if steps is not None and self._budget != steps:
                raise SearchError(
                    f"checkpoint was recorded with a budget of {self._budget} steps, "
                    f"not {steps}; resume with the original budget (or start fresh)")
            budget = self._budget
            baseline = engine.baseline()
            telemetry.event("search.resume_replay", algorithm=self.algorithm,
                            round=self._step,
                            evaluations=self._ledger.count,
                            cached_entries=len(checkpoint.cache_entries))
        else:
            self._budget = budget
            # The ledger starts empty: evaluation counts are a pure
            # function of the climb's timeline, not of how warm any
            # shared cache happens to be, so a crash at *any* point
            # (even before the first checkpoint) resumes to the same
            # totals an uninterrupted climb reports.
            self._ledger = EvaluationLedger()
            baseline = engine.baseline()
            self._ledger.charge([engine.cache_key([]).to_string()])
            self._history = SearchHistory(baseline_runtime=baseline.runtime_ms)
            self._current = Individual()
            self.evaluator.evaluate_individual(self._current, ledger=self._ledger)
        history = self._history
        current = self._current
        telemetry.event("search.start", algorithm=self.algorithm,
                        workload=engine.workload_id, budget=budget,
                        seed=self.config.seed, resumed=resume_from is not None)

        for step in range(self._step + 1, budget + 1):
            self._step = step
            edit = self.generator.random_edit()
            if edit is None:
                continue
            candidate = current.with_additional_edit(edit)
            kill_point("search.round.spawned")
            self.evaluator.evaluate_individual(candidate, ledger=self._ledger)
            kill_point("search.round.evaluated")
            current_fitness = current.fitness if current.valid else math.inf
            candidate_fitness = candidate.fitness if candidate.valid else math.inf
            if candidate.valid and candidate_fitness < current_fitness:
                current = candidate
                self._accepted += 1
                accepted = True
            else:
                self._rejected += 1
                accepted = False
            self._current = current
            history.record_generation(step, [current], current, step)
            if telemetry.enabled:
                telemetry.event(
                    "search.step", step=step, accepted=accepted,
                    best_fitness=current.fitness if current.valid else None,
                    edits=len(current.edits))
            kill_point("search.round.scored")
            if checkpoint_path is not None and step % max(1, checkpoint_every) == 0:
                self.capture_checkpoint().save(checkpoint_path)
                telemetry.event("search.checkpoint", path=str(checkpoint_path),
                                round=step)
                kill_point("search.round.checkpointed")
        if checkpoint_path is not None:
            # Final state, regardless of the cadence: re-running the same
            # command resumes (and immediately finishes) instead of
            # repeating the tail since the last periodic checkpoint.
            self.capture_checkpoint().save(checkpoint_path)
        kill_point("search.finished")

        telemetry.event(
            "search.end", algorithm=self.algorithm, steps=self._step,
            accepted=self._accepted, rejected=self._rejected,
            best_fitness=current.fitness if current.valid else None,
            evaluations=self._ledger.count,
            wall_clock_seconds=time.perf_counter() - start)
        return HillClimbResult(
            best=current,
            history=history,
            baseline=baseline,
            accepted_edits=self._accepted,
            rejected_edits=self._rejected,
            evaluations=self._ledger.count,
            wall_clock_seconds=time.perf_counter() - start,
        )

    # -- CheckpointableSearch ----------------------------------------------------------
    def capture_checkpoint(self):
        from ..runtime.checkpoint import capture_search_checkpoint, serialize_individual

        return capture_search_checkpoint(self, state={
            "step": self._step,
            "budget": self._budget,
            "accepted": self._accepted,
            "rejected": self._rejected,
            "current": serialize_individual(self._current),
        })

    def restore_checkpoint(self, checkpoint) -> None:
        from ..runtime.checkpoint import restore_search_checkpoint

        restore_search_checkpoint(self, checkpoint)
        self._current = checkpoint.restore_individual("current")
        self._step = int(checkpoint.state.get("step", 0))
        self._budget = int(checkpoint.state.get("budget", 0))
        self._accepted = int(checkpoint.state.get("accepted", 0))
        self._rejected = int(checkpoint.state.get("rejected", 0))
