"""Non-evolutionary search baselines used for comparison/ablation experiments."""

from .hill_climber import HillClimbResult, HillClimber
from .random_search import RandomSearch, RandomSearchResult

__all__ = ["HillClimbResult", "HillClimber", "RandomSearch", "RandomSearchResult"]
