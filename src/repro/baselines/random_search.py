"""Random search baseline.

The paper motivates evolutionary search by its ability to assemble
interdependent edits via crossover and selection; pure random sampling of
edit lists is the natural null hypothesis.  The baseline draws individuals
with random edit lists (no selection, no crossover) under the same
evaluation budget so its best-found variant can be compared with GEVO's.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import List, Optional

from ..gevo.config import GevoConfig
from ..gevo.fitness import FitnessResult, GenomeEvaluator, WorkloadAdapter
from ..gevo.genome import Individual
from ..gevo.history import SearchHistory
from ..gevo.mutation import EditGenerator


@dataclass
class RandomSearchResult:
    """Outcome of a random-search run."""

    best: Optional[Individual]
    history: SearchHistory
    baseline: FitnessResult
    evaluations: int
    wall_clock_seconds: float

    @property
    def speedup(self) -> float:
        if self.best is None or not self.best.valid or not self.best.fitness:
            return 1.0
        return self.baseline.runtime_ms / self.best.fitness


class RandomSearch:
    """Samples random edit lists under a GEVO-equivalent evaluation budget."""

    def __init__(self, adapter: WorkloadAdapter, config: GevoConfig,
                 max_edits_per_individual: int = 8, *, engine=None):
        self.adapter = adapter
        self.config = config
        self.max_edits_per_individual = max_edits_per_individual
        self.rng = random.Random(config.seed)
        self.evaluator = GenomeEvaluator(adapter, engine=engine)
        self.generator = EditGenerator(self.evaluator.original, self.rng,
                                       weights=config.edit_weights)

    def _random_individual(self) -> Individual:
        length = self.rng.randint(1, self.max_edits_per_individual)
        edits = []
        for _ in range(length):
            edit = self.generator.random_edit()
            if edit is not None:
                edits.append(edit)
        return Individual(edits=edits)

    def run(self) -> RandomSearchResult:
        start = time.perf_counter()
        baseline = self.adapter.baseline()
        history = SearchHistory(baseline_runtime=baseline.runtime_ms)
        best: Optional[Individual] = None
        budget = self.config.population_size * self.config.generations

        generation_size = self.config.population_size
        generation = 0
        evaluated = 0
        while evaluated < budget:
            batch = [self._random_individual()
                     for _ in range(min(generation_size, budget - evaluated))]
            # One concurrent wave per batch (parallel under a pool-backed engine).
            self.evaluator.evaluate_population(batch)
            evaluated += len(batch)
            generation += 1
            for individual in batch:
                if individual.valid and (
                        best is None or (individual.fitness or math.inf) < (best.fitness or math.inf)):
                    best = individual
            history.record_generation(generation, batch, best, evaluated)

        return RandomSearchResult(
            best=best,
            history=history,
            baseline=baseline,
            evaluations=self.evaluator.evaluations,
            wall_clock_seconds=time.perf_counter() - start,
        )
