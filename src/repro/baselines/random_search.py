"""Random search baseline.

The paper motivates evolutionary search by its ability to assemble
interdependent edits via crossover and selection; pure random sampling of
edit lists is the natural null hypothesis.  The baseline draws individuals
with random edit lists (no selection, no crossover) under the same
evaluation budget so its best-found variant can be compared with GEVO's.

Like :class:`~repro.gevo.search.GevoSearch`, the sampling loop conforms to
:class:`~repro.runtime.checkpoint.CheckpointableSearch`: pass
``checkpoint_path=`` to snapshot the run (RNG state, best-so-far, history
and fitness-cache contents) after each sampling wave, and
``resume_from=`` to continue an interrupted run bit-for-bit without
re-simulating anything it already evaluated.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Union

from ..gevo.config import GevoConfig
from ..gevo.fitness import FitnessResult, GenomeEvaluator, WorkloadAdapter
from ..gevo.genome import Individual
from ..gevo.history import SearchHistory
from ..gevo.mutation import EditGenerator


@dataclass
class RandomSearchResult:
    """Outcome of a random-search run."""

    best: Optional[Individual]
    history: SearchHistory
    baseline: FitnessResult
    evaluations: int
    wall_clock_seconds: float

    @property
    def speedup(self) -> float:
        if self.best is None or not self.best.valid or not self.best.fitness:
            return 1.0
        return self.baseline.runtime_ms / self.best.fitness


class RandomSearch:
    """Samples random edit lists under a GEVO-equivalent evaluation budget."""

    algorithm = "random_search"

    def __init__(self, adapter: WorkloadAdapter, config: GevoConfig,
                 max_edits_per_individual: int = 8, *, engine=None):
        self.adapter = adapter
        self.config = config
        self.max_edits_per_individual = max_edits_per_individual
        self.rng = random.Random(config.seed)
        self.evaluator = GenomeEvaluator(adapter, engine=engine)
        self.generator = EditGenerator(self.evaluator.original, self.rng,
                                       weights=config.edit_weights)
        # Working state of the sampling loop (captured by checkpoints).
        self._best: Optional[Individual] = None
        self._history: Optional[SearchHistory] = None
        self._generation = 0
        self._evaluated = 0
        # Crash-exact evaluation accounting; created by run()/restore_checkpoint().
        self._ledger = None

    def _random_individual(self) -> Individual:
        length = self.rng.randint(1, self.max_edits_per_individual)
        edits = []
        for _ in range(length):
            edit = self.generator.random_edit()
            if edit is not None:
                edits.append(edit)
        return Individual(edits=edits)

    def run(self, *, checkpoint_path: Optional[str] = None,
            checkpoint_every: int = 1,
            resume_from: Optional[Union[str, "SearchCheckpoint"]] = None,
            ) -> RandomSearchResult:
        """Sample until the evaluation budget is spent.

        With ``checkpoint_path`` the full state is written there every
        ``checkpoint_every`` sampling waves; ``resume_from`` (a path or a
        loaded checkpoint) continues an interrupted run instead of
        starting fresh.
        """
        from ..runtime.checkpoint import EvaluationLedger, resolve_checkpoint
        from ..runtime.faultpoints import kill_point
        from ..runtime.telemetry import telemetry_of

        start = time.perf_counter()
        engine = self.evaluator.engine
        telemetry = telemetry_of(engine)
        config = self.config
        budget = config.population_size * config.generations
        self._generation = 0
        self._evaluated = 0
        self._best = None

        if resume_from is not None:
            checkpoint = resolve_checkpoint(resume_from, algorithm=self.algorithm,
                                            workload_id=engine.workload_id,
                                            config=config,
                                            arch_name=engine.arch_name)
            self.restore_checkpoint(checkpoint)
            baseline = engine.baseline()
            telemetry.event("search.resume_replay", algorithm=self.algorithm,
                            round=self._generation,
                            evaluations=self._ledger.count,
                            cached_entries=len(checkpoint.cache_entries))
        else:
            # The ledger starts empty: evaluation counts are a pure
            # function of the sampling timeline, not of cache warmth, so
            # a crash at *any* point (even before the first checkpoint)
            # resumes to the same totals an uninterrupted run reports.
            self._ledger = EvaluationLedger()
            baseline = engine.baseline()
            self._ledger.charge([engine.cache_key([]).to_string()])
            self._history = SearchHistory(baseline_runtime=baseline.runtime_ms)
        history = self._history
        telemetry.event("search.start", algorithm=self.algorithm,
                        workload=engine.workload_id, budget=budget,
                        seed=config.seed, resumed=resume_from is not None)

        generation_size = config.population_size
        while self._evaluated < budget:
            batch = [self._random_individual()
                     for _ in range(min(generation_size, budget - self._evaluated))]
            kill_point("search.round.spawned")
            # One concurrent wave per batch (parallel under a pool-backed engine).
            self.evaluator.evaluate_population(batch, ledger=self._ledger)
            kill_point("search.round.evaluated")
            self._evaluated += len(batch)
            self._generation += 1
            for individual in batch:
                if individual.valid and (
                        self._best is None
                        or (individual.fitness or math.inf) < (self._best.fitness or math.inf)):
                    self._best = individual
            history.record_generation(self._generation, batch, self._best, self._evaluated)
            if telemetry.enabled:
                valid = [ind.fitness for ind in batch
                         if ind.valid and ind.fitness is not None]
                telemetry.event(
                    "search.generation", generation=self._generation,
                    best_fitness=self._best.fitness if self._best is not None else None,
                    mean_fitness=sum(valid) / len(valid) if valid else None,
                    valid_count=len(valid), stagnation=0,
                    evaluations=self._evaluated)
            kill_point("search.round.scored")
            if checkpoint_path is not None and self._generation % max(1, checkpoint_every) == 0:
                self.capture_checkpoint().save(checkpoint_path)
                telemetry.event("search.checkpoint", path=str(checkpoint_path),
                                round=self._generation)
                kill_point("search.round.checkpointed")
        if checkpoint_path is not None:
            # Final state, regardless of the cadence (see HillClimber.run).
            self.capture_checkpoint().save(checkpoint_path)
        kill_point("search.finished")

        telemetry.event(
            "search.end", algorithm=self.algorithm, generations=self._generation,
            best_fitness=self._best.fitness if self._best is not None else None,
            evaluations=self._ledger.count,
            wall_clock_seconds=time.perf_counter() - start)
        return RandomSearchResult(
            best=self._best,
            history=history,
            baseline=baseline,
            evaluations=self._ledger.count,
            wall_clock_seconds=time.perf_counter() - start,
        )

    # -- CheckpointableSearch ----------------------------------------------------------
    def capture_checkpoint(self):
        from ..runtime.checkpoint import capture_search_checkpoint, serialize_individual

        return capture_search_checkpoint(self, state={
            "generation": self._generation,
            "evaluated": self._evaluated,
            "best": (serialize_individual(self._best)
                     if self._best is not None else None),
        })

    def restore_checkpoint(self, checkpoint) -> None:
        from ..runtime.checkpoint import restore_search_checkpoint

        restore_search_checkpoint(self, checkpoint)
        self._best = checkpoint.restore_best()
        self._generation = checkpoint.generation
        self._evaluated = int(checkpoint.state.get("evaluated", 0))
