"""The GEVO generational search loop.

One generation performs, in order: fitness evaluation of every new
individual, elitism (the best individuals survive unchanged), tournament
selection of parents, crossover with the configured probability, and
per-individual mutation.  The loop matches the description in Sections
II-A and III-E of the paper; runtime is the fitness, invalid variants
(failed test cases or kernel traps) never reproduce preferentially.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SearchError
from .config import GevoConfig
from .crossover import maybe_crossover
from .fitness import FitnessResult, GenomeEvaluator, WorkloadAdapter
from .genome import Individual, apply_edits, seed_population
from .history import SearchHistory
from .mutation import EditGenerator, maybe_mutate
from .selection import best_individual, select_elites, select_parents


@dataclass
class SearchResult:
    """Outcome of one GEVO run."""

    best: Optional[Individual]
    history: SearchHistory
    baseline: FitnessResult
    config: GevoConfig
    evaluations: int
    wall_clock_seconds: float
    #: Validation (held-out tests) of the final best individual, if requested.
    validation: Optional[FitnessResult] = None

    @property
    def speedup(self) -> float:
        """Speedup of the best discovered variant over the unmodified program."""
        if self.best is None or not self.best.valid or not self.best.fitness:
            return 1.0
        return self.baseline.runtime_ms / self.best.fitness

    def best_edits(self) -> List:
        return list(self.best.edits) if self.best is not None else []


class GevoSearch:
    """Evolutionary search driver."""

    def __init__(self, adapter: WorkloadAdapter, config: GevoConfig,
                 *, progress: Optional[Callable[[int, SearchHistory], None]] = None,
                 candidate_edits=None, candidate_probability: float = 0.0):
        self.adapter = adapter
        self.config = config
        self.progress = progress
        self.rng = random.Random(config.seed)
        self.evaluator = GenomeEvaluator(adapter)
        self.generator = EditGenerator(self.evaluator.original, self.rng,
                                       weights=config.edit_weights,
                                       candidate_edits=candidate_edits,
                                       candidate_probability=candidate_probability)

    # -- main loop -----------------------------------------------------------------------
    def run(self, *, validate_best: bool = False) -> SearchResult:
        """Run the configured number of generations and return the result."""
        config = self.config
        start = time.perf_counter()
        baseline = self.adapter.baseline()
        if not baseline.valid:
            raise SearchError(
                f"the unmodified program of workload {self.adapter.name!r} fails its own "
                "test cases; fix the workload before searching")
        history = SearchHistory(baseline_runtime=baseline.runtime_ms)

        population = seed_population(config.population_size)
        self.evaluator.evaluate_population(population)
        best_so_far = best_individual(population)
        stagnation = 0

        for generation in range(1, config.generations + 1):
            population = self._next_generation(population)
            self.evaluator.evaluate_population(population)
            generation_best = best_individual(population)
            if generation_best is not None and (
                    best_so_far is None
                    or (generation_best.fitness or math.inf) < (best_so_far.fitness or math.inf)):
                best_so_far = generation_best
                stagnation = 0
            else:
                stagnation += 1
            history.record_generation(generation, population, best_so_far,
                                      self.evaluator.evaluations)
            if self.progress is not None:
                self.progress(generation, history)
            if config.stagnation_limit and stagnation >= config.stagnation_limit:
                break

        validation = None
        if validate_best and best_so_far is not None:
            applied = apply_edits(self.evaluator.original, best_so_far.edits)
            validation = self.adapter.validate(applied.module)

        return SearchResult(
            best=best_so_far,
            history=history,
            baseline=baseline,
            config=config,
            evaluations=self.evaluator.evaluations,
            wall_clock_seconds=time.perf_counter() - start,
            validation=validation,
        )

    # -- generation construction ------------------------------------------------------------
    def _next_generation(self, population: List[Individual]) -> List[Individual]:
        config = self.config
        next_population: List[Individual] = select_elites(population, config.elitism)
        needed = config.population_size - len(next_population)
        parents = select_parents(population, needed + 1, config.tournament_size, self.rng)
        children: List[Individual] = []
        index = 0
        while len(children) < needed:
            parent_a = parents[index % len(parents)]
            parent_b = parents[(index + 1) % len(parents)]
            index += 2
            child_one, child_two = maybe_crossover(parent_a, parent_b, config, self.rng)
            children.append(child_one)
            if len(children) < needed:
                children.append(child_two)
        mutated = [maybe_mutate(child, self.generator, config, self.rng) for child in children]
        next_population.extend(mutated)
        return next_population


def run_repeated_searches(adapter: WorkloadAdapter, config: GevoConfig, runs: int,
                          *, base_seed: int = 0, candidate_edits=None,
                          candidate_probability: float = 0.0) -> List[SearchResult]:
    """Run GEVO *runs* times with different seeds (Figure 6 methodology)."""
    results = []
    for run_index in range(runs):
        run_config = config.with_(seed=base_seed + run_index)
        search = GevoSearch(adapter, run_config, candidate_edits=candidate_edits,
                            candidate_probability=candidate_probability)
        results.append(search.run())
    return results
