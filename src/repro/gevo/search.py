"""The GEVO generational search loop.

One generation performs, in order: fitness evaluation of every new
individual, elitism (the best individuals survive unchanged), tournament
selection of parents, crossover with the configured probability, and
per-individual mutation.  The loop matches the description in Sections
II-A and III-E of the paper; runtime is the fitness, invalid variants
(failed test cases or kernel traps) never reproduce preferentially.

Fitness evaluation routes through the evaluation runtime
(:mod:`repro.runtime`): each generation is submitted as one batch, so an
engine with a process-pool executor evaluates the whole population
concurrently.  Long searches can be checkpointed after every generation
(``checkpoint_path=``) and resumed exactly -- population, RNG state,
history and fitness-cache contents are all restored, so a resumed run
reproduces the uninterrupted one bit-for-bit and never re-simulates a
variant evaluated before the interruption.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..errors import SearchError
from .config import GevoConfig
from .crossover import maybe_crossover
from .fitness import FitnessResult, GenomeEvaluator, WorkloadAdapter
from .genome import Individual, apply_edits, seed_population
from .history import SearchHistory
from .mutation import EditGenerator, maybe_mutate
from .selection import best_individual, select_elites, select_parents


@dataclass
class SearchResult:
    """Outcome of one GEVO run."""

    best: Optional[Individual]
    history: SearchHistory
    baseline: FitnessResult
    config: GevoConfig
    evaluations: int
    wall_clock_seconds: float
    #: Validation (held-out tests) of the final best individual, if requested.
    validation: Optional[FitnessResult] = None

    @property
    def speedup(self) -> float:
        """Speedup of the best discovered variant over the unmodified program."""
        if self.best is None or not self.best.valid or not self.best.fitness:
            return 1.0
        return self.baseline.runtime_ms / self.best.fitness

    def best_edits(self) -> List:
        return list(self.best.edits) if self.best is not None else []


class GevoSearch:
    """Evolutionary search driver."""

    def __init__(self, adapter: WorkloadAdapter, config: GevoConfig,
                 *, progress: Optional[Callable[[int, SearchHistory], None]] = None,
                 candidate_edits=None, candidate_probability: float = 0.0,
                 engine=None):
        self.adapter = adapter
        self.config = config
        self.progress = progress
        self.rng = random.Random(config.seed)
        self.evaluator = GenomeEvaluator(adapter, engine=engine)
        self.generator = EditGenerator(self.evaluator.original, self.rng,
                                       weights=config.edit_weights,
                                       candidate_edits=candidate_edits,
                                       candidate_probability=candidate_probability)

    # -- main loop -----------------------------------------------------------------------
    def run(self, *, validate_best: bool = False,
            checkpoint_path: Optional[str] = None,
            checkpoint_every: int = 1,
            resume_from: Optional[Union[str, "SearchCheckpoint"]] = None) -> SearchResult:
        """Run the configured number of generations and return the result.

        With ``checkpoint_path`` the full search state is written there
        every ``checkpoint_every`` generations; ``resume_from`` (a path or
        a loaded :class:`~repro.runtime.checkpoint.SearchCheckpoint`)
        continues an interrupted run from its last checkpoint instead of
        starting fresh.
        """
        from ..runtime.checkpoint import SearchCheckpoint

        config = self.config
        engine = self.evaluator.engine
        start = time.perf_counter()
        evaluations_before_resume = 0
        stagnation = 0
        start_generation = 0

        if resume_from is not None:
            checkpoint = (SearchCheckpoint.load(resume_from)
                          if isinstance(resume_from, str) else resume_from)
            if checkpoint.restore_config() != config:
                raise SearchError(
                    "checkpoint was recorded with a different GevoConfig; resume with "
                    "the original configuration (or start a fresh search)")
            if checkpoint.workload_id != engine.workload_id:
                raise SearchError(
                    f"checkpoint belongs to workload {checkpoint.workload_id!r}, "
                    f"not {engine.workload_id!r}")
            engine.cache.import_entries(checkpoint.cache_entries)
            history = checkpoint.restore_history()
            population = checkpoint.restore_population()
            best_so_far = checkpoint.restore_best()
            stagnation = checkpoint.stagnation
            start_generation = checkpoint.generation
            evaluations_before_resume = checkpoint.evaluations
            self.rng.setstate(checkpoint.restore_rng_state())
            baseline = engine.baseline()
        else:
            baseline = engine.baseline()
            if not baseline.valid:
                raise SearchError(
                    f"the unmodified program of workload {self.adapter.name!r} fails its own "
                    "test cases; fix the workload before searching")
            history = SearchHistory(baseline_runtime=baseline.runtime_ms)
            population = seed_population(config.population_size)
            self.evaluator.evaluate_population(population)
            best_so_far = best_individual(population)

        for generation in range(start_generation + 1, config.generations + 1):
            population = self._next_generation(population)
            self.evaluator.evaluate_population(population)
            generation_best = best_individual(population)
            if generation_best is not None and (
                    best_so_far is None
                    or (generation_best.fitness or math.inf) < (best_so_far.fitness or math.inf)):
                best_so_far = generation_best
                stagnation = 0
            else:
                stagnation += 1
            history.record_generation(generation, population, best_so_far,
                                      self.total_evaluations(evaluations_before_resume))
            if self.progress is not None:
                self.progress(generation, history)
            if checkpoint_path is not None and generation % max(1, checkpoint_every) == 0:
                self._save_checkpoint(checkpoint_path, generation, stagnation,
                                      population, best_so_far, history,
                                      evaluations_before_resume, baseline)
            if config.stagnation_limit and stagnation >= config.stagnation_limit:
                break

        validation = None
        if validate_best and best_so_far is not None:
            applied = apply_edits(self.evaluator.original, best_so_far.edits)
            validation = self.adapter.validate(applied.module)

        return SearchResult(
            best=best_so_far,
            history=history,
            baseline=baseline,
            config=config,
            evaluations=self.total_evaluations(evaluations_before_resume),
            wall_clock_seconds=time.perf_counter() - start,
            validation=validation,
        )

    def total_evaluations(self, evaluations_before_resume: int = 0) -> int:
        return self.evaluator.evaluations + evaluations_before_resume

    def _save_checkpoint(self, path: str, generation: int, stagnation: int,
                         population: List[Individual], best: Optional[Individual],
                         history: SearchHistory, evaluations_before_resume: int,
                         baseline: FitnessResult) -> None:
        from ..runtime.checkpoint import SearchCheckpoint

        engine = self.evaluator.engine
        checkpoint = SearchCheckpoint.capture(
            workload_id=engine.workload_id,
            config=self.config,
            generation=generation,
            stagnation=stagnation,
            rng_state=self.rng.getstate(),
            population=population,
            best=best,
            evaluations=self.total_evaluations(evaluations_before_resume),
            history=history,
            baseline_runtime=baseline.runtime_ms,
            cache_entries=engine.cache.export_entries(),
        )
        checkpoint.save(path)

    # -- generation construction ------------------------------------------------------------
    def _next_generation(self, population: List[Individual]) -> List[Individual]:
        config = self.config
        next_population: List[Individual] = select_elites(population, config.elitism)
        needed = config.population_size - len(next_population)
        parents = select_parents(population, needed + 1, config.tournament_size, self.rng)
        children: List[Individual] = []
        index = 0
        while len(children) < needed:
            parent_a = parents[index % len(parents)]
            parent_b = parents[(index + 1) % len(parents)]
            index += 2
            child_one, child_two = maybe_crossover(parent_a, parent_b, config, self.rng)
            children.append(child_one)
            if len(children) < needed:
                children.append(child_two)
        mutated = [maybe_mutate(child, self.generator, config, self.rng) for child in children]
        next_population.extend(mutated)
        return next_population


def run_repeated_searches(adapter: WorkloadAdapter, config: GevoConfig, runs: int,
                          *, base_seed: int = 0, candidate_edits=None,
                          candidate_probability: float = 0.0,
                          engine=None) -> List[SearchResult]:
    """Run GEVO *runs* times with different seeds (Figure 6 methodology).

    When an *engine* is supplied it is shared across the runs, so variants
    rediscovered by several seeds (the baseline, elites, common single
    edits) are evaluated once for the whole sweep.
    """
    results = []
    for run_index in range(runs):
        run_config = config.with_(seed=base_seed + run_index)
        search = GevoSearch(adapter, run_config, candidate_edits=candidate_edits,
                            candidate_probability=candidate_probability,
                            engine=engine)
        results.append(search.run())
    return results
