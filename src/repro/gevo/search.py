"""The GEVO generational search loop.

One generation performs, in order: fitness evaluation of every new
individual, elitism (the best individuals survive unchanged), tournament
selection of parents, crossover with the configured probability, and
per-individual mutation.  The loop matches the description in Sections
II-A and III-E of the paper; runtime is the fitness, invalid variants
(failed test cases or kernel traps) never reproduce preferentially.

Fitness evaluation routes through the evaluation runtime
(:mod:`repro.runtime`): each generation is submitted as one batch, so an
engine with a process-pool executor evaluates the whole population
concurrently.  Long searches can be checkpointed after every generation
(``checkpoint_path=``) and resumed exactly -- population, RNG state,
history and fitness-cache contents are all restored, so a resumed run
reproduces the uninterrupted one bit-for-bit and never re-simulates a
variant evaluated before the interruption.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..errors import SearchError
from .config import GevoConfig
from .crossover import maybe_crossover
from .fitness import FitnessResult, GenomeEvaluator, WorkloadAdapter
from .genome import Individual, apply_edits, seed_population
from .history import SearchHistory
from .mutation import EditGenerator, maybe_mutate
from .selection import best_individual, select_elites, select_parents


@dataclass
class SearchResult:
    """Outcome of one GEVO run."""

    best: Optional[Individual]
    history: SearchHistory
    baseline: FitnessResult
    config: GevoConfig
    evaluations: int
    wall_clock_seconds: float
    #: Validation (held-out tests) of the final best individual, if requested.
    validation: Optional[FitnessResult] = None

    @property
    def speedup(self) -> float:
        """Speedup of the best discovered variant over the unmodified program."""
        if self.best is None or not self.best.valid or not self.best.fitness:
            return 1.0
        return self.baseline.runtime_ms / self.best.fitness

    def best_edits(self) -> List:
        return list(self.best.edits) if self.best is not None else []


class GevoSearch:
    """Evolutionary search driver.

    Conforms to :class:`~repro.runtime.checkpoint.CheckpointableSearch`:
    the working state of the generational loop lives on the instance, so
    :meth:`capture_checkpoint` / :meth:`restore_checkpoint` can snapshot
    and restore a run at any generation boundary.
    """

    algorithm = "gevo"

    def __init__(self, adapter: WorkloadAdapter, config: GevoConfig,
                 *, progress: Optional[Callable[[int, SearchHistory], None]] = None,
                 candidate_edits=None, candidate_probability: float = 0.0,
                 engine=None):
        self.adapter = adapter
        self.config = config
        self.progress = progress
        self.rng = random.Random(config.seed)
        self.evaluator = GenomeEvaluator(adapter, engine=engine)
        self.generator = EditGenerator(self.evaluator.original, self.rng,
                                       weights=config.edit_weights,
                                       candidate_edits=candidate_edits,
                                       candidate_probability=candidate_probability)
        # Working state of the generational loop (captured by checkpoints).
        self._population: List[Individual] = []
        self._best: Optional[Individual] = None
        self._generation = 0
        self._stagnation = 0
        self._history: Optional[SearchHistory] = None
        # Crash-exact evaluation accounting; created by run()/restore_checkpoint().
        self._ledger = None

    # -- main loop -----------------------------------------------------------------------
    def run(self, *, validate_best: bool = False,
            checkpoint_path: Optional[str] = None,
            checkpoint_every: int = 1,
            resume_from: Optional[Union[str, "SearchCheckpoint"]] = None) -> SearchResult:
        """Run the configured number of generations and return the result.

        With ``checkpoint_path`` the full search state is written there
        every ``checkpoint_every`` generations; ``resume_from`` (a path or
        a loaded :class:`~repro.runtime.checkpoint.SearchCheckpoint`)
        continues an interrupted run from its last checkpoint instead of
        starting fresh.
        """
        from ..runtime.checkpoint import EvaluationLedger, resolve_checkpoint
        from ..runtime.faultpoints import kill_point
        from ..runtime.telemetry import telemetry_of

        config = self.config
        engine = self.evaluator.engine
        telemetry = telemetry_of(engine)
        start = time.perf_counter()
        self._stagnation = 0
        self._generation = 0

        if resume_from is not None:
            checkpoint = resolve_checkpoint(resume_from, algorithm=self.algorithm,
                                            workload_id=engine.workload_id,
                                            config=config,
                                            arch_name=engine.arch_name)
            self.restore_checkpoint(checkpoint)
            baseline = engine.baseline()
            telemetry.event("search.resume_replay", algorithm=self.algorithm,
                            round=self._generation,
                            evaluations=self._ledger.count,
                            cached_entries=len(checkpoint.cache_entries))
        else:
            # The ledger starts empty: evaluation counts are a pure
            # function of the search timeline, not of cache warmth, so a
            # crash at *any* point (even before the first checkpoint)
            # resumes to the same totals an uninterrupted run reports.
            self._ledger = EvaluationLedger()
            baseline = engine.baseline()
            if not baseline.valid:
                raise SearchError(
                    f"the unmodified program of workload {self.adapter.name!r} fails its own "
                    "test cases; fix the workload before searching")
            self._ledger.charge([engine.cache_key([]).to_string()])
            self._history = SearchHistory(baseline_runtime=baseline.runtime_ms)
            self._population = seed_population(config.population_size)
            self.evaluator.evaluate_population(self._population, ledger=self._ledger)
            self._best = best_individual(self._population)
        history = self._history
        telemetry.event("search.start", algorithm=self.algorithm,
                        workload=engine.workload_id,
                        generations=config.generations,
                        population_size=config.population_size,
                        seed=config.seed, resumed=resume_from is not None)

        for generation in range(self._generation + 1, config.generations + 1):
            # Checked at the top so a resumed run that had already stopped
            # on stagnation stops again immediately instead of evaluating
            # one extra generation (which would break resume equivalence).
            if config.stagnation_limit and self._stagnation >= config.stagnation_limit:
                break
            self._population = self._next_generation(self._population)
            kill_point("search.round.spawned")
            self.evaluator.evaluate_population(self._population, ledger=self._ledger)
            kill_point("search.round.evaluated")
            generation_best = best_individual(self._population)
            if generation_best is not None and (
                    self._best is None
                    or (generation_best.fitness or math.inf) < (self._best.fitness or math.inf)):
                self._best = generation_best
                self._stagnation = 0
            else:
                self._stagnation += 1
            self._generation = generation
            history.record_generation(generation, self._population, self._best,
                                      self._ledger.count)
            if telemetry.enabled:
                valid = [ind.fitness for ind in self._population
                         if ind.valid and ind.fitness is not None]
                telemetry.event(
                    "search.generation", generation=generation,
                    best_fitness=self._best.fitness if self._best is not None else None,
                    mean_fitness=sum(valid) / len(valid) if valid else None,
                    valid_count=len(valid), stagnation=self._stagnation,
                    evaluations=self._ledger.count)
            if self.progress is not None:
                self.progress(generation, history)
            kill_point("search.round.scored")
            if checkpoint_path is not None and generation % max(1, checkpoint_every) == 0:
                self.capture_checkpoint().save(checkpoint_path)
                telemetry.event("search.checkpoint", path=str(checkpoint_path),
                                round=generation)
                kill_point("search.round.checkpointed")
        if checkpoint_path is not None:
            # Final state, regardless of the cadence: re-running the same
            # command resumes (and immediately finishes) instead of
            # repeating the tail since the last periodic checkpoint.
            self.capture_checkpoint().save(checkpoint_path)
        kill_point("search.finished")

        validation = None
        if validate_best and self._best is not None:
            applied = apply_edits(self.evaluator.original, self._best.edits)
            validation = self.adapter.validate(applied.module)

        telemetry.event(
            "search.end", algorithm=self.algorithm,
            generations=self._generation,
            best_fitness=self._best.fitness if self._best is not None else None,
            evaluations=self._ledger.count,
            wall_clock_seconds=time.perf_counter() - start)
        return SearchResult(
            best=self._best,
            history=history,
            baseline=baseline,
            config=config,
            evaluations=self._ledger.count,
            wall_clock_seconds=time.perf_counter() - start,
            validation=validation,
        )

    def total_evaluations(self) -> int:
        """Distinct edit sets this search has charged (crash-exact, see ledger)."""
        return self._ledger.count if self._ledger is not None else 0

    # -- CheckpointableSearch ----------------------------------------------------------
    def capture_checkpoint(self):
        from ..runtime.checkpoint import capture_search_checkpoint, serialize_individual

        return capture_search_checkpoint(self, state={
            "generation": self._generation,
            "stagnation": self._stagnation,
            "population": [serialize_individual(ind) for ind in self._population],
            "best": (serialize_individual(self._best)
                     if self._best is not None else None),
        })

    def restore_checkpoint(self, checkpoint) -> None:
        from ..runtime.checkpoint import restore_search_checkpoint

        restore_search_checkpoint(self, checkpoint)
        self._population = checkpoint.restore_population()
        self._best = checkpoint.restore_best()
        self._stagnation = int(checkpoint.state.get("stagnation", 0))
        self._generation = checkpoint.generation

    # -- generation construction ------------------------------------------------------------
    def _next_generation(self, population: List[Individual]) -> List[Individual]:
        config = self.config
        next_population: List[Individual] = select_elites(population, config.elitism)
        needed = config.population_size - len(next_population)
        parents = select_parents(population, needed + 1, config.tournament_size, self.rng)
        children: List[Individual] = []
        index = 0
        while len(children) < needed:
            parent_a = parents[index % len(parents)]
            parent_b = parents[(index + 1) % len(parents)]
            index += 2
            child_one, child_two = maybe_crossover(parent_a, parent_b, config, self.rng)
            children.append(child_one)
            if len(children) < needed:
                children.append(child_two)
        mutated = [maybe_mutate(child, self.generator, config, self.rng) for child in children]
        next_population.extend(mutated)
        return next_population


def run_repeated_searches(adapter: WorkloadAdapter, config: GevoConfig, runs: int,
                          *, base_seed: int = 0, candidate_edits=None,
                          candidate_probability: float = 0.0,
                          engine=None) -> List[SearchResult]:
    """Run GEVO *runs* times with different seeds (Figure 6 methodology).

    When an *engine* is supplied it is shared across the runs, so variants
    rediscovered by several seeds (the baseline, elites, common single
    edits) are evaluated once for the whole sweep.
    """
    results = []
    for run_index in range(runs):
        run_config = config.with_(seed=base_seed + run_index)
        search = GevoSearch(adapter, run_config, candidate_edits=candidate_edits,
                            candidate_probability=candidate_probability,
                            engine=engine)
        results.append(search.run())
    return results
