"""Individuals (genomes) and edit-list application.

An :class:`Individual` is an ordered list of :class:`~repro.gevo.edits.Edit`
objects plus cached evaluation results.  Applying a genome clones the
original module and replays the edits in order; edits that no longer apply
(for example, a later edit references an instruction an earlier edit
removed) are skipped by default, matching GEVO's tolerant behaviour, and
the skipped edits are reported so analyses can account for them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import EditError
from ..ir.function import Module
from .edits import Edit

_individual_ids = itertools.count(1)


@dataclass
class AppliedGenome:
    """Result of replaying an edit list onto a fresh module clone."""

    module: Module
    applied: List[Edit]
    skipped: List[Tuple[Edit, str]]

    @property
    def all_applied(self) -> bool:
        return not self.skipped


def apply_edits(original: Module, edits: Sequence[Edit], *, strict: bool = False) -> AppliedGenome:
    """Clone *original* and apply *edits* in order.

    With ``strict=False`` (the default, GEVO's behaviour) inapplicable edits
    are skipped and recorded; with ``strict=True`` the first failure raises.
    """
    module = original.clone()
    applied: List[Edit] = []
    skipped: List[Tuple[Edit, str]] = []
    for edit in edits:
        try:
            edit.apply(module)
            applied.append(edit)
        except EditError as exc:
            if strict:
                raise
            skipped.append((edit, str(exc)))
    return AppliedGenome(module=module, applied=applied, skipped=skipped)


@dataclass
class Individual:
    """One member of the GEVO population."""

    edits: List[Edit] = field(default_factory=list)
    #: Mean kernel runtime (ms) over the fitness test cases; ``None`` until evaluated.
    fitness: Optional[float] = None
    #: Whether every test case passed; ``None`` until evaluated.
    valid: Optional[bool] = None
    #: Generation in which this individual was created.
    birth_generation: int = 0
    identifier: int = field(default_factory=lambda: next(_individual_ids))

    def copy(self) -> "Individual":
        """A fresh (unevaluated) copy with the same edit list."""
        return Individual(edits=list(self.edits), birth_generation=self.birth_generation)

    def edit_keys(self) -> Tuple[Tuple, ...]:
        return tuple(edit.key() for edit in self.edits)

    def deduplicated_edits(self) -> List[Edit]:
        """Edit list with exact duplicates removed (first occurrence kept)."""
        seen = set()
        unique: List[Edit] = []
        for edit in self.edits:
            key = edit.key()
            if key not in seen:
                seen.add(key)
                unique.append(edit)
        return unique

    def with_additional_edit(self, edit: Edit) -> "Individual":
        child = self.copy()
        child.edits.append(edit)
        return child

    def needs_evaluation(self) -> bool:
        return self.fitness is None or self.valid is None

    def mark_evaluated(self, fitness: Optional[float], valid: bool) -> None:
        self.fitness = fitness
        self.valid = valid

    def __len__(self) -> int:
        return len(self.edits)

    def __repr__(self) -> str:
        status = "unevaluated" if self.needs_evaluation() else (
            f"fitness={self.fitness:.4f} valid={self.valid}")
        return f"<Individual #{self.identifier} edits={len(self.edits)} {status}>"


def seed_population(size: int) -> List[Individual]:
    """The initial population: *size* copies of the unmodified program."""
    return [Individual() for _ in range(size)]


def unique_edit_keys(individuals: Iterable[Individual]) -> set:
    """All distinct edit keys present in a collection of individuals."""
    keys = set()
    for individual in individuals:
        keys.update(individual.edit_keys())
    return keys
